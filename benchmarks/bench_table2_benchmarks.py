"""Experiment E1 — Table II: benchmark inventory (qubits, #Pauli, native gates).

For every enabled benchmark the workload generator is run and the native
(unoptimized) circuit is synthesized; the measured Pauli and CNOT counts are
stored in ``extra_info`` next to the published numbers so the bench output
regenerates the table.
"""

import pytest

import repro
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import selected_benchmarks


@pytest.mark.parametrize("name", selected_benchmarks())
def test_table2_native_workload(benchmark, name):
    spec = get_benchmark(name)

    def build():
        terms = spec.terms()
        circuit = repro.compile(terms, level=0).circuit
        return terms, circuit

    terms, circuit = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "category": spec.category,
            "num_qubits": spec.num_qubits,
            "paper_num_paulis": spec.paper_num_paulis,
            "measured_num_paulis": len(terms),
            "paper_num_cnots": spec.paper_num_cnots,
            "measured_num_cnots": circuit.cx_count(),
            "measured_single_qubit": circuit.single_qubit_count(),
        }
    )
