"""Conjugation-throughput benchmark: packed engine vs. the legacy loop path.

For every Table II workload in the selected tier the script compiles the
program with the full QuCLEAR preset, takes the extracted Clifford tail, and
measures how fast the workload's Pauli terms conjugate through it:

* ``legacy_terms_per_sec`` — the pre-vectorization reference path
  (:func:`repro.clifford.conjugation.conjugate_pauli_by_circuit`, one Python
  gate loop per Pauli string);
* ``packed_terms_per_sec`` — gate streaming over the bit-packed table
  (every gate applied to all terms at once);
* ``tableau_terms_per_sec`` — the frozen-tableau engine
  (:class:`~repro.clifford.engine.PackedConjugator`, cost independent of the
  tail's gate count);
* ``extraction_terms_per_sec`` — terms processed per second by the
  table-native ``CliffordExtraction`` pass itself (best-of-3 per-pass
  wall-clock from the full level-3 compile), the throughput of Algorithm 2
  on the packed store.  Since the streaming peephole engine landed the pass
  also folds local optimization into emission, so this figure covers the
  fused gate-tail optimization too;
* ``peephole_gates_per_sec`` — gates per second of the streaming
  wire-indexed peephole engine
  (:func:`repro.transpile.wire_optimizer.streaming_peephole_optimize`) over
  the workload's *raw* (unfused) extraction tail.  This is the
  scale-flatness signal: the rate must hold from the small to the medium
  tier, or the engine has regressed to super-linear behaviour.

It also times :func:`repro.compile_many` against a sequential compile loop
over the tier's programs — recording the overhead-aware executor plan
(:func:`repro.compiler.plan_batch`) that ``compile_many`` resolved for the
batch — and records each workload's per-pass compile-time breakdown.

The ``service`` block measures the compilation-as-a-service layer on H2O:
cold-compile vs. warm-cache-hit latency through the
:class:`~repro.service.cache.ArtifactCache` (memory layer and disk layer
separately — the disk figure includes the full wire deserialization), and
single-process requests/sec against a live in-process HTTP server on the
warm-hit path.  ``warm_hit_speedup`` and ``requests_per_sec`` are
strict-gated by the CI baselines like the per-workload throughput floors.

The ``parametric`` block measures the :mod:`repro.parametric` fast path on
the same workload: one-time template compilation, per-binding replay
latency, the ``bind_speedup`` ratio against a from-scratch level-3 compile
of the identical bound program, and single-client ``POST /bind`` HTTP
throughput (``bind_requests_per_sec``, also copied into the ``service``
block).  ``bind_speedup`` and ``bind_requests_per_sec`` are strict-gated.

The ``service_load`` block delegates to :mod:`bench_service_load` — the
open-loop Poisson load harness — at a small fixed offered rate:
``saturation_rps`` / ``fleet_saturation_rps`` floors and the ``p99_ms``
ceiling are strict-gated too.  ``--backend`` routes the whole run (and the
service workers the fleet probe spawns) through a named array backend and
records it in ``summary.array_backend``.

Results are written as machine-readable JSON (``BENCH_throughput.json`` by
default); ``scripts/check_bench_regression.py`` diffs two such files and is
what the CI ``bench`` job gates on (small *and* medium tiers).

Run with:  PYTHONPATH=src python benchmarks/bench_throughput.py --tier small
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time

import numpy as np

import repro
from repro.arrays import ENV_VAR as BACKEND_ENV_VAR
from repro.arrays import available_backends, default_backend, resolve_backend
from repro.clifford.conjugation import conjugate_pauli_by_circuit
from repro.clifford.engine import PackedConjugator
from repro.compiler import plan_batch
from repro.compiler.passes import CliffordExtraction, GroupCommuting
from repro.compiler.pipeline import Pipeline
from repro.paulis.packed import PackedPauliTable
from repro.transpile.wire_optimizer import streaming_peephole_optimize
from repro.workloads.registry import (
    MEDIUM_BENCHMARKS,
    SMALL_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)

SCHEMA = "repro-bench-throughput/v1"


def _tier_workloads(tier: str) -> list[str]:
    if tier == "small":
        return list(SMALL_BENCHMARKS)
    if tier == "medium":
        return list(MEDIUM_BENCHMARKS)
    if tier == "full":
        return benchmark_names()
    raise SystemExit(f"unknown tier {tier!r} (expected small/medium/full)")


def _timed(fn, min_time: float) -> tuple[float, int]:
    """Run ``fn`` repeatedly until ``min_time`` seconds accumulate.

    Returns (total seconds, iterations).  The first call is included so
    one-shot costs (array packing) are amortized the same way for every
    candidate.
    """
    iterations = 0
    start = time.perf_counter()
    while True:
        fn()
        iterations += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_time:
            return elapsed, iterations


def bench_workload(name: str, min_time: float) -> dict:
    spec = get_benchmark(name)
    terms = spec.terms()
    paulis = [term.pauli for term in terms]
    # Best-of-3 per-pass timings: a single compile's CliffordExtraction
    # wall-clock is noisy for the small workloads, and the regression job
    # gates on the derived extraction_terms_per_sec floor.
    result = repro.compile(terms, level=3)
    pass_timings = dict(result.metadata["pass_timings"])
    for _ in range(2):
        repeat = repro.compile(terms, level=3)
        for pass_name, seconds in repeat.metadata["pass_timings"].items():
            if pass_name in pass_timings:
                pass_timings[pass_name] = min(pass_timings[pass_name], seconds)
    tail = result.extracted_clifford
    tableau = result.extraction.conjugation
    extraction_seconds = pass_timings["CliffordExtraction"]

    def legacy():
        for pauli in paulis:
            conjugate_pauli_by_circuit(pauli, tail)

    def packed():
        table = PackedPauliTable.from_paulis(paulis)
        table.apply_circuit(tail)

    conjugator = PackedConjugator.from_tableau(tableau)

    def frozen_tableau():
        conjugator.conjugate_table(PackedPauliTable.from_paulis(paulis))

    # Streaming peephole throughput over the *raw* (unfused) extraction tail:
    # the same gate stream the emission-fused pass folds away, measured as a
    # standalone pass so the rate is comparable across tiers.
    raw_tail = Pipeline(
        [GroupCommuting(), CliffordExtraction()], name="raw-tail"
    ).run(terms).circuit

    def peephole_stream():
        streaming_peephole_optimize(raw_tail)

    legacy_seconds, legacy_iters = _timed(legacy, min_time)
    packed_seconds, packed_iters = _timed(packed, min_time)
    tableau_seconds, tableau_iters = _timed(frozen_tableau, min_time)
    peephole_seconds, peephole_iters = _timed(peephole_stream, min_time)

    legacy_rate = len(paulis) * legacy_iters / legacy_seconds
    packed_rate = len(paulis) * packed_iters / packed_seconds
    tableau_rate = len(paulis) * tableau_iters / tableau_seconds
    peephole_rate = len(raw_tail) * peephole_iters / peephole_seconds
    return {
        "num_qubits": spec.num_qubits,
        "num_terms": len(terms),
        "tail_gates": len(tail),
        "peephole_input_gates": len(raw_tail),
        "legacy_terms_per_sec": legacy_rate,
        "packed_terms_per_sec": packed_rate,
        "tableau_terms_per_sec": tableau_rate,
        "extraction_terms_per_sec": len(terms) / extraction_seconds,
        "peephole_gates_per_sec": peephole_rate,
        "speedup": packed_rate / legacy_rate,
        "tableau_speedup": tableau_rate / legacy_rate,
        "compile_seconds": result.compile_seconds,
        "pass_timings": pass_timings,
    }


#: workload measured by the service and parametric blocks (in both CI tiers)
SERVICE_WORKLOAD = "H2O"


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_service(http_requests: int = 50) -> dict:
    """Cold-compile vs. warm-cache-hit latency, plus HTTP requests/sec."""
    import tempfile

    from repro.service.cache import ArtifactCache
    from repro.service.client import Client
    from repro.service.server import ServiceServer, run_server_in_thread

    terms = get_benchmark(SERVICE_WORKLOAD).terms()

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as cache_dir:
        cache = ArtifactCache(cache_dir)
        key = cache.key_for(terms, level=3)
        cold_seconds = _best_of(lambda: repro.compile(terms, level=3), 3)
        cache.put(key, repro.compile(terms, level=3))
        warm_seconds = _best_of(lambda: cache.get(key), 10)

        def disk_hit():
            cache.forget_memory()
            cache.get(key)

        disk_seconds = _best_of(disk_hit, 5)

        server = ServiceServer(cache=cache, window_seconds=0.001)
        with run_server_in_thread(server):
            with Client(port=server.port) as client:
                client.compile(terms, include_result=False)  # prime connection
                start = time.perf_counter()
                for _ in range(http_requests):
                    client.compile(terms, include_result=False)
                http_seconds = time.perf_counter() - start
        cache_stats = cache.stats()

    return {
        "workload": SERVICE_WORKLOAD,
        "num_terms": len(terms),
        "cold_compile_seconds": cold_seconds,
        "warm_hit_seconds": warm_seconds,
        "warm_hit_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "disk_hit_seconds": disk_seconds,
        "disk_hit_speedup": cold_seconds / disk_seconds if disk_seconds > 0 else 0.0,
        "http_requests": http_requests,
        "requests_per_sec": http_requests / http_seconds if http_seconds > 0 else 0.0,
        "cache_hits": cache_stats["hits"],
        "cache_misses": cache_stats["misses"],
    }


def bench_parametric(http_requests: int = 200) -> dict:
    """One-time template compilation vs. per-binding replay on H2O.

    Measures the tentpole claim of :mod:`repro.parametric`: tracing the
    preset pipeline once (``template_compile_seconds``) turns every
    subsequent angle binding into a microsecond replay (``bind_seconds``),
    ``bind_speedup`` being the ratio against a from-scratch level-3 compile
    of the identical bound program — same machine, so machine-independent
    like ``speedup``.  ``bind_requests_per_sec`` is single-client HTTP
    throughput of ``POST /bind`` against the server's cached template (the
    request is served inline on the event loop, never the batching window).
    """
    import tempfile

    from repro.parametric import ParametricProgram, compile_template
    from repro.service.cache import ArtifactCache
    from repro.service.client import Client
    from repro.service.server import ServiceServer, run_server_in_thread

    terms = get_benchmark(SERVICE_WORKLOAD).terms()
    # one parameter per term — the most general (and slowest-to-bind) ansatz
    program = ParametricProgram.from_terms(terms, list(range(len(terms))))
    params = 0.1 + 0.8 * np.arange(program.num_params) / program.num_params

    template_seconds = _best_of(lambda: compile_template(program, level=3), 3)
    template = compile_template(program, level=3)
    cold_seconds = _best_of(
        lambda: repro.compile(program.to_sum(params), level=3), 3
    )
    bind_seconds = _best_of(lambda: template.bind(params), 200)

    with tempfile.TemporaryDirectory(prefix="repro-bench-parametric-") as cache_dir:
        server = ServiceServer(cache=ArtifactCache(cache_dir), window_seconds=0.001)
        with run_server_in_thread(server):
            with Client(port=server.port) as client:
                handle = client.compile_template(program, level=3)
                wire_params = [float(value) for value in params]
                # prime the keep-alive connection before timing
                client.bind(
                    wire_params,
                    template_key=handle.template_key,
                    include_result=False,
                )
                start = time.perf_counter()
                for _ in range(http_requests):
                    client.bind(
                        wire_params,
                        template_key=handle.template_key,
                        include_result=False,
                    )
                http_seconds = time.perf_counter() - start

    return {
        "workload": SERVICE_WORKLOAD,
        "num_terms": len(terms),
        "num_params": program.num_params,
        "skeleton_gates": template.skeleton_gate_count,
        "template_compile_seconds": template_seconds,
        "cold_compile_seconds": cold_seconds,
        "bind_seconds": bind_seconds,
        "bind_speedup": cold_seconds / bind_seconds if bind_seconds > 0 else 0.0,
        "fallback_binds": template.fallback_binds,
        "http_bind_requests": http_requests,
        "bind_requests_per_sec": (
            http_requests / http_seconds if http_seconds > 0 else 0.0
        ),
    }


def bench_batch_compile(names: list[str]) -> dict:
    programs = [get_benchmark(name).terms() for name in names]
    plan = plan_batch(programs)
    start = time.perf_counter()
    for program in programs:
        repro.compile(program, level=3)
    sequential_seconds = time.perf_counter() - start
    start = time.perf_counter()
    repro.compile_many(programs, level=3)
    batch_seconds = time.perf_counter() - start
    return {
        "num_programs": len(programs),
        "total_terms": plan.total_terms,
        "executor": plan.executor,
        "max_workers": plan.max_workers,
        "chunksize": plan.chunksize,
        "executor_reason": plan.reason,
        "sequential_seconds": sequential_seconds,
        "compile_many_seconds": batch_seconds,
        "speedup": sequential_seconds / batch_seconds if batch_seconds > 0 else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier",
        default=os.environ.get("REPRO_BENCH_TIER", "small"),
        choices=["small", "medium", "full"],
        help="workload tier (default: REPRO_BENCH_TIER or small)",
    )
    parser.add_argument(
        "--output", default="BENCH_throughput.json", help="where to write the JSON report"
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.2,
        help="minimum seconds of measurement per candidate (default 0.2)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="explicit workload names (overrides --tier)",
    )
    parser.add_argument(
        "--skip-batch", action="store_true", help="skip the compile_many comparison"
    )
    parser.add_argument(
        "--skip-service", action="store_true", help="skip the service latency block"
    )
    parser.add_argument(
        "--skip-parametric",
        action="store_true",
        help="skip the parametric template/bind block",
    )
    parser.add_argument(
        "--skip-service-load",
        action="store_true",
        help="skip the open-loop service load block",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="array backend every measurement (and spawned service worker) "
        f"routes through; sets {BACKEND_ENV_VAR} for the whole run and is "
        "recorded in summary.array_backend (default: the ambient backend)",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        resolve_backend(args.backend)  # fail fast on an unavailable backend
        # the env var (not a local override) so worker subprocesses spawned
        # by the service-load fleet inherit the same backend
        os.environ[BACKEND_ENV_VAR] = args.backend

    names = args.workloads if args.workloads else _tier_workloads(args.tier)
    workloads: dict[str, dict] = {}
    for name in names:
        print(f"[bench] {name} ...", flush=True)
        entry = bench_workload(name, args.min_time)
        workloads[name] = entry
        print(
            f"    legacy {entry['legacy_terms_per_sec']:>12.0f} terms/s | "
            f"packed {entry['packed_terms_per_sec']:>12.0f} terms/s | "
            f"speedup {entry['speedup']:6.1f}x | "
            f"tableau {entry['tableau_speedup']:6.1f}x | "
            f"peephole {entry['peephole_gates_per_sec']:>10.0f} gates/s",
            flush=True,
        )

    speedups = [entry["speedup"] for entry in workloads.values()]
    report = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "tier": args.tier if not args.workloads else "custom",
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": workloads,
        "summary": {
            "num_workloads": len(workloads),
            "total_terms": sum(entry["num_terms"] for entry in workloads.values()),
            "min_speedup": min(speedups),
            "geomean_speedup": math.exp(sum(math.log(s) for s in speedups) / len(speedups)),
            "array_backend": default_backend().name,
        },
    }
    if not args.skip_batch:
        print("[bench] compile_many vs sequential compile ...", flush=True)
        report["batch_compile"] = bench_batch_compile(names)
        print(
            f"    sequential {report['batch_compile']['sequential_seconds']:.2f}s | "
            f"compile_many {report['batch_compile']['compile_many_seconds']:.2f}s | "
            f"executor {report['batch_compile']['executor']}",
            flush=True,
        )
    if not args.skip_service:
        print("[bench] service cold vs warm-cache latency ...", flush=True)
        report["service"] = bench_service()
        print(
            f"    cold {report['service']['cold_compile_seconds'] * 1e3:.1f}ms | "
            f"warm hit {report['service']['warm_hit_seconds'] * 1e6:.0f}us "
            f"({report['service']['warm_hit_speedup']:.0f}x) | "
            f"disk hit {report['service']['disk_hit_seconds'] * 1e3:.2f}ms "
            f"({report['service']['disk_hit_speedup']:.1f}x) | "
            f"{report['service']['requests_per_sec']:.0f} req/s",
            flush=True,
        )
    if not args.skip_parametric:
        print("[bench] parametric template compile vs bind ...", flush=True)
        report["parametric"] = bench_parametric()
        if "service" in report:
            # the bind throughput also gates under the service block: it is a
            # serving-path metric, and SERVICE_METRICS is where CI looks first
            report["service"]["bind_requests_per_sec"] = report["parametric"][
                "bind_requests_per_sec"
            ]
        print(
            f"    template {report['parametric']['template_compile_seconds'] * 1e3:.1f}ms | "
            f"bind {report['parametric']['bind_seconds'] * 1e6:.0f}us "
            f"({report['parametric']['bind_speedup']:.0f}x vs cold) | "
            f"{report['parametric']['bind_requests_per_sec']:.0f} bind req/s",
            flush=True,
        )
    if not args.skip_service_load:
        print("[bench] open-loop service load + fleet saturation ...", flush=True)
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_service_load import bench_service_load

        report["service_load"] = bench_service_load(
            offered_rate=40.0,
            duration=2.0,
            clients=6,
            saturation_seconds=2.0,
            fleet_workers=2,
        )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"[bench] wrote {args.output}: geomean speedup "
        f"{report['summary']['geomean_speedup']:.1f}x over the legacy loop "
        f"(min {report['summary']['min_speedup']:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
