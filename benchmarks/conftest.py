"""Shared configuration for the benchmark harness.

Benchmark tiers
---------------
The full benchmark suite of the paper includes workloads with > 13 000 Pauli
strings whose pure-Python compilation takes minutes to hours.  The harness
therefore runs in tiers selected with the ``REPRO_BENCH_TIER`` environment
variable:

* ``small``  — sub-second workloads only (default on CI),
* ``medium`` — everything that compiles in a few seconds (the default here),
* ``full``   — all 19 benchmarks of Table II.
"""

from __future__ import annotations

import os

from repro.workloads.registry import MEDIUM_BENCHMARKS, SMALL_BENCHMARKS, benchmark_names

_TIER = os.environ.get("REPRO_BENCH_TIER", "medium").lower()


def selected_benchmarks() -> list[str]:
    """Benchmark names enabled for the current tier."""
    if _TIER == "small":
        return list(SMALL_BENCHMARKS)
    if _TIER == "full":
        return benchmark_names()
    return list(MEDIUM_BENCHMARKS)


def tier() -> str:
    return _TIER
