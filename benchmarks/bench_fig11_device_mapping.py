"""Experiment E6 — Fig. 11: mapping to devices with limited connectivity.

The paper maps the largest benchmark of each category to a 64-qubit 2-D grid
(Google Sycamore) and a 65-qubit heavy-hex lattice (IBM Manhattan) and
compares post-routing CNOT counts.  The default tier uses a mid-size
benchmark per category so the bench completes quickly; set
``REPRO_BENCH_TIER=full`` for the paper's exact workload list.
"""

import pytest

from repro.evaluation.mapping import MAPPED_COMPILERS, compare_mapped_compilers
from repro.transpile.coupling import CouplingMap
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import tier

#: paper Fig. 11 CNOT counts on Google Sycamore (subset)
PAPER_SYCAMORE = {
    "UCC-(10,20)": {"QuCLEAR": 63222, "qiskit-like": 86486, "tket-like": 197757, "paulihedral-like": 87640},
    "benzene": {"QuCLEAR": 6302, "qiskit-like": 9123, "tket-like": 9835, "paulihedral-like": 9425},
    "LABS-(n20)": {"QuCLEAR": 3845, "qiskit-like": 6485, "tket-like": 4550, "paulihedral-like": 6867},
    "MaxCut-(n20,r12)": {"QuCLEAR": 542, "qiskit-like": 525, "tket-like": 729, "paulihedral-like": 492},
}

if tier() == "full":
    _WORKLOADS = ["UCC-(6,12)", "benzene", "LABS-(n20)", "MaxCut-(n20, r12)"]
elif tier() == "medium":
    _WORKLOADS = ["UCC-(4,8)", "H2O", "LABS-(n15)", "MaxCut-(n20, r12)"]
else:
    _WORKLOADS = ["UCC-(2,6)", "LiH", "LABS-(n10)", "MaxCut-(n15, r4)"]

_DEVICES = {
    "sycamore": CouplingMap.sycamore,
    "ibm-manhattan": CouplingMap.ibm_manhattan,
}


@pytest.mark.parametrize("device", sorted(_DEVICES))
@pytest.mark.parametrize("name", _WORKLOADS)
def test_fig11_device_mapping(benchmark, name, device):
    spec = get_benchmark(name)
    coupling = _DEVICES[device]()

    def run():
        return compare_mapped_compilers(spec, coupling, compilers=MAPPED_COMPILERS)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "device": device,
            **{
                f"measured_cx_{compiler}": metrics["cx_count"]
                for compiler, metrics in comparison.results.items()
            },
        }
    )
