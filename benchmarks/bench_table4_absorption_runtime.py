"""Experiment E3 — Table IV: Clifford Absorption runtime versus the number of
observables (chemistry workloads) and the number of measured states (QAOA).

The paper reports linear scaling on UCC-(10,20) and MaxCut-(n20, r12); the
workloads here use the largest benchmarks of the enabled tier so that the
bench completes in reasonable time while exercising the same code path.
"""

import os

import numpy as np
import pytest

from repro.core.absorption import ObservableAbsorber, absorb_probabilities
from repro.core.extraction import CliffordExtractor
from repro.paulis.pauli import PauliString
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import tier

#: paper Table IV runtimes in seconds for UCC-(10,20) / MaxCut-(n20, r12)
PAPER_OBSERVABLE_SECONDS = {10: 0.047, 50: 0.108, 100: 0.210, 500: 1.071, 1000: 2.189}
PAPER_STATE_SECONDS = {10: 0.002, 50: 0.009, 100: 0.015, 500: 0.079, 1000: 0.156}

_COUNTS = [10, 50, 100, 500, 1000] if tier() != "small" else [10, 50, 100]

_OBSERVABLE_BENCHMARK = "UCC-(4,8)" if tier() != "full" else "UCC-(6,12)"
_STATE_BENCHMARK = "MaxCut-(n20, r12)" if tier() != "small" else "MaxCut-(n15, r4)"


def _random_observables(num_qubits: int, count: int, seed: int = 5) -> list[PauliString]:
    rng = np.random.default_rng(seed)
    observables = []
    for _ in range(count):
        label = "".join(rng.choice(list("IXYZ")) for _ in range(num_qubits))
        if set(label) == {"I"}:
            label = "Z" + label[1:]
        observables.append(PauliString.from_label(label))
    return observables


@pytest.fixture(scope="module")
def chemistry_extraction():
    terms = get_benchmark(_OBSERVABLE_BENCHMARK).terms()
    return CliffordExtractor().extract(terms)


@pytest.fixture(scope="module")
def qaoa_extraction():
    terms = get_benchmark(_STATE_BENCHMARK).terms()
    return CliffordExtractor().extract(terms)


@pytest.mark.parametrize("count", _COUNTS)
def test_table4_observable_absorption(benchmark, chemistry_extraction, count):
    observables = _random_observables(chemistry_extraction.num_qubits, count)
    absorber = ObservableAbsorber(chemistry_extraction.conjugation)

    result = benchmark(absorber.absorb_all, observables)
    assert len(result) == count
    benchmark.extra_info.update(
        {
            "mode": "observables",
            "benchmark": _OBSERVABLE_BENCHMARK,
            "count": count,
            "paper_seconds_ucc_10_20": PAPER_OBSERVABLE_SECONDS.get(count),
        }
    )


@pytest.mark.parametrize("count", _COUNTS)
def test_table4_state_absorption(benchmark, qaoa_extraction, count):
    absorber = absorb_probabilities(qaoa_extraction)
    rng = np.random.default_rng(9)
    num_qubits = qaoa_extraction.num_qubits
    counts = {}
    while len(counts) < count:
        bitstring = "".join(rng.choice(["0", "1"]) for _ in range(num_qubits))
        counts[bitstring] = int(rng.integers(1, 50))

    remapped = benchmark(absorber.map_counts, counts)
    assert sum(remapped.values()) == sum(counts.values())
    benchmark.extra_info.update(
        {
            "mode": "states",
            "benchmark": _STATE_BENCHMARK,
            "count": count,
            "paper_seconds_maxcut_n20_r12": PAPER_STATE_SECONDS.get(count),
        }
    )


def test_table4_compile_pass_timings(benchmark):
    """Where the end-to-end compile time goes, per pipeline pass.

    Complements the absorption-runtime rows of Table IV: the pipeline records
    per-pass wall-clock timings in ``metadata["pass_timings"]``, so the
    runtime story covers extraction, local optimization and absorption
    preparation in one place.
    """
    import repro

    terms = get_benchmark(_OBSERVABLE_BENCHMARK).terms()

    result = benchmark.pedantic(lambda: repro.compile(terms, level=3), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "mode": "pass_timings",
            "benchmark": _OBSERVABLE_BENCHMARK,
            "compile_seconds": result.compile_seconds,
            **{f"seconds_{name}": value for name, value in result.metadata["pass_timings"].items()},
        }
    )
