"""Open-loop load generation against the compilation service (and fleet).

Closed-loop clients (issue, wait, issue) can never observe queueing delay:
when the server slows down, the clients slow down with it and the measured
latency stays flat.  This harness is **open-loop**: request arrival times
are drawn from a Poisson process at a configurable offered rate *before*
the run, and every latency is measured from the request's *scheduled
arrival* — so a server that falls behind the offered load shows the backlog
as rising p99, exactly like production traffic would.

Three request mixes run against a live in-process server:

* ``cached_hit`` — repeat ``POST /compile`` of one workload (H2O) whose
  artifact is warm: the pure serving-path overhead;
* ``compile`` — unique programs per request (cold compiles), offered at a
  quarter of the base rate: the end-to-end compile pipeline under load;
* ``bind`` — ``POST /bind`` replays against a cached template: the
  microsecond parametric path.

Two closed-loop saturation probes follow: ``saturation_rps`` hammers a
single server with concurrent keep-alive clients, and
``fleet_saturation_rps`` repeats the probe against a consistent-hash fleet
front (``--fleet-workers`` worker processes, shared cache dir).
``fleet_speedup`` is their ratio — it demonstrates horizontal scaling on
multi-core machines and honestly records ~1x (front proxy overhead, shared
core) on single-core CI runners, which is why the committed floors gate the
absolute rates rather than the ratio.

A final **chaos probe** re-runs the cached-hit mix against a 2-worker fleet
with fault injection armed (transient 500s, slow handlers, cache
corruption, a hard worker kill) and *retrying* clients
(``--retries``/``--backoff``); its ``chaos_success_rate`` is recorded in
the report but not gated.

The report (``service_load`` block) is strict-gated by
``scripts/check_bench_regression.py``: ``saturation_rps`` and
``fleet_saturation_rps`` as floors, ``p99_ms`` (of the cached-hit mix) as a
latency ceiling.

Run with::

    PYTHONPATH=src python benchmarks/bench_service_load.py --offered-rate 40
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.arrays import default_backend  # noqa: E402
from repro.observability import DEFAULT_SAMPLE_RATE, TRACER  # noqa: E402
from repro.parametric import ParametricProgram  # noqa: E402
from repro.paulis.pauli import PauliString  # noqa: E402
from repro.paulis.term import PauliTerm  # noqa: E402
from repro.service.cache import ArtifactCache  # noqa: E402
from repro.service.client import Client  # noqa: E402
from repro.service.fleet import FleetFront  # noqa: E402
from repro.service.server import ServiceServer, run_server_in_thread  # noqa: E402
from repro.workloads.registry import get_benchmark  # noqa: E402

SCHEMA = "repro-bench-service-load/v1"

#: the workload whose artifact/template back the cached-hit and bind mixes
SERVICE_WORKLOAD = "H2O"


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _poisson_arrivals(rate: float, duration: float, seed: int) -> "list[float]":
    """Exponential inter-arrival offsets covering ``duration`` seconds."""
    rng = random.Random(seed)
    arrivals: "list[float]" = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return arrivals
        arrivals.append(t)


def open_loop(
    make_request,
    port: int,
    rate: float,
    duration: float,
    clients: int,
    seed: int,
    retries: int = 0,
    backoff: float = 0.05,
) -> dict:
    """Offer Poisson traffic at ``rate`` req/s; latency from scheduled arrival.

    ``clients`` keep-alive connections drain the arrival schedule; when all
    are busy, later arrivals queue and their measured latency grows by the
    wait — the open-loop property that makes saturation visible.
    """
    arrivals = _poisson_arrivals(rate, duration, seed)
    latencies: "list[float]" = []
    errors = [0]
    cursor = [0]
    lock = threading.Lock()
    epoch = time.perf_counter() + 0.1  # let every worker reach its loop

    def _worker() -> None:
        with Client(port=port, retries=retries, backoff=backoff) as client:
            try:
                client.healthz()  # open the keep-alive socket before timing
            except Exception:  # noqa: BLE001
                pass
            while True:
                with lock:
                    index = cursor[0]
                    cursor[0] += 1
                if index >= len(arrivals):
                    return
                scheduled = epoch + arrivals[index]
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    make_request(client, index)
                except Exception:  # noqa: BLE001 — counted, not raised
                    with lock:
                        errors[0] += 1
                    continue
                finished = time.perf_counter()
                with lock:
                    latencies.append((finished - scheduled) * 1000.0)

    threads = [threading.Thread(target=_worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - epoch
    latencies.sort()
    return {
        "offered_rps": rate,
        "requests": len(arrivals),
        "completed": len(latencies),
        "errors": errors[0],
        "achieved_rps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "max_ms": latencies[-1] if latencies else 0.0,
    }


def closed_loop(
    make_request,
    port: int,
    duration: float,
    clients: int,
    retries: int = 0,
    backoff: float = 0.05,
) -> float:
    """Saturation probe: ``clients`` threads hammer as fast as they can."""
    counts = [0] * clients
    stop = time.perf_counter() + duration

    def _worker(slot: int) -> None:
        with Client(port=port, retries=retries, backoff=backoff) as client:
            while time.perf_counter() < stop:
                try:
                    make_request(client, counts[slot])
                except Exception:  # noqa: BLE001 — a failed probe just doesn't count
                    continue
                counts[slot] += 1

    threads = [threading.Thread(target=_worker, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed if elapsed > 0 else 0.0


def chaos_probe(
    terms,
    duration: float,
    clients: int,
    retries: int,
    backoff: float,
    seed: int,
) -> dict:
    """Closed-loop cached-hit load against a fault-injected 2-worker fleet.

    Arms transient handler errors, slow handlers, cache corruption, and one
    hard worker kill, then measures what fraction of requests still resolve
    successfully through the retry/respawn machinery.  The resulting
    ``chaos_success_rate`` is recorded in the report but deliberately **not**
    gated — it demonstrates the failure hardening without making CI flaky.
    """
    import http.client as http_client

    outcomes = {"ok": 0, "failed": 0}
    lock = threading.Lock()
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as cache_dir:
        fleet = FleetFront(
            workers=2,
            cache_dir=cache_dir,
            worker_args=["--window-ms", "1", "--sweep-interval", "0"],
            enable_faults=True,
            breaker_cooldown=0.2,
        )
        with run_server_in_thread(fleet, startup_timeout=120.0):
            with Client(port=fleet.port) as primer:
                primer.compile(terms, include_result=False)  # warm the artifact
            conn = http_client.HTTPConnection("127.0.0.1", fleet.port, timeout=60)
            try:
                conn.request(
                    "POST",
                    "/fault",
                    json.dumps({
                        "seed": seed,
                        "rules": [
                            {"site": "server.handle", "kind": "delay",
                             "delay_ms": 10, "probability": 0.2},
                            {"site": "server.handle", "kind": "error",
                             "probability": 0.03, "times": 10},
                            {"site": "cache.read", "kind": "corrupt",
                             "probability": 0.05},
                            {"site": "server.handle", "kind": "kill",
                             "probability": 0.005, "times": 1},
                        ],
                    }).encode(),
                    {"Content-Type": "application/json"},
                )
                conn.getresponse().read()
            finally:
                conn.close()

            stop = time.perf_counter() + duration

            def _worker() -> None:
                with Client(
                    port=fleet.port, timeout=60.0, retries=retries, backoff=backoff
                ) as client:
                    while time.perf_counter() < stop:
                        try:
                            client.compile(terms, include_result=False)
                        except Exception:  # noqa: BLE001 — counted, not raised
                            with lock:
                                outcomes["failed"] += 1
                        else:
                            with lock:
                                outcomes["ok"] += 1

            threads = [threading.Thread(target=_worker) for _ in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
    total = outcomes["ok"] + outcomes["failed"]
    return {
        "requests": total,
        "failures": outcomes["failed"],
        "retries": retries,
        "chaos_success_rate": outcomes["ok"] / total if total else 0.0,
    }


def _unique_program(seed: int) -> "list[PauliTerm]":
    """A small distinct program per request — every compile is cold."""
    rng = random.Random(seed)
    terms = []
    for _ in range(6):
        label = "".join(rng.choice("IXYZ") for _ in range(4))
        if set(label) == {"I"}:
            label = "Z" + label[1:]
        terms.append(PauliTerm(PauliString.from_label(label), rng.uniform(-1, 1)))
    return terms


def bench_service_load(
    offered_rate: float = 40.0,
    duration: float = 3.0,
    clients: int = 8,
    saturation_seconds: float = 3.0,
    fleet_workers: int = 2,
    seed: int = 20250807,
    retries: int = 0,
    backoff: float = 0.05,
    chaos_seconds: float = 2.0,
    trace: bool = False,
) -> dict:
    terms = get_benchmark(SERVICE_WORKLOAD).terms()
    program = ParametricProgram.from_terms(terms, [i % 4 for i in range(len(terms))])
    params = [0.1, 0.3, 0.5, 0.7]

    # sample aggressively during a traced run: the mixes are short, and the
    # queue-wait percentile needs enough spans to be meaningful; an untraced
    # run keeps the production-default rate so the gated floors measure the
    # serving path as actually deployed
    trace_sample = 0.25 if trace else DEFAULT_SAMPLE_RATE
    if trace:
        TRACER.clear()

    mixes: "dict[str, dict]" = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-load-") as cache_dir:
        server = ServiceServer(
            cache=ArtifactCache(cache_dir), window_seconds=0.001,
            trace_sample=trace_sample,
        )
        with run_server_in_thread(server):
            with Client(port=server.port) as primer:
                primer.compile(terms, include_result=False)  # warm the artifact
                template_key = primer.compile_template(program).template_key

            def cached_hit(client: Client, _index: int) -> None:
                client.compile(terms, include_result=False)

            def cold_compile(client: Client, index: int) -> None:
                client.compile(_unique_program(seed * 31 + index), include_result=False)

            def bind(client: Client, _index: int) -> None:
                client.bind(params, template_key=template_key, include_result=False)

            print(f"[load] open-loop cached_hit @ {offered_rate:.0f} rps ...", flush=True)
            mixes["cached_hit"] = open_loop(
                cached_hit, server.port, offered_rate, duration, clients, seed,
                retries=retries, backoff=backoff,
            )
            print(
                f"[load] open-loop compile @ {offered_rate / 4:.0f} rps ...", flush=True
            )
            mixes["compile"] = open_loop(
                cold_compile, server.port, max(1.0, offered_rate / 4), duration,
                clients, seed + 1, retries=retries, backoff=backoff,
            )
            print(f"[load] open-loop bind @ {offered_rate:.0f} rps ...", flush=True)
            mixes["bind"] = open_loop(
                bind, server.port, offered_rate, duration, clients, seed + 2,
                retries=retries, backoff=backoff,
            )

            # harvest queue-wait spans before the saturation probe floods the
            # ring buffer: the server runs in-process, so the global tracer
            # holds the spans the open-loop mixes just sampled
            trace_block: "dict | None" = None
            if trace:
                waits = sorted(
                    span["duration_seconds"] * 1000.0
                    for span in TRACER.find("scheduler.queue_wait")
                )
                trace_block = {
                    "sample_rate": trace_sample,
                    "traced_requests": len(TRACER.traces(limit=500)),
                    "queue_wait_spans": len(waits),
                    "queue_wait_p50_ms": _percentile(waits, 0.50),
                    "queue_wait_p99_ms": _percentile(waits, 0.99),
                }

            print("[load] closed-loop saturation (single server) ...", flush=True)
            saturation = closed_loop(
                cached_hit, server.port, saturation_seconds, clients,
                retries=retries, backoff=backoff,
            )

    print(f"[load] closed-loop saturation (fleet of {fleet_workers}) ...", flush=True)
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as cache_dir:
        fleet = FleetFront(
            workers=fleet_workers,
            cache_dir=cache_dir,
            worker_args=["--window-ms", "1", "--sweep-interval", "0"],
        )
        with run_server_in_thread(fleet, startup_timeout=120.0):
            with Client(port=fleet.port) as primer:
                primer.compile(terms, include_result=False)

            def fleet_hit(client: Client, _index: int) -> None:
                client.compile(terms, include_result=False)

            fleet_saturation = closed_loop(
                fleet_hit, fleet.port, saturation_seconds, clients,
                retries=retries, backoff=backoff,
            )

    print("[load] chaos probe (fault-injected fleet, retrying clients) ...", flush=True)
    chaos = chaos_probe(
        terms,
        duration=chaos_seconds,
        clients=clients,
        retries=max(retries, 4),
        backoff=max(backoff, 0.02),
        seed=seed,
    )

    for name, mix in mixes.items():
        print(
            f"    {name:<11} offered {mix['offered_rps']:>6.0f} rps | achieved "
            f"{mix['achieved_rps']:>6.0f} rps | p50 {mix['p50_ms']:>7.2f} ms | "
            f"p99 {mix['p99_ms']:>7.2f} ms | errors {mix['errors']}",
            flush=True,
        )
    speedup = fleet_saturation / saturation if saturation > 0 else 0.0
    print(
        f"    saturation {saturation:.0f} req/s | fleet({fleet_workers}) "
        f"{fleet_saturation:.0f} req/s | speedup {speedup:.2f}x",
        flush=True,
    )
    print(
        f"    chaos       {chaos['requests']} requests | success rate "
        f"{chaos['chaos_success_rate']:.4f} | failures {chaos['failures']}",
        flush=True,
    )
    if trace_block is not None:
        print(
            f"    trace       {trace_block['traced_requests']} traces | "
            f"{trace_block['queue_wait_spans']} queue-wait spans | "
            f"queue-wait p99 {trace_block['queue_wait_p99_ms']:.3f} ms",
            flush=True,
        )
    block_trace_extras = {}
    if trace_block is not None:
        block_trace_extras = {
            "trace": trace_block,
            # deliberately ungated: scheduler queue wait measured from
            # sampled spans, recorded so regressions are visible in reports
            "queue_wait_p99_ms": trace_block["queue_wait_p99_ms"],
        }
    return {
        **block_trace_extras,
        "workload": SERVICE_WORKLOAD,
        "offered_rate_rps": offered_rate,
        "duration_seconds": duration,
        "clients": clients,
        "mixes": mixes,
        # the headline gated numbers come from the cached-hit mix: it is the
        # serving-path measurement every other mix adds compile work on top of
        "p50_ms": mixes["cached_hit"]["p50_ms"],
        "p99_ms": mixes["cached_hit"]["p99_ms"],
        "errors": sum(mix["errors"] for mix in mixes.values()),
        "saturation_rps": saturation,
        "saturation_seconds": saturation_seconds,
        "fleet_workers": fleet_workers,
        "fleet_saturation_rps": fleet_saturation,
        "fleet_speedup": speedup,
        "retries": retries,
        "backoff_seconds": backoff,
        # deliberately ungated (see chaos_probe): recorded to show the
        # hardening holds up, not to fail CI on an unlucky kill
        "chaos": chaos,
        "chaos_success_rate": chaos["chaos_success_rate"],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--offered-rate", type=float, default=40.0,
        help="open-loop offered rate in req/s for the cached-hit and bind "
        "mixes; the compile mix runs at a quarter of it (default %(default)s)",
    )
    parser.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of offered traffic per mix (default %(default)s)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent keep-alive client connections (default %(default)s)",
    )
    parser.add_argument(
        "--saturation-seconds", type=float, default=3.0,
        help="duration of each closed-loop saturation probe (default %(default)s)",
    )
    parser.add_argument(
        "--fleet-workers", type=int, default=2,
        help="fleet size for the scale-out probe (default %(default)s)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="client retry budget per request in the load mixes "
        "(exponential backoff, full jitter; default %(default)s)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05,
        help="base retry backoff in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--chaos-seconds", type=float, default=2.0,
        help="duration of the fault-injected chaos probe (default %(default)s)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="head-sample traces during the open-loop mixes and record the "
        "scheduler queue-wait percentiles (ungated) in the report",
    )
    parser.add_argument("--seed", type=int, default=20250807)
    parser.add_argument(
        "--output", default="BENCH_service_load.json",
        help="where to write the JSON report (default %(default)s)",
    )
    args = parser.parse_args(argv)

    block = bench_service_load(
        offered_rate=args.offered_rate,
        duration=args.duration,
        clients=args.clients,
        saturation_seconds=args.saturation_seconds,
        fleet_workers=args.fleet_workers,
        seed=args.seed,
        retries=args.retries,
        backoff=args.backoff,
        chaos_seconds=args.chaos_seconds,
        trace=args.trace,
    )
    report = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        # an (empty) workloads map keeps the report consumable by
        # scripts/check_bench_regression.py next to the throughput reports
        "workloads": {},
        "summary": {"array_backend": default_backend().name},
        "service_load": block,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"[load] wrote {args.output}: p99 {block['p99_ms']:.2f} ms @ "
        f"{block['offered_rate_rps']:.0f} rps offered, saturation "
        f"{block['saturation_rps']:.0f} req/s, fleet "
        f"{block['fleet_saturation_rps']:.0f} req/s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
