"""Experiment E4 — Fig. 9: QuCLEAR with and without the local-optimization pass.

The paper reports that the Qiskit local-optimization pass on top of QuCLEAR
reduces CNOT counts by ~4.4 % on average (and not at all on QAOA workloads),
confirming that the framework is effective on its own.
"""

import pytest

from repro.compiler.presets import quclear_pipeline
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import selected_benchmarks


@pytest.mark.parametrize("local_optimize", [False, True], ids=["without_local", "with_local"])
@pytest.mark.parametrize("name", selected_benchmarks())
def test_fig9_local_optimization(benchmark, name, local_optimize):
    terms = get_benchmark(name).terms()

    pipeline = quclear_pipeline(local_optimize=local_optimize)

    def run():
        return pipeline.run(terms).circuit

    circuit = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "local_optimize": local_optimize,
            "measured_cx": circuit.cx_count(),
            "measured_entangling_depth": circuit.entangling_depth(),
        }
    )
