"""Experiment E5 — Fig. 10: per-feature CNOT-reduction breakdown.

The paper decomposes the overall reduction for UCC-(4,8) (2624 -> 1014 -> 984
-> ~490 -> 448 CNOTs) and MaxCut-(n20, r8) (320 -> 286 -> 258 -> 129 -> 129)
into the contributions of recursive tree extraction, commuting-block
reordering, Clifford absorption and Qiskit local optimization.  The same
breakdown is produced here with the feature flags of the extractor.
"""

import pytest

from repro.evaluation.breakdown import feature_breakdown
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import tier

#: paper Fig. 10 values (CNOT count after each feature)
PAPER_BREAKDOWN = {
    "UCC-(4,8)": {
        "native": 2624,
        "tree_extraction": 1014,
        "commutation": 984,
        "absorption": 492,
        "local_optimization": 448,
    },
    "MaxCut-(n20, r8)": {
        "native": 320,
        "tree_extraction": 286,
        "commutation": 258,
        "absorption": 129,
        "local_optimization": 129,
    },
}

_WORKLOADS = ["UCC-(4,8)", "MaxCut-(n20, r8)"] if tier() != "small" else ["UCC-(2,6)", "MaxCut-(n15, r4)"]


@pytest.mark.parametrize("name", _WORKLOADS)
def test_fig10_feature_breakdown(benchmark, name):
    terms = get_benchmark(name).terms()

    breakdown = benchmark.pedantic(feature_breakdown, args=(terms,), rounds=1, iterations=1)
    paper = PAPER_BREAKDOWN.get(name, {})
    benchmark.extra_info.update(
        {
            "benchmark": name,
            **{f"measured_{stage}": value for stage, value in breakdown.items()},
            **{f"paper_{stage}": value for stage, value in paper.items()},
        }
    )
    # The structural shape of the figure: absorption halves the post-extraction
    # count, and the local pass never increases it.
    assert breakdown["absorption"] <= breakdown["commutation"]
    assert breakdown["local_optimization"] <= breakdown["absorption"]
