"""Experiment E2 — Table III: CNOT count, entangling depth and compile time on
an all-to-all connected device, for QuCLEAR and every baseline compiler.

Paper reference points (CNOT counts) for a few rows:

==================  =======  ======  ======  ===========  =====
benchmark           QuCLEAR  Qiskit  Rustiq  Paulihedral  tket
==================  =======  ======  ======  ===========  =====
UCC-(2,4)           23       41      33      48           53
UCC-(4,8)           448      1003    795     947          1257
LiH                 74       180     114     121          132
LABS-(n10)          106      296     116     230          145
MaxCut-(n20, r8)    129      158     188     160          210
==================  =======  ======  ======  ===========  =====

Absolute values differ (the baselines are re-implementations, the molecular
Hamiltonians are synthetic), but the winner per row and the rough factors
should match; see EXPERIMENTS.md for the full paper-vs-measured record.
"""

import pytest

from repro.compiler.registry import get_registry
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import selected_benchmarks

COMPILERS = ["QuCLEAR", "qiskit-like", "rustiq-like", "paulihedral-like", "tket-like"]

#: paper Table III CNOT counts, used to annotate the output
PAPER_CNOT_COUNTS = {
    "UCC-(2,4)": {"QuCLEAR": 23, "qiskit-like": 41, "rustiq-like": 33, "paulihedral-like": 48, "tket-like": 53},
    "UCC-(2,6)": {"QuCLEAR": 106, "qiskit-like": 181, "rustiq-like": 161, "paulihedral-like": 216, "tket-like": 236},
    "UCC-(4,8)": {"QuCLEAR": 448, "qiskit-like": 1003, "rustiq-like": 795, "paulihedral-like": 947, "tket-like": 1257},
    "LiH": {"QuCLEAR": 74, "qiskit-like": 180, "rustiq-like": 114, "paulihedral-like": 121, "tket-like": 132},
    "H2O": {"QuCLEAR": 274, "qiskit-like": 786, "rustiq-like": 350, "paulihedral-like": 471, "tket-like": 505},
    "LABS-(n10)": {"QuCLEAR": 106, "qiskit-like": 296, "rustiq-like": 116, "paulihedral-like": 230, "tket-like": 145},
    "LABS-(n15)": {"QuCLEAR": 385, "qiskit-like": 1208, "rustiq-like": 457, "paulihedral-like": 880, "tket-like": 641},
    "MaxCut-(n15, r4)": {"QuCLEAR": 68, "qiskit-like": 58, "rustiq-like": 94, "paulihedral-like": 60, "tket-like": 62},
    "MaxCut-(n20, r4)": {"QuCLEAR": 88, "qiskit-like": 78, "rustiq-like": 126, "paulihedral-like": 80, "tket-like": 100},
    "MaxCut-(n20, r8)": {"QuCLEAR": 129, "qiskit-like": 158, "rustiq-like": 188, "paulihedral-like": 160, "tket-like": 210},
    "MaxCut-(n20, r12)": {"QuCLEAR": 172, "qiskit-like": 238, "rustiq-like": 218, "paulihedral-like": 240, "tket-like": 247},
    "MaxCut-(n10, e12)": {"QuCLEAR": 26, "qiskit-like": 22, "rustiq-like": 33, "paulihedral-like": 24, "tket-like": 24},
    "MaxCut-(n15, e63)": {"QuCLEAR": 93, "qiskit-like": 114, "rustiq-like": 108, "paulihedral-like": 102, "tket-like": 137},
    "MaxCut-(n20, e117)": {"QuCLEAR": 146, "qiskit-like": 216, "rustiq-like": 188, "paulihedral-like": 192, "tket-like": 298},
    "UCC-(6,12)": {"QuCLEAR": 2580, "qiskit-like": 5723, "rustiq-like": 4705, "paulihedral-like": 6076, "tket-like": 8853},
    "benzene": {"QuCLEAR": 2470, "qiskit-like": 7602, "rustiq-like": 3356, "paulihedral-like": 3267, "tket-like": 4738},
    "LABS-(n20)": {"QuCLEAR": 1052, "qiskit-like": 2914, "rustiq-like": 1138, "paulihedral-like": 2218, "tket-like": 1762},
}


@pytest.mark.parametrize("compiler", COMPILERS)
@pytest.mark.parametrize("name", selected_benchmarks())
def test_table3_compile(benchmark, name, compiler):
    spec = get_benchmark(name)
    terms = spec.terms()

    registry = get_registry()

    def run():
        # the registry resolves the display name "QuCLEAR" to "quclear"
        return registry.compile(compiler, terms)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "benchmark": name,
            "compiler": compiler,
            "measured_cx": result.cx_count(),
            "measured_entangling_depth": result.entangling_depth(),
            "paper_cx": PAPER_CNOT_COUNTS.get(name, {}).get(compiler),
            "pass_timings": result.metadata["pass_timings"],
        }
    )
