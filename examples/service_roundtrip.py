"""Compilation-as-a-service round trip: server, client, cache hits, metrics.

Runs the whole serving story in one process: an in-thread service server
backed by a persistent artifact cache, a client compiling the H2O
Hamiltonian-simulation workload over HTTP (cold), compiling it again (warm
cache hit), verifying the results are identical, and reading /metrics.

Against a standalone server the client half is the same — start one with::

    PYTHONPATH=src python -m repro.service --port 8765 --cache-dir /tmp/repro-cache

and point ``Client("127.0.0.1", 8765)`` at it.

Run with:  PYTHONPATH=src python examples/service_roundtrip.py
"""

import tempfile
import time

import repro
from repro.service import Client, ServiceServer, run_server_in_thread
from repro.workloads.registry import get_benchmark


def main() -> None:
    terms = get_benchmark("H2O").terms()
    print(f"workload: H2O — {len(terms)} Pauli rotations on 8 qubits")

    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as cache_dir:
        server = ServiceServer(cache_dir=cache_dir, window_seconds=0.002)
        with run_server_in_thread(server):
            print(f"server listening on {server.address}")
            with Client(port=server.port) as client:
                start = time.perf_counter()
                cold = client.compile(terms, level=3)
                cold_ms = (time.perf_counter() - start) * 1e3
                print(
                    f"cold compile: {cold_ms:7.2f} ms over HTTP | "
                    f"cache_hit={cold.cache_hit} | "
                    f"cx={cold.result.cx_count()} "
                    f"depth={cold.result.entangling_depth()}"
                )

                start = time.perf_counter()
                warm = client.compile(terms, level=3)
                warm_ms = (time.perf_counter() - start) * 1e3
                print(
                    f"warm compile: {warm_ms:7.2f} ms over HTTP | "
                    f"cache_hit={warm.cache_hit} | "
                    f"{cold_ms / warm_ms:.1f}x faster"
                )
                assert warm.result.circuit == cold.result.circuit

                # the artifact is addressable by its content key
                fetched = client.result(warm.key)
                print(f"GET /result/{warm.key[:12]}…: circuit with {len(fetched.circuit)} gates")

                # and the local compile agrees bit-for-bit
                local = repro.compile(terms, level=3)
                assert fetched.circuit == local.circuit
                print("served circuit identical to a local repro.compile: True")

                metrics = client.metrics()
                cache_stats = metrics["cache"]
                print(
                    f"metrics: {cache_stats['hits']} cache hits, "
                    f"{cache_stats['misses']} misses, "
                    f"{cache_stats['disk_bytes']} bytes on disk, "
                    f"{metrics['telemetry']['counters']['service.http_requests']} "
                    "HTTP requests"
                )


if __name__ == "__main__":
    main()
