"""QAOA MaxCut workflow: probability absorption (CA-Post) on sampled bitstrings.

Mirrors Sec. VI-B of the paper: for combinatorial optimization the result of
interest is the computational-basis distribution.  QuCLEAR extracts the
Clifford tail, reduces it to a Hadamard layer plus a CNOT network
(Proposition 1), appends only the Hadamard layer to the measured circuit and
remaps every sampled bitstring classically.

Run with:  python examples/qaoa_maxcut.py
"""

from collections import Counter

import repro
from repro import QuantumCircuit, Statevector
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.workloads.qaoa import cut_value, maxcut_qaoa_terms, regular_graph

SHOTS = 20_000


def _plus_state_preparation(num_qubits: int) -> QuantumCircuit:
    """QAOA starts from |+...+>: a Hadamard on every qubit."""
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def main() -> None:
    graph = regular_graph(num_nodes=8, degree=4, seed=23)
    terms = maxcut_qaoa_terms(graph, gamma=0.72, beta=0.39)
    preparation = _plus_state_preparation(graph.number_of_nodes())

    result = repro.compile(terms, level=3)
    native = preparation.compose(synthesize_trotter_circuit(terms))
    print(f"MaxCut QAOA on an 8-node 4-regular graph ({graph.number_of_edges()} edges)")
    print(f"  native CNOTs  : {native.cx_count()}")
    print(f"  QuCLEAR CNOTs : {result.cx_count()}")

    # CA-Pre: only a Hadamard layer is appended before measurement.
    absorber = result.probability_absorber()
    measured_circuit = preparation.compose(result.circuit).compose(absorber.pre_circuit())
    print(f"  tail reduced to H layer on {len(absorber.hadamard_qubits)} qubits + CNOT network")

    # Sample the optimized circuit and remap every bitstring (CA-Post).
    raw_counts = Statevector.from_circuit(measured_circuit).sample_counts(SHOTS, seed=5)
    counts = absorber.map_counts(raw_counts)

    expected_cut = sum(cut_value(graph, bits) * count for bits, count in counts.items()) / SHOTS
    best_bits, best_count = Counter(counts).most_common(1)[0]
    print(f"\nExpected cut value from {SHOTS} shots : {expected_cut:.3f}")
    print(f"Most frequent assignment             : {best_bits} (cut {cut_value(graph, best_bits)}, {best_count} shots)")

    # Cross-check the recovered distribution against the original circuit.
    exact = Statevector.from_circuit(native).probability_dict()
    recovered = absorber.map_probabilities(
        Statevector.from_circuit(measured_circuit).probability_dict()
    )
    worst = max(abs(exact.get(k, 0.0) - recovered.get(k, 0.0)) for k in set(exact) | set(recovered))
    print(f"Largest deviation from the original distribution (exact): {worst:.2e}")


if __name__ == "__main__":
    main()
