"""Quickstart: optimize a small quantum-simulation circuit with repro.compile.

Reproduces the paper's motivating example (Fig. 2): the two-term program
``exp(-i t1/2 ZZZZ) exp(-i t2/2 YYXX)`` costs 12 CNOTs when synthesized
directly, but Clifford Extraction plus Absorption leaves a much smaller
circuit on the quantum device.

Run with:  python examples/quickstart.py
"""

import repro
from repro import PauliTerm
from repro.circuits.statevector import circuits_equivalent
from repro.evaluation.reporting import format_pass_timings


def main() -> None:
    terms = [
        PauliTerm.from_label("ZZZZ", 0.31),
        PauliTerm.from_label("YYXX", 0.52),
    ]

    native = repro.compile(terms, level=0)
    print("Native circuit (optimization level 0):")
    print(f"  CNOTs            : {native.cx_count()}")
    print(f"  entangling depth : {native.entangling_depth()}")

    result = repro.compile(terms, level=3)
    print("\nQuCLEAR-optimized circuit (level 3, what runs on hardware):")
    print(f"  CNOTs            : {result.cx_count()}")
    print(f"  entangling depth : {result.entangling_depth()}")
    print(f"  extracted tail   : {result.extracted_clifford.cx_count()} CNOTs handled classically")

    # Each pipeline records where its compile time went.  Since the
    # table-native extractor landed, CliffordExtraction — formerly 90+% of
    # compile wall-clock — runs Algorithm 2 directly on the bit-packed Pauli
    # store: the remaining program is one PackedPauliTable, each emitted gate
    # streams across the table suffix as whole-matrix bitwise ops, and
    # lookahead reads rows instead of re-conjugating Pauli objects.
    #
    # Local optimization is now *fused into emission*: extraction streams
    # every gate through the wire-indexed peephole engine as it is emitted
    # (per-qubit frontier stacks, cancellation/merging at append time), so
    # the Peephole pass below is just a fixpoint check.  Compare against the
    # legacy iterated-sweep engine, which rescans the materialized tail up
    # to 20 times (on H2O-class tails: ~6 ms of Peephole wall-clock before,
    # ~0.07 ms after — a >90x reduction, see BENCH_throughput.json).
    print("\nPer-pass timing breakdown (fused streaming peephole):")
    print(format_pass_timings(result.metadata["pass_timings"]))

    from repro.compiler import CliffordExtraction, GroupCommuting, Peephole, Pipeline

    legacy = Pipeline(
        [GroupCommuting(), CliffordExtraction(), Peephole(engine="legacy")],
        name="legacy-peephole",
    ).run(terms)
    print("\nPer-pass timing breakdown (legacy iterated peephole, same circuit):")
    print(format_pass_timings(legacy.metadata["pass_timings"]))

    # The optimized circuit followed by the extracted Clifford tail implements
    # exactly the original unitary.
    reconstructed = result.circuit.compose(result.extracted_clifford)
    print("\nEquivalence check (optimized + tail == original):", end=" ")
    print("PASS" if circuits_equivalent(native.circuit, reconstructed) else "FAIL")

    # For expectation-value workloads the tail never has to run: it is folded
    # into the measured observable instead.  Absorption (and every Clifford
    # conjugation underneath) runs on the bit-packed engine: all Pauli terms
    # of an observable live in contiguous uint64 arrays (64 qubits per word)
    # and conjugate through the tail as whole-matrix bitwise operations —
    # see BENCH_throughput.json for the measured speedup over the legacy
    # per-string loop.
    from repro import PauliString

    observable = PauliString.from_label("XXZZ")
    absorbed = result.absorb_observables([observable])[0]
    print(
        f"\nObservable {observable.to_label()} becomes "
        f"{'-' if absorbed.sign < 0 else ''}{absorbed.updated.to_label()} "
        "after absorbing the Clifford tail."
    )

    # Batches of independent programs go through repro.compile_many: one
    # resolved pipeline, a worker pool when it pays off, and a shared
    # conjugation-tableau cache so identical Clifford tails are frozen once.
    # The executor is resolved overhead-aware (repro.compiler.plan_batch):
    # small batches like this one run sequentially — pool startup used to
    # make them *slower* than a plain loop — while large batches get a
    # chunked process pool, since the synthesis passes are GIL-bound.
    batch = repro.compile_many(
        [
            [PauliTerm.from_label("ZZII", 0.4), PauliTerm.from_label("XXYY", 0.7)],
            [PauliTerm.from_label("IZZI", 0.2), PauliTerm.from_label("YXXY", 0.9)],
        ],
        level=3,
    )
    print("\ncompile_many over 2 programs:")
    for index, item in enumerate(batch):
        print(f"  program {index}: {item.cx_count()} CNOTs on hardware")


if __name__ == "__main__":
    main()
