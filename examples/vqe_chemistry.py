"""VQE-style chemistry workflow: UCCSD ansatz + observable absorption.

The workflow mirrors how QuCLEAR is meant to be used inside a VQE loop
(Sec. VI-A of the paper):

1. build the UCCSD ansatz as a Pauli-rotation program,
2. compile it with ``repro.compile`` (the QuCLEAR preset) — the Clifford
   tail is extracted, not executed,
3. absorb the tail into every Hamiltonian term (CA-Pre),
4. estimate each term from measurement histograms of the *optimized* circuit
   (CA-Post), and
5. check the energy against exact statevector simulation of the original
   unoptimized ansatz.

Run with:  python examples/vqe_chemistry.py
"""

import repro
from repro import Statevector
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.workloads.molecules import synthetic_electronic_hamiltonian
from repro.workloads.uccsd import uccsd_ansatz_terms

SHOTS = 200_000


def main() -> None:
    num_electrons, num_spin_orbitals = 2, 4
    ansatz_terms = uccsd_ansatz_terms(num_electrons, num_spin_orbitals, seed=11)
    hamiltonian = synthetic_electronic_hamiltonian(num_spin_orbitals, num_terms=20, seed=3)

    result = repro.compile(ansatz_terms, level=3)
    native = synthesize_trotter_circuit(ansatz_terms)
    print(f"UCCSD-({num_electrons},{num_spin_orbitals}) ansatz: {len(ansatz_terms)} Pauli rotations")
    print(f"  native CNOTs    : {native.cx_count()}")
    print(f"  QuCLEAR CNOTs   : {result.cx_count()}")

    # CA-Pre: one absorbed observable (and measurement basis) per Hamiltonian term.
    absorbed_terms = result.absorb_observables(hamiltonian)

    # Hybrid execution: run the optimized circuit once per observable and
    # post-process the histograms (CA-Post).
    energy = 0.0
    for coefficient, absorbed in zip(hamiltonian.coefficients, absorbed_terms):
        measured_circuit = result.circuit.compose(absorbed.measurement_basis)
        counts = Statevector.from_circuit(measured_circuit).sample_counts(SHOTS, seed=17)
        energy += coefficient * absorbed.expectation_from_counts(counts)

    exact = Statevector.from_circuit(native).expectation_value(hamiltonian)
    print(f"\nEnergy from optimized circuit + CA post-processing : {energy:+.4f}")
    print(f"Energy from exact simulation of the original ansatz : {exact:+.4f}")
    print(f"Sampling error ({SHOTS} shots per term)             : {abs(energy - exact):.4f}")


if __name__ == "__main__":
    main()
