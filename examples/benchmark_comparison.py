"""Compiler comparison on a few Table II benchmarks (a mini Table III).

Runs every pipeline in the unified compiler registry on a handful of
benchmarks and prints CNOT count, entangling depth and compile time per
compiler, plus QuCLEAR's per-pass timing breakdown.

Run with:  python examples/benchmark_comparison.py [benchmark ...]
"""

import sys

from repro.evaluation.comparison import compare_on_benchmark
from repro.evaluation.reporting import format_pass_timings, format_table

DEFAULT_BENCHMARKS = ["UCC-(2,4)", "UCC-(2,6)", "LiH", "LABS-(n10)", "MaxCut-(n15, r4)"]


def main(benchmarks: list[str]) -> None:
    rows = []
    for name in benchmarks:
        comparison = compare_on_benchmark(name)
        for compiler, metrics in comparison.results.items():
            rows.append(
                {
                    "benchmark": name,
                    "compiler": compiler,
                    "cx": int(metrics["cx_count"]),
                    "entangling_depth": int(metrics["entangling_depth"]),
                    "compile_s": metrics["compile_seconds"],
                }
            )
        best = comparison.best_compiler("cx_count")
        print(f"{name}: fewest CNOTs -> {best}")
    print()
    print(format_table(rows))

    # Where did QuCLEAR's compile time go on the last benchmark?
    print(f"\nQuCLEAR pass timings on {benchmarks[-1]}:")
    print(format_pass_timings(comparison.pass_timings["QuCLEAR"]))


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT_BENCHMARKS)
