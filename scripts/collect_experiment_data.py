"""Collect the paper-vs-measured data recorded in EXPERIMENTS.md.

Runs the evaluation harness over the medium benchmark tier and prints the
per-experiment numbers as markdown tables.  This is the script that produced
the tables committed in EXPERIMENTS.md; re-run it after changing the compiler
to refresh them:

    python scripts/collect_experiment_data.py > experiment_data.md
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.absorption import ObservableAbsorber, absorb_probabilities
from repro.core.extraction import CliffordExtractor
from repro.evaluation.breakdown import feature_breakdown, local_optimization_ablation
from repro.evaluation.comparison import compare_on_benchmark
from repro.evaluation.mapping import compare_mapped_compilers
from repro.paulis.pauli import PauliString
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.coupling import CouplingMap
from repro.workloads.registry import MEDIUM_BENCHMARKS, get_benchmark

TABLE3_BENCHMARKS = MEDIUM_BENCHMARKS
FIG11_BENCHMARKS = ["UCC-(4,8)", "H2O", "LABS-(n15)", "MaxCut-(n20, r12)"]


def table2() -> None:
    print("## Table II — benchmark inventory (measured)\n")
    print("| benchmark | qubits | #Pauli (paper) | #Pauli (measured) | #CNOT (paper) | #CNOT (measured) |")
    print("|---|---|---|---|---|---|")
    for name in TABLE3_BENCHMARKS:
        spec = get_benchmark(name)
        terms = spec.terms()
        native = synthesize_trotter_circuit(terms)
        print(
            f"| {name} | {spec.num_qubits} | {spec.paper_num_paulis} | {len(terms)} "
            f"| {spec.paper_num_cnots} | {native.cx_count()} |"
        )
    print()


def table3() -> None:
    print("## Table III — fully connected device (measured)\n")
    print("| benchmark | compiler | CNOT | entangling depth | compile time (s) |")
    print("|---|---|---|---|---|")
    for name in TABLE3_BENCHMARKS:
        comparison = compare_on_benchmark(name)
        for compiler, metrics in comparison.results.items():
            print(
                f"| {name} | {compiler} | {int(metrics['cx_count'])} "
                f"| {int(metrics['entangling_depth'])} | {metrics['compile_seconds']:.3f} |"
            )
    print()


def table4() -> None:
    print("## Table IV — Clifford absorption runtime (measured, seconds)\n")
    chem = CliffordExtractor().extract(get_benchmark("UCC-(4,8)").terms())
    qaoa = CliffordExtractor().extract(get_benchmark("MaxCut-(n20, r12)").terms())
    absorber = ObservableAbsorber(chem.conjugation)
    prob = absorb_probabilities(qaoa)
    rng = np.random.default_rng(5)
    print("| count | observables (UCC-(4,8)) | states (MaxCut-(n20, r12)) |")
    print("|---|---|---|")
    for count in [10, 50, 100, 500, 1000]:
        observables = []
        for _ in range(count):
            label = "".join(rng.choice(list("IXYZ")) for _ in range(chem.num_qubits))
            if set(label) == {"I"}:
                label = "Z" + label[1:]
            observables.append(PauliString.from_label(label))
        start = time.perf_counter()
        absorber.absorb_all(observables)
        observable_seconds = time.perf_counter() - start

        counts = {}
        while len(counts) < count:
            bits = "".join(rng.choice(["0", "1"]) for _ in range(qaoa.num_qubits))
            counts[bits] = 1
        start = time.perf_counter()
        prob.map_counts(counts)
        state_seconds = time.perf_counter() - start
        print(f"| {count} | {observable_seconds:.4f} | {state_seconds:.4f} |")
    print()


def table4_pass_timings() -> None:
    print("## Table IV addendum — QuCLEAR per-pass compile-time breakdown (measured, seconds)\n")
    import repro
    from repro.evaluation.reporting import format_pass_timings

    result = repro.compile(get_benchmark("UCC-(4,8)").terms(), level=3)
    print("```")
    print(format_pass_timings(result.metadata["pass_timings"]))
    print("```")
    print()


def fig9() -> None:
    print("## Fig. 9 — with / without local optimization (measured CNOTs)\n")
    print("| benchmark | without local opt | with local opt |")
    print("|---|---|---|")
    for name in TABLE3_BENCHMARKS:
        ablation = local_optimization_ablation(get_benchmark(name).terms())
        print(
            f"| {name} | {int(ablation['without_local_optimization']['cx_count'])} "
            f"| {int(ablation['with_local_optimization']['cx_count'])} |"
        )
    print()


def fig10() -> None:
    print("## Fig. 10 — feature breakdown (measured CNOTs)\n")
    print("| benchmark | native | +tree extraction | +commutation | +absorption | +local opt |")
    print("|---|---|---|---|---|---|")
    for name in ["UCC-(4,8)", "MaxCut-(n20, r8)"]:
        breakdown = feature_breakdown(get_benchmark(name).terms())
        print(
            f"| {name} | {breakdown['native']} | {breakdown['tree_extraction']} "
            f"| {breakdown['commutation']} | {breakdown['absorption']} "
            f"| {breakdown['local_optimization']} |"
        )
    print()


def fig11() -> None:
    print("## Fig. 11 — mapping to limited connectivity (measured CNOTs)\n")
    print("| benchmark | device | QuCLEAR | qiskit-like | paulihedral-like | tket-like |")
    print("|---|---|---|---|---|---|")
    for device_name, factory in [("sycamore", CouplingMap.sycamore), ("ibm-manhattan", CouplingMap.ibm_manhattan)]:
        for name in FIG11_BENCHMARKS:
            comparison = compare_mapped_compilers(name, factory())
            counts = comparison.cx_counts()
            print(
                f"| {name} | {device_name} | {counts['QuCLEAR']} | {counts['qiskit-like']} "
                f"| {counts['paulihedral-like']} | {counts['tket-like']} |"
            )
    print()


if __name__ == "__main__":
    table2()
    table3()
    table4()
    table4_pass_timings()
    fig9()
    fig10()
    fig11()
