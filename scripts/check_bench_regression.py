"""Diff two throughput-benchmark JSON files and fail on regression.

Used by the CI ``bench`` job (and runnable locally) to compare a fresh
``BENCH_throughput.json`` against the committed baseline::

    python scripts/check_bench_regression.py \
        benchmarks/baselines/bench_throughput_baseline.json BENCH_throughput.json

For every workload present in the baseline the checker enforces:

* ``packed_terms_per_sec`` — absolute throughput floor.  The current value
  must stay above ``baseline * (1 - tolerance)``; the committed baseline
  stores deliberately conservative floors so cross-machine variance does not
  false-alarm while a broken vectorization path (orders of magnitude slower)
  still trips it.
* ``extraction_terms_per_sec`` — absolute throughput floor of the
  table-native ``CliffordExtraction`` pass (terms per second of per-pass
  wall-clock).  Like the packed floor it is deliberately conservative, but a
  fallback to object-at-a-time extraction (several times slower) trips it.
* ``peephole_gates_per_sec`` — absolute throughput floor of the streaming
  wire-indexed peephole engine over the workload's raw extraction tail.
  Gated on the small *and* medium tiers so the rate is forced to stay flat
  as tails grow — a fallback to the iterated whole-list sweeps (super-linear
  in the tail length) trips the medium floor first.
* ``speedup`` — the packed/legacy ratio measured on the *same* machine, so
  it is machine-independent; this is the primary regression signal and the
  paper-level acceptance gate (>= 5x).

When the baseline commits a top-level ``service`` block, its
``warm_hit_speedup`` (cold-compile vs. warm-artifact-cache-hit ratio — same
machine, so machine-independent like ``speedup``), ``requests_per_sec`` and
``bind_requests_per_sec`` floors are enforced with the same rules.  A
top-level ``parametric`` block gates the :mod:`repro.parametric` fast path:
``bind_speedup`` (template bind vs. from-scratch compile of the identical
bound program, machine-independent) and ``bind_requests_per_sec``
(single-client ``POST /bind`` HTTP throughput).  A ``service_load`` block
(the open-loop load harness, ``benchmarks/bench_service_load.py``) gates
``saturation_rps`` and ``fleet_saturation_rps`` as floors and ``p99_ms`` as
a latency **ceiling** — the one "lower"-direction metric, where the check
inverts to ``current <= baseline * (1 + tolerance)``.

``--strict`` additionally fails when a floored metric is *missing*: a
baseline floor with no matching value in the fresh bench output (the metric
was renamed or silently dropped — without strict mode that reads as 0.0 and
conflates with a throughput collapse), or a gated metric with no committed
floor for a workload the baseline covers (nothing would gate it at all).
CI runs with ``--strict``.

Exit status is 0 when every row passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: metric -> direction; "higher" means a drop below the floor is a regression
METRICS = {
    "packed_terms_per_sec": "higher",
    "extraction_terms_per_sec": "higher",
    "peephole_gates_per_sec": "higher",
    "speedup": "higher",
}

#: gated metrics of the top-level "service" block (cold vs. warm-cache
#: latency and HTTP throughput of the compilation service); same semantics
#: as METRICS, applied once per report instead of once per workload
SERVICE_METRICS = {
    "warm_hit_speedup": "higher",
    "requests_per_sec": "higher",
    "bind_requests_per_sec": "higher",
}

#: gated metrics of the top-level "parametric" block (template compilation
#: and microsecond angle binding); bind_speedup is the bind-vs-cold-compile
#: ratio on the same machine, machine-independent like "speedup"
PARAMETRIC_METRICS = {
    "bind_speedup": "higher",
    "bind_requests_per_sec": "higher",
}

#: gated metrics of the top-level "service_load" block (the open-loop
#: Poisson load harness, benchmarks/bench_service_load.py).  p99_ms is the
#: first "lower"-direction metric: it is a latency *ceiling*, so the check
#: inverts — the current value may rise at most ``tolerance`` above the
#: committed baseline before it reads as a regression.
SERVICE_LOAD_METRICS = {
    "saturation_rps": "higher",
    "p99_ms": "lower",
    "fleet_saturation_rps": "higher",
}


def load(path: str) -> dict:
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark report {path!r}: {error}")
    if "workloads" not in report:
        raise SystemExit(f"{path!r} does not look like a throughput report (no 'workloads')")
    return report


def _compare_metrics(
    label: str,
    base_entry: dict,
    cur_entry: dict,
    metrics: dict,
    tolerance: float,
    strict: bool,
) -> tuple[list[dict], bool]:
    """Gate one baseline/current entry pair over ``metrics``.

    Shared by the per-workload rows and the top-level ``service`` block —
    identical semantics: a floor with no fresh value is NOT MEASURED (strict),
    a gated metric with no committed floor is NO FLOOR (strict; nothing would
    gate it at all — the silent pass strict mode exists to catch), and a
    non-strict absent metric reads as 0.0 (fails, but as an
    indistinguishable "REGRESSION" row — the legacy behaviour).
    """
    rows: list[dict] = []
    ok = True
    for metric in metrics:
        if metric not in base_entry:
            if strict:
                rows.append(
                    {"workload": label, "metric": metric, "baseline": None,
                     "current": float(cur_entry[metric]) if metric in cur_entry else None,
                     "ratio": None, "status": "NO FLOOR"}
                )
                ok = False
            continue
        base_value = float(base_entry[metric])
        if metric not in cur_entry:
            if strict:
                rows.append(
                    {"workload": label, "metric": metric, "baseline": base_value,
                     "current": None, "ratio": None, "status": "NOT MEASURED"}
                )
                ok = False
                continue
        cur_value = float(cur_entry.get(metric, 0.0))
        ratio = cur_value / base_value if base_value else float("inf")
        if metrics[metric] == "lower":
            # a ceiling (e.g. a p99 latency): rising above it regresses
            passed = cur_value <= base_value * (1.0 + tolerance)
        else:
            passed = cur_value >= base_value * (1.0 - tolerance)
        rows.append(
            {"workload": label, "metric": metric, "baseline": base_value,
             "current": cur_value, "ratio": ratio,
             "status": "ok" if passed else "REGRESSION"}
        )
        ok = ok and passed
    return rows, ok


def compare(
    baseline: dict, current: dict, tolerance: float, strict: bool = False
) -> tuple[list[dict], bool]:
    rows: list[dict] = []
    ok = True
    current_workloads = current["workloads"]
    for name, base_entry in sorted(baseline["workloads"].items()):
        cur_entry = current_workloads.get(name)
        if cur_entry is None:
            rows.append(
                {"workload": name, "metric": "-", "baseline": None, "current": None,
                 "ratio": None, "status": "MISSING"}
            )
            ok = False
            continue
        entry_rows, entry_ok = _compare_metrics(
            name, base_entry, cur_entry, METRICS, tolerance, strict
        )
        rows.extend(entry_rows)
        ok = ok and entry_ok
    for block, metrics in (
        ("service", SERVICE_METRICS),
        ("parametric", PARAMETRIC_METRICS),
        ("service_load", SERVICE_LOAD_METRICS),
    ):
        block_rows, block_ok = _compare_block(
            baseline, current, block, metrics, tolerance, strict
        )
        rows.extend(block_rows)
        ok = ok and block_ok
    return rows, ok


def _compare_block(
    baseline: dict,
    current: dict,
    block: str,
    metrics: dict,
    tolerance: float,
    strict: bool,
) -> tuple[list[dict], bool]:
    """Gate a top-level report block with the per-workload semantics.

    A report pair without the block passes untouched (older baselines stay
    comparable); once either side carries one, the shared strict rules of
    :func:`_compare_metrics` apply.
    """
    base_entry = baseline.get(block)
    cur_entry = current.get(block)
    label = f"({block})"
    if base_entry is None and cur_entry is None:
        return [], True
    if cur_entry is None:
        return (
            [{"workload": label, "metric": "-", "baseline": None,
              "current": None, "ratio": None, "status": "MISSING"}],
            False,
        )
    return _compare_metrics(
        label, base_entry or {}, cur_entry, metrics, tolerance, strict
    )


def print_table(rows: list[dict], tolerance: float) -> None:
    header = f"{'workload':<22} {'metric':<22} {'baseline':>12} {'current':>12} {'ratio':>7}  status"
    print(header)
    print("-" * len(header))
    for row in rows:
        metric = row["metric"] if row["metric"] != "-" else "(not in current run)"
        base = "-" if row["baseline"] is None else f"{row['baseline']:.1f}"
        cur = "-" if row["current"] is None else f"{row['current']:.1f}"
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        print(f"{row['workload']:<22} {metric:<22} {base:>12} {cur:>12} {ratio:>7}  {row['status']}")
    print(f"\ntolerance: a metric may drop at most {tolerance:.0%} below its baseline floor")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (the floors)")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below the baseline floor (default 0.2)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a floored metric is missing from the bench "
        "output, or a gated metric has no committed floor",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    rows, ok = compare(baseline, current, args.tolerance, strict=args.strict)
    if not rows:
        print("no comparable workloads between the two reports", file=sys.stderr)
        return 1
    print_table(rows, args.tolerance)
    if ok:
        print("benchmark regression check: PASS")
        return 0
    print("benchmark regression check: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
