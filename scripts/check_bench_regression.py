"""Diff two throughput-benchmark JSON files and fail on regression.

Used by the CI ``bench`` job (and runnable locally) to compare a fresh
``BENCH_throughput.json`` against the committed baseline::

    python scripts/check_bench_regression.py \
        benchmarks/baselines/bench_throughput_baseline.json BENCH_throughput.json

For every workload present in the baseline the checker enforces:

* ``packed_terms_per_sec`` — absolute throughput floor.  The current value
  must stay above ``baseline * (1 - tolerance)``; the committed baseline
  stores deliberately conservative floors so cross-machine variance does not
  false-alarm while a broken vectorization path (orders of magnitude slower)
  still trips it.
* ``extraction_terms_per_sec`` — absolute throughput floor of the
  table-native ``CliffordExtraction`` pass (terms per second of per-pass
  wall-clock).  Like the packed floor it is deliberately conservative, but a
  fallback to object-at-a-time extraction (several times slower) trips it.
* ``speedup`` — the packed/legacy ratio measured on the *same* machine, so
  it is machine-independent; this is the primary regression signal and the
  paper-level acceptance gate (>= 5x).

Exit status is 0 when every row passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: metric -> direction; "higher" means a drop below the floor is a regression
METRICS = {
    "packed_terms_per_sec": "higher",
    "extraction_terms_per_sec": "higher",
    "speedup": "higher",
}


def load(path: str) -> dict:
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark report {path!r}: {error}")
    if "workloads" not in report:
        raise SystemExit(f"{path!r} does not look like a throughput report (no 'workloads')")
    return report


def compare(baseline: dict, current: dict, tolerance: float) -> tuple[list[dict], bool]:
    rows: list[dict] = []
    ok = True
    current_workloads = current["workloads"]
    for name, base_entry in sorted(baseline["workloads"].items()):
        cur_entry = current_workloads.get(name)
        if cur_entry is None:
            rows.append(
                {"workload": name, "metric": "-", "baseline": None, "current": None,
                 "ratio": None, "status": "MISSING"}
            )
            ok = False
            continue
        for metric in METRICS:
            if metric not in base_entry:
                continue
            base_value = float(base_entry[metric])
            cur_value = float(cur_entry.get(metric, 0.0))
            ratio = cur_value / base_value if base_value else float("inf")
            passed = cur_value >= base_value * (1.0 - tolerance)
            rows.append(
                {"workload": name, "metric": metric, "baseline": base_value,
                 "current": cur_value, "ratio": ratio,
                 "status": "ok" if passed else "REGRESSION"}
            )
            ok = ok and passed
    return rows, ok


def print_table(rows: list[dict], tolerance: float) -> None:
    header = f"{'workload':<22} {'metric':<22} {'baseline':>12} {'current':>12} {'ratio':>7}  status"
    print(header)
    print("-" * len(header))
    for row in rows:
        if row["baseline"] is None:
            print(f"{row['workload']:<22} {'(not in current run)':<22} {'-':>12} {'-':>12} "
                  f"{'-':>7}  {row['status']}")
            continue
        print(
            f"{row['workload']:<22} {row['metric']:<22} {row['baseline']:>12.1f} "
            f"{row['current']:>12.1f} {row['ratio']:>6.2f}x  {row['status']}"
        )
    print(f"\ntolerance: a metric may drop at most {tolerance:.0%} below its baseline floor")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (the floors)")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop below the baseline floor (default 0.2)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    rows, ok = compare(baseline, current, args.tolerance)
    if not rows:
        print("no comparable workloads between the two reports", file=sys.stderr)
        return 1
    print_table(rows, args.tolerance)
    if ok:
        print("benchmark regression check: PASS")
        return 0
    print("benchmark regression check: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
