"""End-to-end smoke test of the compilation service, as CI runs it.

Starts ``python -m repro.service`` as a real subprocess (ephemeral port,
fresh cache dir), then checks the serving story the service PR promises:

1. ``GET /healthz`` answers;
2. compiling H2O over HTTP twice: the first response is a cold compile, the
   second a cache hit, and both deserialize to the identical circuit as a
   local ``repro.compile``;
3. 32 concurrent ``POST /compile`` requests (16 identical + 16 distinct
   programs) come back complete and uncorrupted;
4. the parametric path: ``POST /compile_template`` traces an H2O ansatz
   once, ``POST /bind`` replays it at concrete angles, and the bound result
   is identical to a local ``repro.compile`` of the same binding;
5. the server is restarted against the same cache dir and the H2O compile is
   *still* a cache hit — and a ``POST /bind`` against the pre-restart
   ``template_key`` still answers (templates survive restarts too);
6. ``GET /metrics`` reflects the traffic, and ``GET
   /metrics?format=prometheus`` passes the strict text-format parser;
7. a traced compile (``X-Repro-Trace`` headers) comes back via ``GET
   /trace/<id>`` with the full span tree — repeated against a 2-worker
   fleet front, where the stitched trace must cover the front's forward,
   the worker's handle, the scheduler queue wait, the batch compile with
   per-pass children, and the cache write, with durations consistent with
   the measured end-to-end latency; the front's Prometheus exposition must
   carry per-worker labels.

``--retries``/``--backoff`` arm the client's transparent retry layer for
every request the smoke test makes (default: 2 retries), so a transient
hiccup on a loaded CI runner does not fail the whole run.

Run with:  PYTHONPATH=src python scripts/service_smoke_test.py
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.observability import parse_prometheus_text  # noqa: E402
from repro.parametric import ParametricProgram  # noqa: E402
from repro.service.client import Client  # noqa: E402
from repro.workloads.registry import get_benchmark  # noqa: E402
from repro.workloads.qaoa import maxcut_qaoa_terms, random_graph  # noqa: E402

_LISTEN_LINE = re.compile(r"listening on http://([\d.]+):(\d+)")


class ServerProcess:
    """A ``python -m repro.service`` subprocess with a parsed port."""

    def __init__(self, cache_dir: str, extra_args: "list[str] | None" = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--port",
                "0",
                "--cache-dir",
                cache_dir,
                "--window-ms",
                "2",
                *(extra_args or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.port = self._await_port()

    def _await_port(self, timeout: float = 60.0) -> int:
        deadline = time.time() + timeout
        while time.time() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            match = _LISTEN_LINE.search(line)
            if match:
                return int(match.group(2))
        self.process.kill()
        raise SystemExit("server subprocess never reported a listening port")

    def stop(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[smoke] {label}: {status}", flush=True)
    if not condition:
        raise SystemExit(f"smoke test failed at: {label}")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--retries", type=int, default=2,
        help="client retry budget per request (default %(default)s)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05,
        help="base retry backoff in seconds (default %(default)s)",
    )
    args = parser.parse_args(argv)
    client_kwargs = {"retries": args.retries, "backoff": args.backoff}

    h2o = get_benchmark("H2O").terms()
    reference = repro.compile(h2o, level=3)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache_dir:
        server = ServerProcess(cache_dir)
        try:
            client = Client(port=server.port, **client_kwargs)
            check(client.healthz()["status"] == "ok", "healthz")

            first = client.compile(h2o)
            check(not first.cache_hit, "first H2O compile is cold")
            check(first.result.circuit == reference.circuit, "cold result matches local compile")

            second = client.compile(h2o)
            check(second.cache_hit, "second H2O compile is a cache hit")
            check(second.result.circuit == reference.circuit, "warm result identical")
            check(
                second.result.extracted_clifford == reference.extracted_clifford,
                "warm extracted tail identical",
            )

            # 32 concurrent requests: 16 identical H2O + 16 distinct QAOA
            distinct = [
                maxcut_qaoa_terms(random_graph(8, 12, seed=1000 + i)) for i in range(16)
            ]
            expected = {i: repro.compile(p, level=3).circuit for i, p in enumerate(distinct)}
            programs = [("h2o", h2o)] * 16 + list(enumerate(distinct))
            responses: list = [None] * len(programs)
            errors: list = []

            def worker(slot: int, program) -> None:
                try:
                    with Client(port=server.port, **client_kwargs) as worker_client:
                        responses[slot] = worker_client.compile(program)
                except Exception as error:  # noqa: BLE001 — recorded and reported
                    errors.append((slot, repr(error)))

            threads = [
                threading.Thread(target=worker, args=(slot, program))
                for slot, (_, program) in enumerate(programs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            check(not errors, f"32 concurrent requests, no errors {errors[:3]}")
            check(all(r is not None for r in responses), "32 concurrent responses received")
            corrupt = 0
            for slot, (tag, _) in enumerate(programs):
                want = reference.circuit if tag == "h2o" else expected[tag]
                if responses[slot].result.circuit != want:
                    corrupt += 1
            check(corrupt == 0, "no corrupted concurrent responses")

            # the parametric path: trace the ansatz once, bind in microseconds
            program = ParametricProgram.from_terms(h2o, list(range(len(h2o))))
            params = [0.1 + 0.01 * i for i in range(program.num_params)]
            bound_reference = repro.compile(program.to_sum(params), level=3)

            handle = client.compile_template(program, level=3)
            check(handle.template_key is not None, "compile_template returns a key")
            check(not handle.cache_hit, "first template compile is cold")
            again = client.compile_template(program, level=3)
            check(again.cache_hit, "second template compile is a cache hit")
            check(again.template_key == handle.template_key, "template key is stable")

            bound = client.bind(params, template_key=handle.template_key)
            check(
                bound.result.circuit == bound_reference.circuit,
                "bound result matches local compile of the binding",
            )
            check(
                bound.result.extracted_clifford == bound_reference.extracted_clifford,
                "bound extracted tail identical",
            )

            metrics = client.metrics()
            check(metrics["cache"]["hits"] >= 16, "metrics count the cache hits")
            check(
                metrics["telemetry"]["counters"]["service.http_requests"] >= 34,
                "metrics count the requests",
            )
            check(
                metrics["telemetry"]["counters"]["service.bind_requests"] >= 1,
                "metrics count the bind requests",
            )

            families = parse_prometheus_text(client.metrics_prometheus())
            check(
                families["repro_service_http_requests_total"]["type"] == "counter",
                "prometheus exposition parses strictly (single server)",
            )
            check(
                families["repro_service_request_seconds"]["type"] == "histogram",
                "prometheus exposes real latency histograms",
            )

            # trace a cold compile so the batch + cache-write spans appear too
            fresh = maxcut_qaoa_terms(random_graph(8, 12, seed=424242))
            with Client(port=server.port, trace=True, **client_kwargs) as tracing:
                started = time.perf_counter()
                tracing.compile(fresh, include_result=False)
                e2e_seconds = time.perf_counter() - started
                trace = tracing.trace()
            check(trace is not None, "traced compile is retrievable by trace id")
            names = {span["name"] for span in trace["spans"]}
            check(
                {"server.handle", "scheduler.queue_wait", "scheduler.batch",
                 "cache.read", "cache.write"} <= names,
                f"single-server trace covers the serving layers {sorted(names)}",
            )
            handle_span = next(
                span for span in trace["spans"] if span["name"] == "server.handle"
            )
            check(
                handle_span["duration_seconds"] <= e2e_seconds,
                "span durations consistent with measured e2e latency",
            )
            client.close()
        finally:
            server.stop()

        # restart against the same cache dir: artifacts AND templates survive
        server = ServerProcess(cache_dir)
        try:
            with Client(port=server.port, **client_kwargs) as client:
                after_restart = client.compile(h2o)
                check(after_restart.cache_hit, "H2O is a cache hit after server restart")
                check(
                    after_restart.result.circuit == reference.circuit,
                    "restarted hit identical",
                )
                rebound = client.bind(params, template_key=handle.template_key)
                check(
                    rebound.result.circuit == bound_reference.circuit,
                    "bind by template_key survives server restart",
                )
        finally:
            server.stop()

    # a 2-worker fleet: traced compile stitched across front + worker, and
    # the front's Prometheus exposition labeled per worker
    with tempfile.TemporaryDirectory(prefix="repro-smoke-fleet-") as cache_dir:
        front = ServerProcess(cache_dir, extra_args=["--workers", "2"])
        try:
            with Client(port=front.port, trace=True, **client_kwargs) as client:
                check(client.healthz()["status"] == "ok", "fleet healthz")
                started = time.perf_counter()
                cold = client.compile(h2o, include_result=False)
                e2e_seconds = time.perf_counter() - started
                check(not cold.cache_hit, "fleet H2O compile is cold")
                trace = client.trace()
                check(
                    trace is not None and trace.get("stitched") is True,
                    "fleet trace is stitched across processes",
                )
                names = {span["name"] for span in trace["spans"]}
                check(
                    {"fleet.forward", "server.handle", "scheduler.queue_wait",
                     "scheduler.batch", "cache.write"} <= names,
                    f"stitched trace covers front and worker {sorted(names)}",
                )
                check(
                    any(name.startswith("pass.") for name in names),
                    "stitched trace includes per-pass compile children",
                )
                forward_span = next(
                    span for span in trace["spans"] if span["name"] == "fleet.forward"
                )
                check(
                    forward_span["duration_seconds"] <= e2e_seconds,
                    "stitched span durations consistent with e2e latency",
                )

                families = parse_prometheus_text(client.metrics_prometheus())
                workers = {
                    dict(labelset).get("worker")
                    for family in families.values()
                    for labelset in family["samples"]
                }
                check(
                    {"w0", "w1", "front"} <= workers,
                    f"fleet prometheus carries per-worker labels {sorted(w for w in workers if w)}",
                )
        finally:
            front.stop()

    print("[smoke] service smoke test: PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
