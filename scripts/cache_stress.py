#!/usr/bin/env python3
"""Multi-process ArtifactCache stress: N processes hammer one cache dir.

The fleet (``python -m repro.service --workers N``) rests on a single claim:
any number of processes can share one :class:`~repro.service.cache.ArtifactCache`
directory with no coordination beyond the cache's own atomic writes and
advisory index.  This script makes that claim falsifiable.  The parent

1. derives a deterministic universe of programs from ``--seed`` and
   pre-compiles a reference result for each,
2. spawns ``--processes`` workers (this same file with ``--worker I``), each
   running ``--ops`` randomized operations — ``put`` / ``get`` / ``delete`` /
   ``reconcile_index`` / ``sweep`` — against the shared directory, with a
   *protected* subset of keys that is written but never deleted,
3. then verifies: every worker exited cleanly, every protected artifact is
   present and deserializes to a result whose metrics match the reference
   compile, every surviving contested artifact also round-trips, the index
   parses, a reconcile pass finds zero drift on its second run, and no
   temp files leaked.

Exit code 0 = the invariants held.  Run it standalone::

    PYTHONPATH=src python scripts/cache_stress.py --processes 4 --ops 120

or via ``tests/test_service/test_cache_multiprocess.py``.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.paulis.pauli import PauliString  # noqa: E402
from repro.paulis.term import PauliTerm  # noqa: E402
from repro.service.cache import ArtifactCache, cache_key  # noqa: E402

#: paulis per program / qubits — small enough that a compile is milliseconds
NUM_QUBITS = 6
NUM_TERMS = 8
#: how many distinct programs the universe holds; the first PROTECTED of
#: them are written by every worker but deleted by none
UNIVERSE = 10
PROTECTED = 4


def structural_metrics(result) -> dict:
    """Result metrics minus wall-clock noise (``compile_seconds`` varies)."""
    return {
        name: value
        for name, value in result.metrics().items()
        if not name.endswith("_seconds")
    }


def build_universe(seed: int) -> "list[list[PauliTerm]]":
    """The deterministic shared program set every process re-derives."""
    rng = random.Random(seed)
    programs = []
    for _ in range(UNIVERSE):
        terms = []
        for _ in range(NUM_TERMS):
            label = "".join(rng.choice("IXYZ") for _ in range(NUM_QUBITS))
            if set(label) == {"I"}:
                label = "X" + label[1:]
            terms.append(PauliTerm(PauliString.from_label(label), rng.uniform(-1, 1)))
        programs.append(terms)
    return programs


def run_worker(args: argparse.Namespace) -> int:
    """One stress process: randomized cache traffic, seeded per worker."""
    rng = random.Random(args.seed * 7919 + args.worker)
    programs = build_universe(args.seed)
    keys = [cache_key(program) for program in programs]
    compiled = {}
    cache = ArtifactCache(args.cache_dir, ttl_seconds=3600.0)
    for _ in range(args.ops):
        index = rng.randrange(UNIVERSE)
        key, program = keys[index], programs[index]
        op = rng.random()
        if op < 0.45:
            if key not in compiled:
                compiled[key] = repro.compile(program)
            cache.put(key, compiled[key])
        elif op < 0.80:
            result = cache.get(key)
            if result is not None and result.circuit.num_qubits != NUM_QUBITS:
                raise AssertionError(
                    f"artifact {key[:12]} came back with "
                    f"{result.circuit.num_qubits} qubits, expected {NUM_QUBITS}"
                )
        elif op < 0.90:
            if index >= PROTECTED:  # protected keys are never deleted
                cache.delete(key)
        elif op < 0.95:
            cache.reconcile_index()
        else:
            cache.sweep()
    return 0


def run_parent(args: argparse.Namespace) -> int:
    programs = build_universe(args.seed)
    keys = [cache_key(program) for program in programs]
    reference = {
        key: repro.compile(program) for key, program in zip(keys, programs)
    }

    cache_dir = args.cache_dir
    cleanup = None
    if cache_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-cache-stress-")
        cache_dir = cleanup.name
    try:
        workers = []
        for index in range(args.processes):
            command = [
                sys.executable,
                str(Path(__file__).resolve()),
                "--worker", str(index),
                "--cache-dir", cache_dir,
                "--ops", str(args.ops),
                "--seed", str(args.seed),
            ]
            workers.append(subprocess.Popen(command))
        failures = 0
        for index, process in enumerate(workers):
            if process.wait() != 0:
                print(f"FAIL: worker {index} exited with {process.returncode}")
                failures += 1
        if failures:
            return 1

        cache = ArtifactCache(cache_dir)
        # 1. every protected artifact survived and round-trips correctly
        for key in keys[:PROTECTED]:
            result = cache.get(key)
            if result is None:
                print(f"FAIL: protected artifact {key[:12]} lost")
                return 1
            if structural_metrics(result) != structural_metrics(reference[key]):
                print(f"FAIL: protected artifact {key[:12]} corrupted")
                return 1
        # 2. every surviving contested artifact also round-trips
        survivors = 0
        for key in keys[PROTECTED:]:
            result = cache.get(key)
            if result is None:
                continue
            survivors += 1
            if structural_metrics(result) != structural_metrics(reference[key]):
                print(f"FAIL: contested artifact {key[:12]} corrupted")
                return 1
        # 3. the advisory index parses and reconciles to a fixed point
        index_path = Path(cache_dir) / "index.json"
        if index_path.exists():
            with open(index_path) as handle:
                json.load(handle)
        cache.reconcile_index()
        drift = cache.reconcile_index()
        if drift != 0:
            print(f"FAIL: reconcile_index did not stabilize (drift {drift})")
            return 1
        # 4. no temp files leaked past the atomic-write window
        leaked = [
            str(path)
            for path in Path(cache_dir).rglob(".tmp-*")
        ]
        if leaked:
            print(f"FAIL: {len(leaked)} temp files leaked: {leaked[:3]}")
            return 1
        print(
            f"OK: {args.processes} processes x {args.ops} ops — "
            f"{PROTECTED} protected + {survivors} contested artifacts intact, "
            "index stable, no temp leaks"
        )
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--processes", type=int, default=4)
    parser.add_argument("--ops", type=int, default=120, help="operations per process")
    parser.add_argument("--seed", type=int, default=20250807)
    parser.add_argument("--cache-dir", default=None, help="default: a temp dir")
    parser.add_argument(
        "--worker", type=int, default=None, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.worker is not None:
        if args.cache_dir is None:
            parser.error("--worker needs --cache-dir")
        return run_worker(args)
    return run_parent(args)


if __name__ == "__main__":
    sys.exit(main())
