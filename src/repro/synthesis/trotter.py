"""Direct (unoptimized) synthesis of quantum-simulation circuits.

A quantum-simulation program is a sequence of exponentiated Pauli strings
``exp(-i t_k/2 P_k)``.  This module concatenates the V-shaped building block
of :mod:`repro.synthesis.pauli_rotation` for every term, producing the
"native" circuits whose gate counts are listed in Table II of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SynthesisError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.pauli_rotation import synthesize_pauli_rotation


def synthesize_trotter_circuit(
    terms: Sequence[PauliTerm] | SparsePauliSum,
    tree: str = "chain",
    peephole: bool = False,
) -> QuantumCircuit:
    """Concatenate one Pauli-rotation block per term, in order.

    With ``peephole=True`` the blocks stream through a peephole-optimizing
    :class:`~repro.circuits.circuit.CircuitBuilder`, so the mirrored trees of
    adjacent blocks cancel at emission time and the returned circuit is
    already a local-rewrite fixpoint.
    """
    term_list = list(terms)
    if not term_list:
        raise SynthesisError("cannot synthesize a circuit from zero Pauli terms")
    num_qubits = term_list[0].num_qubits
    for term in term_list:
        if term.num_qubits != num_qubits:
            raise SynthesisError("all Pauli terms must act on the same number of qubits")
    if peephole:
        builder = QuantumCircuit.builder(num_qubits)
        for term in term_list:
            synthesize_pauli_rotation(term, tree=tree, into=builder)
        return builder.build()
    circuit = QuantumCircuit(num_qubits)
    for term in term_list:
        synthesize_pauli_rotation(term, tree=tree, into=circuit)
    return circuit


def rotation_terms_from_hamiltonian(
    hamiltonian: SparsePauliSum, time: float = 1.0, repetitions: int = 1
) -> list[PauliTerm]:
    """First-order Trotter rotation list for ``exp(-i H t)``.

    Every Hamiltonian term ``c * P`` becomes a rotation
    ``exp(-i * (2 c t / repetitions) / 2 * P)`` repeated ``repetitions`` times.
    """
    if repetitions < 1:
        raise SynthesisError("repetitions must be at least 1")
    step_terms = [
        PauliTerm(term.pauli.copy(), 2.0 * term.coefficient * time / repetitions)
        for term in hamiltonian
    ]
    rotations: list[PauliTerm] = []
    for _ in range(repetitions):
        rotations.extend(step_terms)
    return rotations


def count_native_gates(terms: Iterable[PauliTerm]) -> dict[str, int]:
    """Native gate counts of the unoptimized circuit (Table II columns)."""
    circuit = synthesize_trotter_circuit(list(terms))
    return {
        "cx": circuit.cx_count(),
        "single_qubit": circuit.single_qubit_count(),
        "total": len(circuit),
        "entangling_depth": circuit.entangling_depth(),
    }
