"""Direct synthesis of Pauli-rotation circuits (the paper's Fig. 1 building block)."""

from repro.synthesis.pauli_rotation import (
    basis_change_gates,
    cnot_chain_gates,
    cnot_balanced_tree_gates,
    synthesize_pauli_rotation,
)
from repro.synthesis.trotter import synthesize_trotter_circuit

__all__ = [
    "basis_change_gates",
    "cnot_chain_gates",
    "cnot_balanced_tree_gates",
    "synthesize_pauli_rotation",
    "synthesize_trotter_circuit",
]
