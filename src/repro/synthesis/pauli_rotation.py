"""Synthesis of a single Pauli rotation ``exp(-i * theta/2 * P)``.

The synthesized circuit is the standard "V-shape" of the paper's Fig. 1:

* a layer of single-qubit basis-change Cliffords mapping every non-identity
  Pauli factor to ``Z``,
* a CNOT parity tree collecting the parity of the support onto a root qubit,
* an ``Rz`` rotation on the root,
* the mirrored tree and mirrored basis layer.

The angle convention matches ``Rz``: the circuit implements
``exp(-i * theta / 2 * P)``.  A ``-1`` sign carried by the Pauli string flips
the sign of the angle.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate, cached_gate
from repro.exceptions import SynthesisError
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm


def basis_change_gates(pauli: PauliString) -> list[Gate]:
    """Single-qubit gates mapping every non-identity factor of ``pauli`` to ``Z``.

    The returned gates ``g`` satisfy, per qubit, ``g P_q g† = Z`` when applied
    in list order (``sdg`` then ``h`` for a ``Y`` factor, ``h`` for ``X``).
    """
    gates: list[Gate] = []
    for qubit in range(pauli.num_qubits):
        letter = pauli.letter(qubit)
        if letter == "X":
            gates.append(Gate("h", (qubit,)))
        elif letter == "Y":
            gates.append(Gate("sdg", (qubit,)))
            gates.append(Gate("h", (qubit,)))
    return gates


def basis_change_gates_sparse(
    support: list[int], x_bits: "list[int]", z_bits: "list[int]"
) -> list[Gate]:
    """Basis-change layer from symplectic bits on the support only.

    ``x_bits`` / ``z_bits`` are the Pauli's bits at the ``support`` qubits (in
    ascending qubit order).  Produces exactly the gate list of
    :func:`basis_change_gates` — which walks the whole register — without
    touching identity qubits; the table-native extractor reads the bits
    straight off a packed row.
    """
    gates: list[Gate] = []
    for qubit, x_bit, z_bit in zip(support, x_bits, z_bits):
        if x_bit:
            if z_bit:
                gates.append(cached_gate("sdg", (qubit,)))
            gates.append(cached_gate("h", (qubit,)))
    return gates


def cnot_chain_gates(support: list[int]) -> tuple[list[Gate], int]:
    """A linear CNOT parity chain over ``support``.

    Each qubit is the control of one CNOT targeting the next qubit in the
    list; the last qubit becomes the parity root.  Returns the gates and the
    root qubit.
    """
    if not support:
        raise SynthesisError("cannot build a parity chain over an empty support")
    gates = [
        Gate("cx", (support[index], support[index + 1]))
        for index in range(len(support) - 1)
    ]
    return gates, support[-1]


def cnot_balanced_tree_gates(support: list[int]) -> tuple[list[Gate], int]:
    """A balanced (logarithmic-depth) CNOT parity tree over ``support``.

    Pairs of qubits are merged level by level; the survivor of the final merge
    is the parity root.
    """
    if not support:
        raise SynthesisError("cannot build a parity tree over an empty support")
    gates: list[Gate] = []
    active = list(support)
    while len(active) > 1:
        survivors: list[int] = []
        for index in range(0, len(active) - 1, 2):
            control, target = active[index], active[index + 1]
            gates.append(Gate("cx", (control, target)))
            survivors.append(target)
        if len(active) % 2 == 1:
            survivors.append(active[-1])
        active = survivors
    return gates, active[0]


def synthesize_pauli_rotation(term: PauliTerm, tree: str = "chain", into=None):
    """Synthesize ``exp(-i * coefficient / 2 * P)``.

    With ``into=None`` a standalone :class:`QuantumCircuit` is returned.
    ``into`` may be any gate sink with ``append``/``extend`` — another
    circuit, or a :class:`~repro.circuits.circuit.CircuitBuilder` — in which
    case the V-shaped block streams straight into it (the emission-fused
    path: a peephole-optimizing builder folds the mirrored trees of adjacent
    blocks away as they are appended) and the sink is returned.
    """
    pauli = term.pauli
    sink = into if into is not None else QuantumCircuit(pauli.num_qubits)
    if pauli.is_identity():
        # Identity rotations are global phases; nothing to synthesize.
        return sink
    sign = pauli.sign
    if sign not in (1, -1):
        raise SynthesisError(f"cannot exponentiate a non-Hermitian Pauli {pauli!r}")
    angle = term.coefficient if sign == 1 else -term.coefficient

    basis = basis_change_gates(pauli)
    support = pauli.support
    if tree == "chain":
        tree_gates, root = cnot_chain_gates(support)
    elif tree == "balanced":
        tree_gates, root = cnot_balanced_tree_gates(support)
    else:
        raise SynthesisError(f"unknown tree style {tree!r}")

    sink.extend(basis)
    sink.extend(tree_gates)
    sink.append(Gate("rz", (root,), (float(angle),)))
    sink.extend(gate.inverse() for gate in reversed(tree_gates))
    sink.extend(gate.inverse() for gate in reversed(basis))
    return sink
