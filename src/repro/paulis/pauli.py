"""Symplectic representation of Pauli strings.

A Pauli operator on ``n`` qubits is stored as two boolean vectors ``x`` and
``z`` plus a global phase exponent ``phase`` (an integer modulo 4), encoding

    P = i**phase  *  prod_q  X_q**x[q] * Z_q**z[q]

A qubit with ``x=1, z=1`` therefore carries ``XZ = -iY``; the usual
single-letter label ``Y`` corresponds to ``x=1, z=1`` together with one extra
factor of ``i`` folded into ``phase``.  Hermitian Pauli strings (products of
``I, X, Y, Z`` with a ``+1`` or ``-1`` sign) always satisfy
``(phase - n_Y) % 2 == 0``.

Since the bit-packed engine landed, a :class:`PauliString` is a thin view
over packed ``uint64`` words (:mod:`repro.paulis.packed`): 64 qubits per
word, with the Pauli algebra (composition, commutation, weight) computed
directly on the words via ``np.bitwise_count``.  The ``x`` / ``z`` boolean
vectors are unpacked lazily, cached, and returned read-only; code that needs
mutable bit-vectors should operate on a
:class:`~repro.paulis.packed.PackedPauliTable` instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import PauliError
from repro.paulis.packed import pack_bits, unpack_bits, words_for_qubits

_LABEL_TO_BITS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_BITS_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliString:
    """An n-qubit Pauli operator with a tracked global phase.

    Parameters
    ----------
    x, z:
        Boolean arrays of length ``n``; qubit ``q`` carries
        ``X**x[q] Z**z[q]``.  Packed into ``uint64`` words internally.
    phase:
        Integer exponent of ``i`` applied globally, stored modulo 4.
    """

    __slots__ = ("_num_qubits", "_x_words", "_z_words", "phase", "_x_cache", "_z_cache")

    def __init__(self, x: Sequence[bool], z: Sequence[bool], phase: int = 0):
        x_arr = np.asarray(x, dtype=bool)
        z_arr = np.asarray(z, dtype=bool)
        if x_arr.ndim != 1 or z_arr.ndim != 1 or x_arr.shape != z_arr.shape:
            raise PauliError("x and z must be 1-D boolean vectors of equal length")
        self._num_qubits = int(x_arr.shape[0])
        self._x_words = pack_bits(x_arr)
        self._z_words = pack_bits(z_arr)
        self.phase = int(phase) % 4
        self._x_cache = None
        self._z_cache = None

    @classmethod
    def from_words(
        cls, num_qubits: int, x_words: np.ndarray, z_words: np.ndarray, phase: int = 0
    ) -> "PauliString":
        """Wrap packed words directly (the engine's fast path).

        The caller hands over ownership of the word arrays — they must not be
        mutated afterwards.
        """
        self = cls.__new__(cls)
        num_qubits = int(num_qubits)
        words = words_for_qubits(num_qubits)
        if x_words.shape != (words,) or z_words.shape != (words,):
            raise PauliError(
                f"expected {words} packed words for {num_qubits} qubits, "
                f"got x{x_words.shape} z{z_words.shape}"
            )
        self._num_qubits = num_qubits
        self._x_words = np.ascontiguousarray(x_words, dtype=np.uint64)
        self._z_words = np.ascontiguousarray(z_words, dtype=np.uint64)
        self.phase = int(phase) % 4
        self._x_cache = None
        self._z_cache = None
        return self

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity operator on ``num_qubits`` qubits."""
        words = words_for_qubits(num_qubits)
        return cls.from_words(
            num_qubits, np.zeros(words, dtype=np.uint64), np.zeros(words, dtype=np.uint64)
        )

    @classmethod
    def from_label(cls, label: str, sign: int = 1) -> "PauliString":
        """Build a Pauli from a textual label such as ``"XIZY"``.

        The label may start with ``+``, ``-``, ``+i`` or ``-i``.  ``sign``
        multiplies the label's own prefix and must be ``+1`` or ``-1``.
        The leftmost character acts on the highest-index qubit (Qiskit
        ordering).
        """
        if sign not in (1, -1):
            raise PauliError(f"sign must be +1 or -1, got {sign!r}")
        phase = 0 if sign == 1 else 2
        body = label
        if body.startswith("+i") or body.startswith("-i"):
            phase += 1 if body[0] == "+" else 3
            body = body[2:]
        elif body.startswith("+") or body.startswith("-"):
            phase += 0 if body[0] == "+" else 2
            body = body[1:]
        if not body:
            raise PauliError(f"empty Pauli label: {label!r}")
        num_qubits = len(body)
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        for position, char in enumerate(body):
            if char not in _LABEL_TO_BITS:
                raise PauliError(f"invalid Pauli character {char!r} in {label!r}")
            qubit = num_qubits - 1 - position
            bit_x, bit_z = _LABEL_TO_BITS[char]
            x[qubit] = bit_x
            z[qubit] = bit_z
            if char == "Y":
                phase += 1
        return cls(x, z, phase)

    @classmethod
    def from_sparse(
        cls, num_qubits: int, ops: Iterable[tuple[int, str]], sign: int = 1
    ) -> "PauliString":
        """Build a Pauli from ``(qubit, letter)`` pairs, identity elsewhere."""
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        phase = 0 if sign == 1 else 2
        for qubit, letter in ops:
            if not 0 <= qubit < num_qubits:
                raise PauliError(f"qubit {qubit} out of range for {num_qubits} qubits")
            if letter not in _LABEL_TO_BITS:
                raise PauliError(f"invalid Pauli letter {letter!r}")
            if x[qubit] or z[qubit]:
                raise PauliError(f"qubit {qubit} specified twice")
            bit_x, bit_z = _LABEL_TO_BITS[letter]
            x[qubit] = bit_x
            z[qubit] = bit_z
            if letter == "Y":
                phase += 1
        return cls(x, z, phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, letter: str, sign: int = 1) -> "PauliString":
        """A single-qubit Pauli ``letter`` on ``qubit``, identity elsewhere."""
        return cls.from_sparse(num_qubits, [(qubit, letter)], sign=sign)

    # ------------------------------------------------------------------ #
    # Packed / boolean views
    # ------------------------------------------------------------------ #
    @property
    def x_words(self) -> np.ndarray:
        """Packed X components (``uint64`` words); treat as read-only."""
        return self._x_words

    @property
    def z_words(self) -> np.ndarray:
        """Packed Z components (``uint64`` words); treat as read-only."""
        return self._z_words

    @property
    def x(self) -> np.ndarray:
        """Boolean X components, unpacked lazily; read-only."""
        if self._x_cache is None:
            arr = unpack_bits(self._x_words, self._num_qubits)
            arr.setflags(write=False)
            self._x_cache = arr
        return self._x_cache

    @property
    def z(self) -> np.ndarray:
        """Boolean Z components, unpacked lazily; read-only."""
        if self._z_cache is None:
            arr = unpack_bits(self._z_words, self._num_qubits)
            arr.setflags(write=False)
            self._z_cache = arr
        return self._z_cache

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return self._num_qubits

    @property
    def num_y(self) -> int:
        """Number of qubits carrying a ``Y`` operator."""
        return int(np.bitwise_count(self._x_words & self._z_words).sum())

    @property
    def sign(self) -> complex:
        """Coefficient in front of the ``I/X/Y/Z`` label form (one of 1, -1, i, -i)."""
        return 1j ** ((self.phase - self.num_y) % 4)

    @property
    def weight(self) -> int:
        """Number of non-identity single-qubit factors."""
        return int(np.bitwise_count(self._x_words | self._z_words).sum())

    @property
    def support(self) -> list[int]:
        """Sorted list of qubits carrying a non-identity factor."""
        return [int(q) for q in np.nonzero(self.x | self.z)[0]]

    def is_identity(self) -> bool:
        """True when every qubit carries the identity (phase is ignored)."""
        return not bool(np.any(self._x_words | self._z_words))

    def is_hermitian(self) -> bool:
        """True when the operator equals a real-signed ``I/X/Y/Z`` string."""
        return (self.phase - self.num_y) % 2 == 0

    def letter(self, qubit: int) -> str:
        """The single-qubit Pauli letter acting on ``qubit``."""
        if qubit < 0:
            qubit += self._num_qubits
        if not 0 <= qubit < self._num_qubits:
            raise IndexError(
                f"qubit {qubit} out of range for a {self._num_qubits}-qubit Pauli"
            )
        word, bit = qubit >> 6, qubit & 63
        bit_x = (int(self._x_words[word]) >> bit) & 1
        bit_z = (int(self._z_words[word]) >> bit) & 1
        return _BITS_TO_LABEL[(bit_x, bit_z)]

    def letters(self) -> list[str]:
        """Per-qubit Pauli letters indexed by qubit number."""
        x, z = self.x, self.z
        return [_BITS_TO_LABEL[(int(x[q]), int(z[q]))] for q in range(self._num_qubits)]

    # ------------------------------------------------------------------ #
    # Label / matrix conversion
    # ------------------------------------------------------------------ #
    def to_label(self, include_sign: bool = True) -> str:
        """Return the textual label, highest qubit first."""
        body = "".join(reversed(self.letters()))
        if not include_sign:
            return body
        prefix = {1: "", -1: "-", 1j: "+i", -1j: "-i"}[complex(self.sign)]
        return prefix + body

    def bare(self) -> "PauliString":
        """A copy with the phase reset so the label sign is ``+1``."""
        return PauliString.from_words(
            self._num_qubits, self._x_words.copy(), self._z_words.copy(), self.num_y % 4
        )

    def to_matrix(self) -> np.ndarray:
        """Dense matrix representation (intended for small qubit counts)."""
        matrix = np.array([[1.0 + 0j]])
        for qubit in range(self._num_qubits - 1, -1, -1):
            matrix = np.kron(matrix, _PAULI_MATRICES[self.letter(qubit)])
        return complex(self.sign) * matrix

    # ------------------------------------------------------------------ #
    # Algebra (computed directly on the packed words)
    # ------------------------------------------------------------------ #
    def copy(self) -> "PauliString":
        return PauliString.from_words(
            self._num_qubits, self._x_words.copy(), self._z_words.copy(), self.phase
        )

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two operators commute."""
        self._check_compatible(other)
        overlap = int(
            np.bitwise_count(
                (self._x_words & other._z_words) ^ (self._z_words & other._x_words)
            ).sum()
        )
        return overlap % 2 == 0

    def compose(self, other: "PauliString") -> "PauliString":
        """Return the operator product ``self @ other`` with exact phase."""
        self._check_compatible(other)
        # Moving other's X factors left past self's Z factors yields (-1) each
        # time an X crosses a Z on the same qubit.
        crossings = int(np.bitwise_count(self._z_words & other._x_words).sum())
        phase = (self.phase + other.phase + 2 * crossings) % 4
        return PauliString.from_words(
            self._num_qubits,
            self._x_words ^ other._x_words,
            self._z_words ^ other._z_words,
            phase,
        )

    def __matmul__(self, other: "PauliString") -> "PauliString":
        return self.compose(other)

    def multiply_phase(self, power_of_i: int) -> "PauliString":
        """Return a copy multiplied by ``i**power_of_i``."""
        copy = self.copy()
        copy.phase = (copy.phase + power_of_i) % 4
        return copy

    def negate(self) -> "PauliString":
        """Return ``-P``."""
        return self.multiply_phase(2)

    def adjoint(self) -> "PauliString":
        """Return the Hermitian adjoint."""
        # (i^p * B)^dagger = (-i)^p * B^dagger; B = prod X^x Z^z per qubit and
        # B^dagger = prod Z^z X^x = (-1)^{#(x&z)} B.
        overlap = self.num_y
        phase = (-self.phase + 2 * overlap) % 4
        return PauliString.from_words(
            self._num_qubits, self._x_words.copy(), self._z_words.copy(), phase
        )

    def restricted(self, qubits: Sequence[int]) -> "PauliString":
        """The Pauli restricted to ``qubits`` (in the given order), sign dropped."""
        indices = list(qubits)
        x = self.x[indices]
        z = self.z[indices]
        return PauliString(x, z, int(np.count_nonzero(x & z)))

    def expanded(self, num_qubits: int, qubits: Sequence[int]) -> "PauliString":
        """Embed this Pauli into ``num_qubits`` qubits at positions ``qubits``."""
        if len(qubits) != self._num_qubits:
            raise PauliError("qubit list length must match the Pauli size")
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        own_x, own_z = self.x, self.z
        for local, target in enumerate(qubits):
            x[target] = own_x[local]
            z[target] = own_z[local]
        return PauliString(x, z, self.phase)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self.phase == other.phase
            and bool(np.array_equal(self._x_words, other._x_words))
            and bool(np.array_equal(self._z_words, other._z_words))
        )

    def equals_up_to_phase(self, other: "PauliString") -> bool:
        """True when the two operators differ only by a global phase."""
        return (
            self._num_qubits == other._num_qubits
            and bool(np.array_equal(self._x_words, other._x_words))
            and bool(np.array_equal(self._z_words, other._z_words))
        )

    def __hash__(self) -> int:
        return hash(
            (self._num_qubits, self._x_words.tobytes(), self._z_words.tobytes(), self.phase)
        )

    def __repr__(self) -> str:
        return f"PauliString({self.to_label()!r})"

    def _check_compatible(self, other: "PauliString") -> None:
        if self._num_qubits != other._num_qubits:
            raise PauliError(
                f"incompatible qubit counts: {self._num_qubits} vs {other._num_qubits}"
            )
