"""Symplectic representation of Pauli strings.

A Pauli operator on ``n`` qubits is stored as two boolean vectors ``x`` and
``z`` plus a global phase exponent ``phase`` (an integer modulo 4), encoding

    P = i**phase  *  prod_q  X_q**x[q] * Z_q**z[q]

A qubit with ``x=1, z=1`` therefore carries ``XZ = -iY``; the usual
single-letter label ``Y`` corresponds to ``x=1, z=1`` together with one extra
factor of ``i`` folded into ``phase``.  Hermitian Pauli strings (products of
``I, X, Y, Z`` with a ``+1`` or ``-1`` sign) always satisfy
``(phase - n_Y) % 2 == 0``.

The class is deliberately mutable-in-place for the hot paths used by the
Clifford tableau (conjugation by Clifford gates); every public constructor
returns an independent copy of its inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import PauliError

_LABEL_TO_BITS = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_BITS_TO_LABEL = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}

_PAULI_MATRICES = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliString:
    """An n-qubit Pauli operator with a tracked global phase.

    Parameters
    ----------
    x, z:
        Boolean arrays of length ``n``; qubit ``q`` carries
        ``X**x[q] Z**z[q]``.
    phase:
        Integer exponent of ``i`` applied globally, stored modulo 4.
    """

    __slots__ = ("x", "z", "phase")

    def __init__(self, x: Sequence[bool], z: Sequence[bool], phase: int = 0):
        self.x = np.asarray(x, dtype=bool).copy()
        self.z = np.asarray(z, dtype=bool).copy()
        if self.x.ndim != 1 or self.z.ndim != 1 or self.x.shape != self.z.shape:
            raise PauliError("x and z must be 1-D boolean vectors of equal length")
        self.phase = int(phase) % 4

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        """The identity operator on ``num_qubits`` qubits."""
        return cls(np.zeros(num_qubits, dtype=bool), np.zeros(num_qubits, dtype=bool))

    @classmethod
    def from_label(cls, label: str, sign: int = 1) -> "PauliString":
        """Build a Pauli from a textual label such as ``"XIZY"``.

        The label may start with ``+``, ``-``, ``+i`` or ``-i``.  ``sign``
        multiplies the label's own prefix and must be ``+1`` or ``-1``.
        The leftmost character acts on the highest-index qubit (Qiskit
        ordering).
        """
        if sign not in (1, -1):
            raise PauliError(f"sign must be +1 or -1, got {sign!r}")
        phase = 0 if sign == 1 else 2
        body = label
        if body.startswith("+i") or body.startswith("-i"):
            phase += 1 if body[0] == "+" else 3
            body = body[2:]
        elif body.startswith("+") or body.startswith("-"):
            phase += 0 if body[0] == "+" else 2
            body = body[1:]
        if not body:
            raise PauliError(f"empty Pauli label: {label!r}")
        num_qubits = len(body)
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        for position, char in enumerate(body):
            if char not in _LABEL_TO_BITS:
                raise PauliError(f"invalid Pauli character {char!r} in {label!r}")
            qubit = num_qubits - 1 - position
            bit_x, bit_z = _LABEL_TO_BITS[char]
            x[qubit] = bit_x
            z[qubit] = bit_z
            if char == "Y":
                phase += 1
        return cls(x, z, phase)

    @classmethod
    def from_sparse(
        cls, num_qubits: int, ops: Iterable[tuple[int, str]], sign: int = 1
    ) -> "PauliString":
        """Build a Pauli from ``(qubit, letter)`` pairs, identity elsewhere."""
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        phase = 0 if sign == 1 else 2
        for qubit, letter in ops:
            if not 0 <= qubit < num_qubits:
                raise PauliError(f"qubit {qubit} out of range for {num_qubits} qubits")
            if letter not in _LABEL_TO_BITS:
                raise PauliError(f"invalid Pauli letter {letter!r}")
            if x[qubit] or z[qubit]:
                raise PauliError(f"qubit {qubit} specified twice")
            bit_x, bit_z = _LABEL_TO_BITS[letter]
            x[qubit] = bit_x
            z[qubit] = bit_z
            if letter == "Y":
                phase += 1
        return cls(x, z, phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, letter: str, sign: int = 1) -> "PauliString":
        """A single-qubit Pauli ``letter`` on ``qubit``, identity elsewhere."""
        return cls.from_sparse(num_qubits, [(qubit, letter)], sign=sign)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return int(self.x.shape[0])

    @property
    def num_y(self) -> int:
        """Number of qubits carrying a ``Y`` operator."""
        return int(np.count_nonzero(self.x & self.z))

    @property
    def sign(self) -> complex:
        """Coefficient in front of the ``I/X/Y/Z`` label form (one of 1, -1, i, -i)."""
        return 1j ** ((self.phase - self.num_y) % 4)

    @property
    def weight(self) -> int:
        """Number of non-identity single-qubit factors."""
        return int(np.count_nonzero(self.x | self.z))

    @property
    def support(self) -> list[int]:
        """Sorted list of qubits carrying a non-identity factor."""
        return [int(q) for q in np.nonzero(self.x | self.z)[0]]

    def is_identity(self) -> bool:
        """True when every qubit carries the identity (phase is ignored)."""
        return not bool(np.any(self.x | self.z))

    def is_hermitian(self) -> bool:
        """True when the operator equals a real-signed ``I/X/Y/Z`` string."""
        return (self.phase - self.num_y) % 2 == 0

    def letter(self, qubit: int) -> str:
        """The single-qubit Pauli letter acting on ``qubit``."""
        return _BITS_TO_LABEL[(int(self.x[qubit]), int(self.z[qubit]))]

    def letters(self) -> list[str]:
        """Per-qubit Pauli letters indexed by qubit number."""
        return [self.letter(q) for q in range(self.num_qubits)]

    # ------------------------------------------------------------------ #
    # Label / matrix conversion
    # ------------------------------------------------------------------ #
    def to_label(self, include_sign: bool = True) -> str:
        """Return the textual label, highest qubit first."""
        body = "".join(self.letter(q) for q in range(self.num_qubits - 1, -1, -1))
        if not include_sign:
            return body
        prefix = {1: "", -1: "-", 1j: "+i", -1j: "-i"}[complex(self.sign)]
        return prefix + body

    def bare(self) -> "PauliString":
        """A copy with the phase reset so the label sign is ``+1``."""
        copy = self.copy()
        copy.phase = copy.num_y % 4
        return copy

    def to_matrix(self) -> np.ndarray:
        """Dense matrix representation (intended for small qubit counts)."""
        matrix = np.array([[1.0 + 0j]])
        for qubit in range(self.num_qubits - 1, -1, -1):
            matrix = np.kron(matrix, _PAULI_MATRICES[self.letter(qubit)])
        return complex(self.sign) * matrix

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def copy(self) -> "PauliString":
        return PauliString(self.x, self.z, self.phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the two operators commute."""
        self._check_compatible(other)
        overlap = np.count_nonzero((self.x & other.z) ^ (self.z & other.x))
        return overlap % 2 == 0

    def compose(self, other: "PauliString") -> "PauliString":
        """Return the operator product ``self @ other`` with exact phase."""
        self._check_compatible(other)
        # Moving other's X factors left past self's Z factors yields (-1) each
        # time an X crosses a Z on the same qubit.
        crossings = int(np.count_nonzero(self.z & other.x))
        phase = (self.phase + other.phase + 2 * crossings) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, phase)

    def __matmul__(self, other: "PauliString") -> "PauliString":
        return self.compose(other)

    def multiply_phase(self, power_of_i: int) -> "PauliString":
        """Return a copy multiplied by ``i**power_of_i``."""
        copy = self.copy()
        copy.phase = (copy.phase + power_of_i) % 4
        return copy

    def negate(self) -> "PauliString":
        """Return ``-P``."""
        return self.multiply_phase(2)

    def adjoint(self) -> "PauliString":
        """Return the Hermitian adjoint."""
        # (i^p * B)^dagger = (-i)^p * B^dagger; B = prod X^x Z^z per qubit and
        # B^dagger = prod Z^z X^x = (-1)^{#(x&z)} B.
        overlap = int(np.count_nonzero(self.x & self.z))
        phase = (-self.phase + 2 * overlap) % 4
        return PauliString(self.x, self.z, phase)

    def restricted(self, qubits: Sequence[int]) -> "PauliString":
        """The Pauli restricted to ``qubits`` (in the given order), sign dropped."""
        indices = list(qubits)
        x = self.x[indices]
        z = self.z[indices]
        return PauliString(x, z, int(np.count_nonzero(x & z)))

    def expanded(self, num_qubits: int, qubits: Sequence[int]) -> "PauliString":
        """Embed this Pauli into ``num_qubits`` qubits at positions ``qubits``."""
        if len(qubits) != self.num_qubits:
            raise PauliError("qubit list length must match the Pauli size")
        x = np.zeros(num_qubits, dtype=bool)
        z = np.zeros(num_qubits, dtype=bool)
        for local, target in enumerate(qubits):
            x[target] = self.x[local]
            z[target] = self.z[local]
        return PauliString(x, z, self.phase)

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and bool(np.array_equal(self.x, other.x))
            and bool(np.array_equal(self.z, other.z))
            and self.phase == other.phase
        )

    def equals_up_to_phase(self, other: "PauliString") -> bool:
        """True when the two operators differ only by a global phase."""
        return bool(np.array_equal(self.x, other.x)) and bool(np.array_equal(self.z, other.z))

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    def __repr__(self) -> str:
        return f"PauliString({self.to_label()!r})"

    def _check_compatible(self, other: "PauliString") -> None:
        if self.num_qubits != other.num_qubits:
            raise PauliError(
                f"incompatible qubit counts: {self.num_qubits} vs {other.num_qubits}"
            )
