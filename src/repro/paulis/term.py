"""A Pauli string paired with a rotation angle or coefficient."""

from __future__ import annotations

from dataclasses import dataclass

from repro.paulis.pauli import PauliString


@dataclass(frozen=True)
class PauliTerm:
    """A Pauli string with an attached real coefficient.

    Used both as a Hamiltonian term (``coefficient`` is the term weight) and
    as a rotation specification (``coefficient`` is the rotation angle of
    ``exp(-i * coefficient / 2 * P)``).
    """

    pauli: PauliString
    coefficient: float = 1.0

    @property
    def num_qubits(self) -> int:
        return self.pauli.num_qubits

    @classmethod
    def from_label(cls, label: str, coefficient: float = 1.0) -> "PauliTerm":
        return cls(PauliString.from_label(label), float(coefficient))

    def with_coefficient(self, coefficient: float) -> "PauliTerm":
        return PauliTerm(self.pauli.copy(), float(coefficient))

    def canonicalized(self) -> "PauliTerm":
        """Fold a ``-1`` label sign of the Pauli into the coefficient."""
        sign = self.pauli.sign
        if sign == 1:
            return self
        if sign == -1:
            return PauliTerm(self.pauli.bare(), -self.coefficient)
        raise ValueError(f"cannot canonicalize a non-Hermitian Pauli {self.pauli!r}")

    def __repr__(self) -> str:
        return f"PauliTerm({self.pauli.to_label()!r}, {self.coefficient!r})"
