"""Bit-packed symplectic storage for batches of Pauli strings.

Every Pauli on ``n`` qubits is two bit-vectors ``x`` and ``z`` plus a phase
exponent.  This module packs those bit-vectors 64 qubits per ``uint64`` word,
so a whole observable (thousands of Pauli terms) lives in three contiguous
word arrays:

* ``x_words``, ``z_words`` — shape ``(rows, words)`` ``uint64`` matrices with
  qubit ``q`` stored in bit ``q & 63`` of word ``q >> 6`` (little-endian bit
  order, matching ``np.packbits(..., bitorder="little")``);
* ``phases`` — shape ``(rows,)`` ``int64`` exponents of ``i`` modulo 4.

Clifford conjugation then becomes a handful of whole-column bitwise
operations per gate — one array expression covering *all* rows at once —
instead of the legacy per-string, per-qubit Python loop.  The speedup is
measured (not asserted) by ``benchmarks/bench_throughput.py``.

The word arrays live on a pluggable :class:`~repro.arrays.ArrayBackend`
(numpy by default, CuPy for device residency, a pure-Python reference for
equivalence testing); every mutating method routes through
``self.backend``.  Packing/unpacking between booleans and words is always
host-side numpy — tables transfer with :meth:`PackedPauliTable.to_backend` /
:meth:`PackedPauliTable.to_host`.

The packed layout assumes a little-endian host (x86-64, aarch64); the
``uint8 -> uint64`` reinterpretation in :func:`pack_bits` would permute bits
within each word on a big-endian host.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.arrays import ArrayBackend, NUMPY, resolve_backend
from repro.exceptions import PauliError

if TYPE_CHECKING:
    from repro.circuits.gate import Gate
    from repro.paulis.pauli import PauliString

#: qubits stored per machine word
WORD_BITS = 64


def words_for_qubits(num_qubits: int) -> int:
    """Number of ``uint64`` words needed to hold ``num_qubits`` bits."""
    return (int(num_qubits) + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array ``(..., n)`` into ``uint64`` words ``(..., W)``.

    Bit ``q`` of the input lands in bit ``q & 63`` of word ``q >> 6``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    num_qubits = bits.shape[-1]
    words = words_for_qubits(num_qubits)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    out = np.zeros(bits.shape[:-1] + (words * 8,), dtype=np.uint8)
    out[..., : packed.shape[-1]] = packed
    return out.view(np.uint64)


def unpack_bits(words: np.ndarray, num_qubits: int) -> np.ndarray:
    """Unpack ``uint64`` words ``(..., W)`` back into booleans ``(..., n)``."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, count=int(num_qubits), bitorder="little").astype(bool)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row population count of a host ``(rows, W)`` word matrix."""
    return np.bitwise_count(words).sum(axis=-1).astype(np.int64)


def apply_gate_to_words(
    x_words: np.ndarray, z_words: np.ndarray, phases: np.ndarray, gate: "Gate"
) -> None:
    """Deprecated shim: use ``backend.apply_gate_to_words`` instead.

    The per-gate kernels moved to :mod:`repro.arrays`; this host-numpy entry
    point remains for callers that operated on raw word arrays.
    """
    warnings.warn(
        "repro.paulis.packed.apply_gate_to_words is deprecated; route through "
        "an ArrayBackend (repro.arrays.resolve_backend(...).apply_gate_to_words)",
        DeprecationWarning,
        stacklevel=2,
    )
    NUMPY.apply_gate_to_words(x_words, z_words, phases, gate)


def apply_basis_layer_to_words(
    x_words: np.ndarray,
    z_words: np.ndarray,
    phases: np.ndarray,
    y_mask: np.ndarray,
    h_mask: np.ndarray,
) -> None:
    """Deprecated shim: use ``backend.apply_basis_layer_to_words`` instead."""
    warnings.warn(
        "repro.paulis.packed.apply_basis_layer_to_words is deprecated; route "
        "through an ArrayBackend "
        "(repro.arrays.resolve_backend(...).apply_basis_layer_to_words)",
        DeprecationWarning,
        stacklevel=2,
    )
    NUMPY.apply_basis_layer_to_words(x_words, z_words, phases, y_mask, h_mask)


def conjugate_row_through_generators(
    gen_x: np.ndarray,
    gen_z: np.ndarray,
    gen_phases: np.ndarray,
    num_qubits: int,
    x_words: np.ndarray,
    z_words: np.ndarray,
    phase: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Ordered product of generator images selected by one Pauli's bits.

    ``gen_x`` / ``gen_z`` / ``gen_phases`` hold the ``2n`` packed generator
    images (row ``2q`` = image of ``X_q``, row ``2q + 1`` = image of ``Z_q``);
    the Pauli is given by its packed words plus its phase.  This is the
    single-row host-side conjugation kernel shared by
    :meth:`repro.clifford.tableau.CliffordTableau.conjugate` and
    :meth:`repro.clifford.engine.PackedConjugator.conjugate` — the X image is
    folded in before the Z image per qubit, with a factor ``(-1)`` whenever a
    ``Z`` of the accumulator crosses an ``X`` of the incoming image.
    """
    words = gen_x.shape[1]
    result_x = np.zeros(words, dtype=np.uint64)
    result_z = np.zeros(words, dtype=np.uint64)
    phase = int(phase)
    for qubit in range(num_qubits):
        word, bit = qubit >> 6, qubit & 63
        for offset, selector in ((0, x_words), (1, z_words)):
            if not (int(selector[word]) >> bit) & 1:
                continue
            row = 2 * qubit + offset
            row_x = gen_x[row]
            phase += int(gen_phases[row])
            phase += 2 * int(np.bitwise_count(result_z & row_x).sum())
            result_x ^= row_x
            result_z ^= gen_z[row]
    return result_x, result_z, phase % 4


class PackedPauliTable:
    """A batch of Pauli strings in bit-packed symplectic form.

    The canonical store behind :class:`~repro.paulis.pauli.PauliString` /
    :class:`~repro.paulis.sum.SparsePauliSum` batches and the operand of the
    vectorized conjugation engine (:mod:`repro.clifford.engine`).  The arrays
    are owned by the table, live on ``self.backend``, and are mutated in
    place by the ``apply_*`` methods.
    """

    __slots__ = ("num_qubits", "x_words", "z_words", "phases", "backend")

    def __init__(
        self,
        num_qubits: int,
        x_words,
        z_words,
        phases,
        backend: "str | ArrayBackend | None" = None,
    ):
        self.num_qubits = int(num_qubits)
        self.backend = resolve_backend(backend)
        expected_words = words_for_qubits(self.num_qubits)
        if (
            x_words.ndim != 2
            or x_words.shape != z_words.shape
            or x_words.shape[1] != expected_words
            or phases.shape != (x_words.shape[0],)
        ):
            raise PauliError(
                f"inconsistent packed shapes: x{x_words.shape} z{z_words.shape} "
                f"phases{phases.shape} for {self.num_qubits} qubits"
            )
        be = self.backend
        self.x_words = be.asarray_words(x_words)
        self.z_words = be.asarray_words(z_words)
        self.phases = be.mod(be.asarray_phases(phases), 4)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(
        cls, num_rows: int, num_qubits: int, backend: "str | ArrayBackend | None" = None
    ) -> "PackedPauliTable":
        """A table of ``num_rows`` identity Paulis."""
        words = words_for_qubits(num_qubits)
        be = resolve_backend(backend)
        return cls(
            num_qubits,
            be.zeros_words(num_rows, words),
            be.zeros_words(num_rows, words),
            be.zeros_phases(num_rows),
            backend=be,
        )

    @classmethod
    def from_bool_arrays(
        cls,
        x: np.ndarray,
        z: np.ndarray,
        phases: Sequence[int] | np.ndarray,
        backend: "str | ArrayBackend | None" = None,
    ) -> "PackedPauliTable":
        """Pack ``(rows, n)`` boolean component matrices (host-side packing)."""
        x = np.atleast_2d(np.asarray(x, dtype=bool))
        z = np.atleast_2d(np.asarray(z, dtype=bool))
        if x.shape != z.shape:
            raise PauliError("x and z must have identical shapes")
        return cls(
            x.shape[1],
            pack_bits(x),
            pack_bits(z),
            np.asarray(phases, dtype=np.int64),
            backend=backend,
        )

    @classmethod
    def from_paulis(
        cls, paulis: Iterable["PauliString"], backend: "str | ArrayBackend | None" = None
    ) -> "PackedPauliTable":
        """Pack an iterable of :class:`PauliString` (all on the same register)."""
        pauli_list = list(paulis)
        if not pauli_list:
            raise PauliError("cannot pack an empty collection of Paulis")
        num_qubits = pauli_list[0].num_qubits
        words = words_for_qubits(num_qubits)
        x_words = np.empty((len(pauli_list), words), dtype=np.uint64)
        z_words = np.empty((len(pauli_list), words), dtype=np.uint64)
        phases = np.empty(len(pauli_list), dtype=np.int64)
        for index, pauli in enumerate(pauli_list):
            if pauli.num_qubits != num_qubits:
                raise PauliError(
                    f"inconsistent qubit counts: {pauli.num_qubits} vs {num_qubits}"
                )
            x_words[index] = pauli.x_words
            z_words[index] = pauli.z_words
            phases[index] = pauli.phase
        return cls(num_qubits, x_words, z_words, phases, backend=backend)

    @classmethod
    def from_labels(
        cls, labels: Sequence[str], backend: "str | ArrayBackend | None" = None
    ) -> "PackedPauliTable":
        """Pack textual labels (convenience for tests and benchmarks)."""
        from repro.paulis.pauli import PauliString

        return cls.from_paulis(
            (PauliString.from_label(label) for label in labels), backend=backend
        )

    def copy(self) -> "PackedPauliTable":
        be = self.backend
        return PackedPauliTable(
            self.num_qubits,
            be.copy(self.x_words),
            be.copy(self.z_words),
            be.copy(self.phases),
            backend=be,
        )

    # ------------------------------------------------------------------ #
    # Backend transfer
    # ------------------------------------------------------------------ #
    def to_backend(self, backend: "str | ArrayBackend") -> "PackedPauliTable":
        """This table's rows on ``backend`` (``self`` if already there)."""
        target = resolve_backend(backend)
        if target is self.backend:
            return self
        be = self.backend
        return PackedPauliTable(
            self.num_qubits,
            be.to_numpy(self.x_words),
            be.to_numpy(self.z_words),
            be.to_numpy(self.phases),
            backend=target,
        )

    def to_host(self) -> "PackedPauliTable":
        """This table on the host numpy backend (``self`` if already there).

        The synthesis boundary: gate emission, tableaus, and wire
        serialization always operate on host tables.
        """
        return self.to_backend(NUMPY)

    # ------------------------------------------------------------------ #
    # Row access / unpacking
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(self.x_words.shape[0])

    def __len__(self) -> int:
        return self.num_rows

    def row(self, index: int) -> "PauliString":
        """Materialize row ``index`` as an independent :class:`PauliString`."""
        from repro.paulis.pauli import PauliString

        be = self.backend
        return PauliString.from_words(
            self.num_qubits,
            be.to_numpy(self.x_words[index]).copy(),
            be.to_numpy(self.z_words[index]).copy(),
            int(self.phases[index]),
        )

    def row_view(self, index: int) -> "PauliString":
        """Row ``index`` as a :class:`PauliString` sharing this table's words.

        No copy is made on host backends: the view is valid only until the
        table mutates (``apply_*`` / ``move_row``), and the caller must treat
        it as read-only.  Use :meth:`row` for an independent copy.
        """
        from repro.paulis.pauli import PauliString

        be = self.backend
        return PauliString.from_words(
            self.num_qubits,
            be.to_numpy(self.x_words[index]),
            be.to_numpy(self.z_words[index]),
            int(self.phases[index]) % 4,
        )

    def to_paulis(self) -> list["PauliString"]:
        return [self.row(index) for index in range(self.num_rows)]

    def to_bool_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unpack into host ``(x, z, phases)`` boolean/int arrays."""
        be = self.backend
        return (
            unpack_bits(be.to_numpy(self.x_words), self.num_qubits),
            unpack_bits(be.to_numpy(self.z_words), self.num_qubits),
            be.to_numpy(self.phases).copy(),
        )

    def select(self, indices: np.ndarray | Sequence[int]) -> "PackedPauliTable":
        """A new table holding the requested rows (in the given order)."""
        indices = np.asarray(indices)
        be = self.backend
        return PackedPauliTable(
            self.num_qubits,
            be.select_rows(self.x_words, indices),
            be.select_rows(self.z_words, indices),
            be.select_rows(self.phases, indices),
            backend=be,
        )

    # ------------------------------------------------------------------ #
    # Vectorized conjugation (all rows at once, one gate at a time)
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: "Gate") -> None:
        """Apply ``row -> g row g†`` in place to every row."""
        self._check_gate_fits(gate)
        be = self.backend
        be.apply_gate_to_words(self.x_words, self.z_words, self.phases, gate)
        be.imod(self.phases, 4)

    def apply_circuit(self, circuit) -> None:
        """Conjugate every row through ``circuit`` in time order."""
        if circuit.num_qubits != self.num_qubits:
            raise PauliError(
                f"circuit acts on {circuit.num_qubits} qubits, "
                f"table holds {self.num_qubits}-qubit Paulis"
            )
        be = self.backend
        xw, zw, phases = self.x_words, self.z_words, self.phases
        for gate in circuit:
            be.apply_gate_to_words(xw, zw, phases, gate)
        be.imod(phases, 4)

    def _check_gate_fits(self, gate: "Gate") -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PauliError(
                    f"gate {gate!r} addresses qubit {qubit} outside the "
                    f"{self.num_qubits}-qubit register"
                )

    # ------------------------------------------------------------------ #
    # In-place suffix application (the table-native extraction hot path)
    # ------------------------------------------------------------------ #
    def apply_gates(self, gates: Sequence["Gate"], start: int = 0, stop: int | None = None) -> None:
        """Stream ``gates`` in time order over rows ``[start, stop)`` in place.

        One whole-column bitwise expression per gate covering every selected
        row at once; phases are folded modulo 4 after the batch.
        """
        be = self.backend
        xw = self.x_words[start:stop]
        zw = self.z_words[start:stop]
        phases = self.phases[start:stop]
        for gate in gates:
            be.apply_gate_to_words(xw, zw, phases, gate)
        be.imod(phases, 4)

    def apply_basis_layer(
        self, y_mask, h_mask, start: int = 0, stop: int | None = None
    ) -> None:
        """Apply a masked ``sdg``/``h`` basis-change layer to rows ``[start, stop)``."""
        be = self.backend
        phases = self.phases[start:stop]
        be.apply_basis_layer_to_words(
            self.x_words[start:stop], self.z_words[start:stop], phases, y_mask, h_mask
        )
        be.imod(phases, 4)

    def move_row(self, src: int, dest: int) -> None:
        """Move row ``src`` to position ``dest``, shifting the rows between.

        The packed analogue of ``rows.insert(dest, rows.pop(src))`` for
        ``dest <= src`` — what the in-block greedy reordering of Algorithm 2
        performs on the remaining program.
        """
        if dest > src:
            raise PauliError(f"move_row only shifts rows earlier: src={src} dest={dest}")
        if dest == src:
            return
        be = self.backend
        window = slice(dest, src + 1)
        for array in (self.x_words, self.z_words, self.phases):
            array[window] = be.roll_down(array[window])

    # ------------------------------------------------------------------ #
    # Vectorized row metrics
    # ------------------------------------------------------------------ #
    def weights(self, start: int = 0, stop: int | None = None):
        """Per-row count of non-identity single-qubit factors in ``[start, stop)``."""
        be = self.backend
        return be.popcount_rows(be.bor(self.x_words[start:stop], self.z_words[start:stop]))

    def argsort_weights(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Indices (relative to ``start``) ordering rows ``[start, stop)`` by weight.

        The sort is stable, so equal-weight rows keep their program order —
        the same deterministic-tie-break discipline the extraction cost
        model's branch-and-bound applies to its (masked) weight sort.
        """
        return self.backend.argsort_stable(self.weights(start, stop))

    def num_y(self):
        """Per-row count of ``Y`` factors (``x & z`` bits)."""
        be = self.backend
        return be.popcount_rows(be.band(self.x_words, self.z_words))

    def hermitian_mask(self) -> np.ndarray:
        """Boolean mask of rows equal to a real-signed ``I/X/Y/Z`` string."""
        be = self.backend
        phases = be.to_numpy(self.phases)
        num_y = be.to_numpy(self.num_y())
        return ((phases - num_y) % 2) == 0

    def signs(self) -> np.ndarray:
        """Per-row label-form sign exponents: ``i**sign_exponent``, modulo 4."""
        be = self.backend
        return (be.to_numpy(self.phases) - be.to_numpy(self.num_y())) % 4

    def bare(self) -> "PackedPauliTable":
        """A copy with every row's phase reset so its label sign is ``+1``."""
        be = self.backend
        return PackedPauliTable(
            self.num_qubits,
            be.copy(self.x_words),
            be.copy(self.z_words),
            self.num_y(),
            backend=be,
        )

    def anticommutation_with_row(
        self, x_row, z_row, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Boolean mask: which rows in ``[start, stop)`` anticommute with the
        Pauli given by packed words ``(x_row, z_row)``."""
        stop = self.num_rows if stop is None else stop
        be = self.backend
        overlap = be.popcount_rows(
            be.bxor(
                be.band(self.x_words[start:stop], z_row),
                be.band(self.z_words[start:stop], x_row),
            )
        )
        return (be.to_numpy(overlap) & 1).astype(bool)

    def row_key(self, index: int) -> tuple[bytes, bytes]:
        """Hashable symplectic key (phase excluded) for row ``index``."""
        be = self.backend
        return (be.tobytes(self.x_words[index]), be.tobytes(self.z_words[index]))

    def __repr__(self) -> str:
        return (
            f"PackedPauliTable(rows={self.num_rows}, num_qubits={self.num_qubits}, "
            f"words={self.x_words.shape[1]}, backend={self.backend.name!r})"
        )
