"""Bit-packed symplectic storage for batches of Pauli strings.

Every Pauli on ``n`` qubits is two bit-vectors ``x`` and ``z`` plus a phase
exponent.  This module packs those bit-vectors 64 qubits per ``uint64`` word,
so a whole observable (thousands of Pauli terms) lives in three contiguous
numpy arrays:

* ``x_words``, ``z_words`` — shape ``(rows, words)`` ``uint64`` matrices with
  qubit ``q`` stored in bit ``q & 63`` of word ``q >> 6`` (little-endian bit
  order, matching ``np.packbits(..., bitorder="little")``);
* ``phases`` — shape ``(rows,)`` ``int64`` exponents of ``i`` modulo 4.

Clifford conjugation then becomes a handful of whole-column bitwise
operations per gate — one numpy expression covering *all* rows at once —
instead of the legacy per-string, per-qubit Python loop.  The speedup is
measured (not asserted) by ``benchmarks/bench_throughput.py``.

The packed layout assumes a little-endian host (x86-64, aarch64); the
``uint8 -> uint64`` reinterpretation in :func:`pack_bits` would permute bits
within each word on a big-endian host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.exceptions import CliffordError, PauliError

if TYPE_CHECKING:
    from repro.circuits.gate import Gate
    from repro.paulis.pauli import PauliString

#: qubits stored per machine word
WORD_BITS = 64

_ONE = np.uint64(1)


def words_for_qubits(num_qubits: int) -> int:
    """Number of ``uint64`` words needed to hold ``num_qubits`` bits."""
    return (int(num_qubits) + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean array ``(..., n)`` into ``uint64`` words ``(..., W)``.

    Bit ``q`` of the input lands in bit ``q & 63`` of word ``q >> 6``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    num_qubits = bits.shape[-1]
    words = words_for_qubits(num_qubits)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    out = np.zeros(bits.shape[:-1] + (words * 8,), dtype=np.uint8)
    out[..., : packed.shape[-1]] = packed
    return out.view(np.uint64)


def unpack_bits(words: np.ndarray, num_qubits: int) -> np.ndarray:
    """Unpack ``uint64`` words ``(..., W)`` back into booleans ``(..., n)``."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, count=int(num_qubits), bitorder="little").astype(bool)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row population count of a ``(rows, W)`` word matrix."""
    return np.bitwise_count(words).sum(axis=-1).astype(np.int64)


def _bit_position(qubit: int) -> tuple[int, np.uint64, np.uint64]:
    """``(word index, bit shift, single-bit mask)`` for ``qubit``."""
    shift = np.uint64(qubit & (WORD_BITS - 1))
    return qubit >> 6, shift, _ONE << shift


# ---------------------------------------------------------------------- #
# Vectorized per-gate conjugation rules
#
# Each handler applies ``row -> g row g†`` to every row at once.  The rules
# mirror repro.clifford.conjugation (the legacy boolean-array path), which the
# equivalence tests hold as ground truth; phases accumulate un-reduced and are
# folded modulo 4 by the callers.
# ---------------------------------------------------------------------- #
def _col(words: np.ndarray, word: int, shift: np.uint64) -> np.ndarray:
    """The 0/1 value of one qubit column for every row, as ``int64``."""
    return ((words[:, word] >> shift) & _ONE).astype(np.int64)


def _h(xw, zw, phases, qubit):
    word, shift, mask = _bit_position(qubit)
    phases += 2 * (((xw[:, word] & zw[:, word]) >> shift) & _ONE).astype(np.int64)
    diff = (xw[:, word] ^ zw[:, word]) & mask
    xw[:, word] ^= diff
    zw[:, word] ^= diff


def _s(xw, zw, phases, qubit):
    word, shift, mask = _bit_position(qubit)
    phases += _col(xw, word, shift)
    zw[:, word] ^= xw[:, word] & mask


def _sdg(xw, zw, phases, qubit):
    word, shift, mask = _bit_position(qubit)
    phases += 3 * _col(xw, word, shift)
    zw[:, word] ^= xw[:, word] & mask


def _sx(xw, zw, phases, qubit):
    word, shift, mask = _bit_position(qubit)
    phases += 3 * _col(zw, word, shift)
    xw[:, word] ^= zw[:, word] & mask


def _sxdg(xw, zw, phases, qubit):
    word, shift, mask = _bit_position(qubit)
    phases += _col(zw, word, shift)
    xw[:, word] ^= zw[:, word] & mask


def _x(xw, zw, phases, qubit):
    word, shift, _ = _bit_position(qubit)
    phases += 2 * _col(zw, word, shift)


def _y(xw, zw, phases, qubit):
    word, shift, _ = _bit_position(qubit)
    phases += 2 * (((xw[:, word] ^ zw[:, word]) >> shift) & _ONE).astype(np.int64)


def _z(xw, zw, phases, qubit):
    word, shift, _ = _bit_position(qubit)
    phases += 2 * _col(xw, word, shift)


def _cx(xw, zw, phases, control, target):
    cword, cshift, _ = _bit_position(control)
    tword, tshift, _ = _bit_position(target)
    # In the explicit-phase convention CNOT conjugation is phase-free.
    xw[:, tword] ^= ((xw[:, cword] >> cshift) & _ONE) << tshift
    zw[:, cword] ^= ((zw[:, tword] >> tshift) & _ONE) << cshift


def _cz(xw, zw, phases, control, target):
    cword, cshift, _ = _bit_position(control)
    tword, tshift, _ = _bit_position(target)
    x_control = (xw[:, cword] >> cshift) & _ONE
    x_target = (xw[:, tword] >> tshift) & _ONE
    phases += 2 * (x_control & x_target).astype(np.int64)
    zw[:, cword] ^= x_target << cshift
    zw[:, tword] ^= x_control << tshift


def _swap(xw, zw, phases, qubit_a, qubit_b):
    aword, ashift, _ = _bit_position(qubit_a)
    bword, bshift, _ = _bit_position(qubit_b)
    for words in (xw, zw):
        diff = ((words[:, aword] >> ashift) ^ (words[:, bword] >> bshift)) & _ONE
        words[:, aword] ^= diff << ashift
        words[:, bword] ^= diff << bshift


def _identity(xw, zw, phases, qubit):
    return None


_SINGLE_QUBIT_HANDLERS = {
    "i": _identity,
    "h": _h,
    "s": _s,
    "sdg": _sdg,
    "sx": _sx,
    "sxdg": _sxdg,
    "x": _x,
    "y": _y,
    "z": _z,
}

_TWO_QUBIT_HANDLERS = {
    "cx": _cx,
    "cz": _cz,
    "swap": _swap,
}


def apply_gate_to_words(
    x_words: np.ndarray, z_words: np.ndarray, phases: np.ndarray, gate: "Gate"
) -> None:
    """Apply one Clifford gate in place to every packed row.

    Phases accumulate un-reduced (``int64`` has headroom for any realistic
    circuit); callers fold modulo 4 when they finish a batch of gates.
    """
    name = gate.name
    handler = _SINGLE_QUBIT_HANDLERS.get(name)
    if handler is not None:
        handler(x_words, z_words, phases, gate.qubits[0])
        return
    handler = _TWO_QUBIT_HANDLERS.get(name)
    if handler is not None:
        handler(x_words, z_words, phases, gate.qubits[0], gate.qubits[1])
        return
    raise CliffordError(f"gate {gate.name!r} is not a supported Clifford gate")


def apply_basis_layer_to_words(
    x_words: np.ndarray,
    z_words: np.ndarray,
    phases: np.ndarray,
    y_mask: np.ndarray,
    h_mask: np.ndarray,
) -> None:
    """Apply a whole single-qubit basis-change layer to every row at once.

    ``y_mask`` selects the qubits receiving ``sdg`` (the ``Y`` factors of the
    Pauli being synthesized) and ``h_mask`` the qubits receiving ``h`` (its
    ``X`` and ``Y`` factors), both as packed ``uint64`` qubit masks.  Gates on
    distinct qubits commute and their phase contributions add, so the two
    masked sweeps are bit-identical to streaming the per-qubit
    ``sdg``/``h`` gates of :func:`repro.synthesis.pauli_rotation.basis_change_gates`
    one at a time — at two numpy expressions per layer instead of one per gate.
    """
    if np.any(y_mask):
        phases += 3 * popcount_rows(x_words & y_mask)
        z_words ^= x_words & y_mask
    if np.any(h_mask):
        phases += 2 * popcount_rows(x_words & z_words & h_mask)
        diff = (x_words ^ z_words) & h_mask
        x_words ^= diff
        z_words ^= diff


def conjugate_row_through_generators(
    gen_x: np.ndarray,
    gen_z: np.ndarray,
    gen_phases: np.ndarray,
    num_qubits: int,
    x_words: np.ndarray,
    z_words: np.ndarray,
    phase: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Ordered product of generator images selected by one Pauli's bits.

    ``gen_x`` / ``gen_z`` / ``gen_phases`` hold the ``2n`` packed generator
    images (row ``2q`` = image of ``X_q``, row ``2q + 1`` = image of ``Z_q``);
    the Pauli is given by its packed words plus its phase.  This is the
    single-row conjugation kernel shared by
    :meth:`repro.clifford.tableau.CliffordTableau.conjugate` and
    :meth:`repro.clifford.engine.PackedConjugator.conjugate` — the X image is
    folded in before the Z image per qubit, with a factor ``(-1)`` whenever a
    ``Z`` of the accumulator crosses an ``X`` of the incoming image.
    """
    words = gen_x.shape[1]
    result_x = np.zeros(words, dtype=np.uint64)
    result_z = np.zeros(words, dtype=np.uint64)
    phase = int(phase)
    for qubit in range(num_qubits):
        word, bit = qubit >> 6, qubit & 63
        for offset, selector in ((0, x_words), (1, z_words)):
            if not (int(selector[word]) >> bit) & 1:
                continue
            row = 2 * qubit + offset
            row_x = gen_x[row]
            phase += int(gen_phases[row])
            phase += 2 * int(np.bitwise_count(result_z & row_x).sum())
            result_x ^= row_x
            result_z ^= gen_z[row]
    return result_x, result_z, phase % 4


class PackedPauliTable:
    """A batch of Pauli strings in bit-packed symplectic form.

    The canonical store behind :class:`~repro.paulis.pauli.PauliString` /
    :class:`~repro.paulis.sum.SparsePauliSum` batches and the operand of the
    vectorized conjugation engine (:mod:`repro.clifford.engine`).  The arrays
    are owned by the table and mutated in place by the ``apply_*`` methods.
    """

    __slots__ = ("num_qubits", "x_words", "z_words", "phases")

    def __init__(
        self,
        num_qubits: int,
        x_words: np.ndarray,
        z_words: np.ndarray,
        phases: np.ndarray,
    ):
        self.num_qubits = int(num_qubits)
        expected_words = words_for_qubits(self.num_qubits)
        if (
            x_words.ndim != 2
            or x_words.shape != z_words.shape
            or x_words.shape[1] != expected_words
            or phases.shape != (x_words.shape[0],)
        ):
            raise PauliError(
                f"inconsistent packed shapes: x{x_words.shape} z{z_words.shape} "
                f"phases{phases.shape} for {self.num_qubits} qubits"
            )
        self.x_words = np.ascontiguousarray(x_words, dtype=np.uint64)
        self.z_words = np.ascontiguousarray(z_words, dtype=np.uint64)
        self.phases = np.asarray(phases, dtype=np.int64) % 4

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, num_rows: int, num_qubits: int) -> "PackedPauliTable":
        """A table of ``num_rows`` identity Paulis."""
        words = words_for_qubits(num_qubits)
        return cls(
            num_qubits,
            np.zeros((num_rows, words), dtype=np.uint64),
            np.zeros((num_rows, words), dtype=np.uint64),
            np.zeros(num_rows, dtype=np.int64),
        )

    @classmethod
    def from_bool_arrays(
        cls, x: np.ndarray, z: np.ndarray, phases: Sequence[int] | np.ndarray
    ) -> "PackedPauliTable":
        """Pack ``(rows, n)`` boolean component matrices."""
        x = np.atleast_2d(np.asarray(x, dtype=bool))
        z = np.atleast_2d(np.asarray(z, dtype=bool))
        if x.shape != z.shape:
            raise PauliError("x and z must have identical shapes")
        return cls(x.shape[1], pack_bits(x), pack_bits(z), np.asarray(phases, dtype=np.int64))

    @classmethod
    def from_paulis(cls, paulis: Iterable["PauliString"]) -> "PackedPauliTable":
        """Pack an iterable of :class:`PauliString` (all on the same register)."""
        pauli_list = list(paulis)
        if not pauli_list:
            raise PauliError("cannot pack an empty collection of Paulis")
        num_qubits = pauli_list[0].num_qubits
        words = words_for_qubits(num_qubits)
        x_words = np.empty((len(pauli_list), words), dtype=np.uint64)
        z_words = np.empty((len(pauli_list), words), dtype=np.uint64)
        phases = np.empty(len(pauli_list), dtype=np.int64)
        for index, pauli in enumerate(pauli_list):
            if pauli.num_qubits != num_qubits:
                raise PauliError(
                    f"inconsistent qubit counts: {pauli.num_qubits} vs {num_qubits}"
                )
            x_words[index] = pauli.x_words
            z_words[index] = pauli.z_words
            phases[index] = pauli.phase
        return cls(num_qubits, x_words, z_words, phases)

    @classmethod
    def from_labels(cls, labels: Sequence[str]) -> "PackedPauliTable":
        """Pack textual labels (convenience for tests and benchmarks)."""
        from repro.paulis.pauli import PauliString

        return cls.from_paulis(PauliString.from_label(label) for label in labels)

    def copy(self) -> "PackedPauliTable":
        return PackedPauliTable(
            self.num_qubits, self.x_words.copy(), self.z_words.copy(), self.phases.copy()
        )

    # ------------------------------------------------------------------ #
    # Row access / unpacking
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(self.x_words.shape[0])

    def __len__(self) -> int:
        return self.num_rows

    def row(self, index: int) -> "PauliString":
        """Materialize row ``index`` as an independent :class:`PauliString`."""
        from repro.paulis.pauli import PauliString

        return PauliString.from_words(
            self.num_qubits,
            self.x_words[index].copy(),
            self.z_words[index].copy(),
            int(self.phases[index]),
        )

    def row_view(self, index: int) -> "PauliString":
        """Row ``index`` as a :class:`PauliString` sharing this table's words.

        No copy is made: the view is valid only until the table mutates
        (``apply_*`` / ``move_row``), and the caller must treat it as
        read-only.  Use :meth:`row` for an independent copy.
        """
        from repro.paulis.pauli import PauliString

        return PauliString.from_words(
            self.num_qubits,
            self.x_words[index],
            self.z_words[index],
            int(self.phases[index]) % 4,
        )

    def to_paulis(self) -> list["PauliString"]:
        return [self.row(index) for index in range(self.num_rows)]

    def to_bool_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unpack into ``(x, z, phases)`` boolean/int arrays."""
        return (
            unpack_bits(self.x_words, self.num_qubits),
            unpack_bits(self.z_words, self.num_qubits),
            self.phases.copy(),
        )

    def select(self, indices: np.ndarray | Sequence[int]) -> "PackedPauliTable":
        """A new table holding the requested rows (in the given order)."""
        indices = np.asarray(indices)
        return PackedPauliTable(
            self.num_qubits,
            self.x_words[indices].copy(),
            self.z_words[indices].copy(),
            self.phases[indices].copy(),
        )

    # ------------------------------------------------------------------ #
    # Vectorized conjugation (all rows at once, one gate at a time)
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: "Gate") -> None:
        """Apply ``row -> g row g†`` in place to every row."""
        self._check_gate_fits(gate)
        apply_gate_to_words(self.x_words, self.z_words, self.phases, gate)
        np.mod(self.phases, 4, out=self.phases)

    def apply_circuit(self, circuit) -> None:
        """Conjugate every row through ``circuit`` in time order."""
        if circuit.num_qubits != self.num_qubits:
            raise PauliError(
                f"circuit acts on {circuit.num_qubits} qubits, "
                f"table holds {self.num_qubits}-qubit Paulis"
            )
        xw, zw, phases = self.x_words, self.z_words, self.phases
        for gate in circuit:
            apply_gate_to_words(xw, zw, phases, gate)
        np.mod(phases, 4, out=phases)

    def _check_gate_fits(self, gate: "Gate") -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise PauliError(
                    f"gate {gate!r} addresses qubit {qubit} outside the "
                    f"{self.num_qubits}-qubit register"
                )

    # ------------------------------------------------------------------ #
    # In-place suffix application (the table-native extraction hot path)
    # ------------------------------------------------------------------ #
    def apply_gates(self, gates: Sequence["Gate"], start: int = 0, stop: int | None = None) -> None:
        """Stream ``gates`` in time order over rows ``[start, stop)`` in place.

        One whole-column bitwise expression per gate covering every selected
        row at once; phases are folded modulo 4 after the batch.
        """
        xw = self.x_words[start:stop]
        zw = self.z_words[start:stop]
        phases = self.phases[start:stop]
        for gate in gates:
            apply_gate_to_words(xw, zw, phases, gate)
        np.mod(phases, 4, out=phases)

    def apply_basis_layer(
        self, y_mask: np.ndarray, h_mask: np.ndarray, start: int = 0, stop: int | None = None
    ) -> None:
        """Apply a masked ``sdg``/``h`` basis-change layer to rows ``[start, stop)``."""
        phases = self.phases[start:stop]
        apply_basis_layer_to_words(
            self.x_words[start:stop], self.z_words[start:stop], phases, y_mask, h_mask
        )
        np.mod(phases, 4, out=phases)

    def move_row(self, src: int, dest: int) -> None:
        """Move row ``src`` to position ``dest``, shifting the rows between.

        The packed analogue of ``rows.insert(dest, rows.pop(src))`` for
        ``dest <= src`` — what the in-block greedy reordering of Algorithm 2
        performs on the remaining program.
        """
        if dest > src:
            raise PauliError(f"move_row only shifts rows earlier: src={src} dest={dest}")
        if dest == src:
            return
        window = slice(dest, src + 1)
        for array in (self.x_words, self.z_words, self.phases):
            array[window] = np.roll(array[window], 1, axis=0)

    # ------------------------------------------------------------------ #
    # Vectorized row metrics
    # ------------------------------------------------------------------ #
    def weights(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Per-row count of non-identity single-qubit factors in ``[start, stop)``."""
        return popcount_rows(self.x_words[start:stop] | self.z_words[start:stop])

    def argsort_weights(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Indices (relative to ``start``) ordering rows ``[start, stop)`` by weight.

        The sort is stable, so equal-weight rows keep their program order —
        the same deterministic-tie-break discipline the extraction cost
        model's branch-and-bound applies to its (masked) weight sort.
        """
        return np.argsort(self.weights(start, stop), kind="stable")

    def num_y(self) -> np.ndarray:
        """Per-row count of ``Y`` factors (``x & z`` bits)."""
        return popcount_rows(self.x_words & self.z_words)

    def hermitian_mask(self) -> np.ndarray:
        """Boolean mask of rows equal to a real-signed ``I/X/Y/Z`` string."""
        return ((self.phases - self.num_y()) % 2) == 0

    def signs(self) -> np.ndarray:
        """Per-row label-form sign exponents: ``i**sign_exponent``, modulo 4."""
        return (self.phases - self.num_y()) % 4

    def bare(self) -> "PackedPauliTable":
        """A copy with every row's phase reset so its label sign is ``+1``."""
        return PackedPauliTable(
            self.num_qubits, self.x_words.copy(), self.z_words.copy(), self.num_y() % 4
        )

    def anticommutation_with_row(
        self, x_row: np.ndarray, z_row: np.ndarray, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Boolean mask: which rows in ``[start, stop)`` anticommute with the
        Pauli given by packed words ``(x_row, z_row)``."""
        stop = self.num_rows if stop is None else stop
        overlap = popcount_rows(
            (self.x_words[start:stop] & z_row) ^ (self.z_words[start:stop] & x_row)
        )
        return (overlap & 1).astype(bool)

    def row_key(self, index: int) -> tuple[bytes, bytes]:
        """Hashable symplectic key (phase excluded) for row ``index``."""
        return (self.x_words[index].tobytes(), self.z_words[index].tobytes())

    def __repr__(self) -> str:
        return (
            f"PackedPauliTable(rows={self.num_rows}, num_qubits={self.num_qubits}, "
            f"words={self.x_words.shape[1]})"
        )
