"""Pauli-string algebra.

This sub-package provides the symplectic (x/z bit-vector) representation of
Pauli strings used throughout the reproduction, together with weighted sums of
Pauli strings (observables / Hamiltonians).  The bits are stored 64 qubits
per ``uint64`` word (:mod:`repro.paulis.packed`); :class:`PauliString` and
:class:`SparsePauliSum` are thin views over that packed store, and
:class:`PackedPauliTable` exposes whole batches of Pauli strings to the
vectorized Clifford conjugation engine.

The string-label convention follows Qiskit: the *leftmost* character of a
label acts on the *highest-index* qubit, so ``"XYZ"`` means ``X`` on qubit 2,
``Y`` on qubit 1 and ``Z`` on qubit 0.  The paper (and its reference
implementation) uses the same convention, which is why the worked example of
Fig. 7 reads naturally with this ordering.
"""

from repro.paulis.packed import PackedPauliTable, pack_bits, unpack_bits
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.paulis.sum import SparsePauliSum

__all__ = [
    "PackedPauliTable",
    "pack_bits",
    "unpack_bits",
    "PauliString",
    "PauliTerm",
    "SparsePauliSum",
]
