"""Pauli-string algebra.

This sub-package provides the symplectic (x/z bit-vector) representation of
Pauli strings used throughout the reproduction, together with weighted sums of
Pauli strings (observables / Hamiltonians).

The string-label convention follows Qiskit: the *leftmost* character of a
label acts on the *highest-index* qubit, so ``"XYZ"`` means ``X`` on qubit 2,
``Y`` on qubit 1 and ``Z`` on qubit 0.  The paper (and its reference
implementation) uses the same convention, which is why the worked example of
Fig. 7 reads naturally with this ordering.
"""

from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.paulis.sum import SparsePauliSum

__all__ = ["PauliString", "PauliTerm", "SparsePauliSum"]
