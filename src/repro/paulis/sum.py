"""Weighted sums of Pauli strings (Hamiltonians and observables)."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import PauliError
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm


class SparsePauliSum:
    """A real-weighted sum of Pauli strings.

    This is the observable / Hamiltonian container used by the workload
    generators and by the Clifford-absorption module.  Coefficients are kept
    real because every Hamiltonian and observable in the paper's benchmarks is
    Hermitian with real weights.
    """

    def __init__(self, terms: Iterable[PauliTerm]):
        self._terms: list[PauliTerm] = [t.canonicalized() for t in terms]
        if not self._terms:
            raise PauliError("a SparsePauliSum needs at least one term")
        sizes = {t.num_qubits for t in self._terms}
        if len(sizes) != 1:
            raise PauliError(f"inconsistent qubit counts in terms: {sorted(sizes)}")
        self._num_qubits = sizes.pop()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labels(
        cls, labels: Sequence[str], coefficients: Sequence[float] | None = None
    ) -> "SparsePauliSum":
        if coefficients is None:
            coefficients = [1.0] * len(labels)
        if len(coefficients) != len(labels):
            raise PauliError("labels and coefficients must have equal length")
        return cls(
            PauliTerm(PauliString.from_label(label), float(coeff))
            for label, coeff in zip(labels, coefficients)
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def terms(self) -> list[PauliTerm]:
        return list(self._terms)

    @property
    def paulis(self) -> list[PauliString]:
        return [t.pauli for t in self._terms]

    @property
    def coefficients(self) -> list[float]:
        return [t.coefficient for t in self._terms]

    def labels(self, include_sign: bool = False) -> list[str]:
        return [t.pauli.to_label(include_sign=include_sign) for t in self._terms]

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[PauliTerm]:
        return iter(self._terms)

    def __getitem__(self, index: int) -> PauliTerm:
        return self._terms[index]

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{t.coefficient:+g}*{t.pauli.to_label(include_sign=False)}"
            for t in self._terms[:4]
        )
        suffix = ", ..." if len(self._terms) > 4 else ""
        return f"SparsePauliSum({len(self)} terms: {preview}{suffix})"

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def simplified(self, tolerance: float = 1e-12) -> "SparsePauliSum":
        """Combine duplicate Pauli strings and drop negligible terms."""
        accumulator: dict[tuple[bytes, bytes], float] = {}
        order: list[tuple[bytes, bytes]] = []
        templates: dict[tuple[bytes, bytes], PauliString] = {}
        for term in self._terms:
            key = (term.pauli.x.tobytes(), term.pauli.z.tobytes())
            if key not in accumulator:
                accumulator[key] = 0.0
                order.append(key)
                templates[key] = term.pauli.bare()
            accumulator[key] += term.coefficient * float(np.real(term.pauli.sign))
        kept = [
            PauliTerm(templates[key], accumulator[key])
            for key in order
            if abs(accumulator[key]) > tolerance
        ]
        if not kept:
            kept = [PauliTerm(PauliString.identity(self._num_qubits), 0.0)]
        return SparsePauliSum(kept)

    def scaled(self, factor: float) -> "SparsePauliSum":
        return SparsePauliSum(
            PauliTerm(t.pauli.copy(), t.coefficient * factor) for t in self._terms
        )

    def __add__(self, other: "SparsePauliSum") -> "SparsePauliSum":
        if self.num_qubits != other.num_qubits:
            raise PauliError("cannot add sums with different qubit counts")
        return SparsePauliSum(self.terms + other.terms)

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (small qubit counts only)."""
        dimension = 2**self._num_qubits
        matrix = np.zeros((dimension, dimension), dtype=complex)
        for term in self._terms:
            matrix += term.coefficient * term.pauli.to_matrix()
        return matrix
