"""Weighted sums of Pauli strings (Hamiltonians and observables).

A :class:`SparsePauliSum` is a thin view over a bit-packed
:class:`~repro.paulis.packed.PackedPauliTable` plus a coefficient vector: the
packed table is the canonical store (what the vectorized conjugation engine
operates on), and :class:`~repro.paulis.term.PauliTerm` objects are
materialized lazily when term-level access is requested.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import PauliError
from repro.paulis.packed import PackedPauliTable
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm


class SparsePauliSum:
    """A real-weighted sum of Pauli strings.

    This is the observable / Hamiltonian container used by the workload
    generators and by the Clifford-absorption module.  Coefficients are kept
    real because every Hamiltonian and observable in the paper's benchmarks is
    Hermitian with real weights.
    """

    def __init__(self, terms: Iterable[PauliTerm]):
        term_list = [t.canonicalized() for t in terms]
        if not term_list:
            raise PauliError("a SparsePauliSum needs at least one term")
        sizes = {t.num_qubits for t in term_list}
        if len(sizes) != 1:
            raise PauliError(f"inconsistent qubit counts in terms: {sorted(sizes)}")
        self._num_qubits = sizes.pop()
        self._table = PackedPauliTable.from_paulis(t.pauli for t in term_list)
        self._coefficients = np.array([t.coefficient for t in term_list], dtype=float)
        self._terms_cache: list[PauliTerm] | None = term_list

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labels(
        cls, labels: Sequence[str], coefficients: Sequence[float] | None = None
    ) -> "SparsePauliSum":
        if coefficients is None:
            coefficients = [1.0] * len(labels)
        if len(coefficients) != len(labels):
            raise PauliError("labels and coefficients must have equal length")
        return cls(
            PauliTerm(PauliString.from_label(label), float(coeff))
            for label, coeff in zip(labels, coefficients)
        )

    @classmethod
    def from_dictionary(
        cls, dictionary: "dict[str, float | complex]"
    ) -> "SparsePauliSum":
        """Build a sum from a ``{pauli_label: coefficient}`` mapping.

        The dict form is the interchange format used by symmer and by most
        Hamiltonian file dumps: keys are Qiskit-convention Pauli labels
        (optionally carrying a leading ``+``/``-`` sign, which folds into the
        coefficient), values are the weights.  Coefficients may arrive as
        Python complex (symmer emits ``(0.5+0j)``); a non-negligible
        imaginary part is rejected since this container is real-weighted by
        construction.  Iteration order of the dict is preserved, so
        :meth:`to_dictionary` round-trips exactly.
        """
        if not isinstance(dictionary, dict):
            raise PauliError(
                f"from_dictionary needs a dict of label -> coefficient, got "
                f"{type(dictionary).__name__}"
            )
        if not dictionary:
            raise PauliError("a SparsePauliSum needs at least one term")
        terms = []
        for label, coefficient in dictionary.items():
            if not isinstance(label, str):
                raise PauliError(
                    f"Pauli labels must be strings, got {type(label).__name__}"
                )
            value = complex(coefficient)
            if abs(value.imag) > 1e-12:
                raise PauliError(
                    f"coefficient of {label!r} has a non-real value "
                    f"{coefficient!r}; this container holds real-weighted "
                    "(Hermitian) sums only"
                )
            terms.append(PauliTerm(PauliString.from_label(label), value.real))
        return cls(terms)

    def to_dictionary(self) -> dict[str, float]:
        """The sum as a ``{pauli_label: coefficient}`` dict (symmer-style).

        Signs live in the coefficients (labels are emitted unsigned), and
        duplicate Pauli strings are combined on the way out — the dict form
        cannot represent repeats, so emitting them would silently drop
        weight.  ``from_dictionary(s.to_dictionary())`` reproduces the
        combined sum exactly.
        """
        result: dict[str, float] = {}
        for term in self._materialized():
            label = term.pauli.to_label(include_sign=False)
            result[label] = result.get(label, 0.0) + float(term.coefficient)
        return result

    @classmethod
    def from_packed(
        cls, table: PackedPauliTable, coefficients: Sequence[float] | np.ndarray
    ) -> "SparsePauliSum":
        """Wrap a packed table directly; terms materialize only on access.

        Rows whose label sign is not ``+1`` have the sign folded into the
        coefficient (the same canonical form the term constructor enforces);
        non-Hermitian rows are rejected.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        if len(table) == 0 or coefficients.shape != (len(table),):
            raise PauliError(
                f"need one coefficient per table row: {len(table)} rows, "
                f"{coefficients.shape} coefficients"
            )
        if not table.hermitian_mask().all():
            raise PauliError("cannot build a real-weighted sum from non-Hermitian rows")
        self = cls.__new__(cls)
        self._num_qubits = table.num_qubits
        sign_exponents = table.signs()  # 0 or 2 for Hermitian rows
        if np.any(sign_exponents):
            self._table = table.bare()
            self._coefficients = coefficients * np.where(sign_exponents == 0, 1.0, -1.0)
        else:
            # already bare: adopt the table as-is (callers hand over ownership)
            self._table = table
            self._coefficients = coefficients.copy()
        self._terms_cache = None
        return self

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def _materialized(self) -> list[PauliTerm]:
        if self._terms_cache is None:
            self._terms_cache = [
                PauliTerm(self._table.row(index), float(self._coefficients[index]))
                for index in range(len(self._table))
            ]
        return self._terms_cache

    @property
    def terms(self) -> list[PauliTerm]:
        return list(self._materialized())

    @property
    def paulis(self) -> list[PauliString]:
        return [t.pauli for t in self._materialized()]

    @property
    def coefficients(self) -> list[float]:
        return [float(c) for c in self._coefficients]

    @property
    def packed_table(self) -> PackedPauliTable:
        """The canonical bit-packed store (do not mutate).

        Table-native passes — commuting-block grouping and Clifford
        extraction — consume this directly: handing a whole sum to
        :func:`repro.compile` skips every per-term packing step.
        """
        return self._table

    def coefficient_vector(self) -> np.ndarray:
        """The coefficients as a float array (copy)."""
        return self._coefficients.copy()

    def weights(self) -> np.ndarray:
        """Per-term Pauli weights, computed on the packed words."""
        return self._table.weights()

    def argsort_by_weight(self) -> np.ndarray:
        """Term indices ordered by ascending Pauli weight (stable)."""
        return self._table.argsort_weights()

    def labels(self, include_sign: bool = False) -> list[str]:
        return [t.pauli.to_label(include_sign=include_sign) for t in self._materialized()]

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[PauliTerm]:
        return iter(self._materialized())

    def __getitem__(self, index: int) -> PauliTerm:
        return self._materialized()[index]

    def __repr__(self) -> str:
        materialized = self._materialized()
        preview = ", ".join(
            f"{t.coefficient:+g}*{t.pauli.to_label(include_sign=False)}"
            for t in materialized[:4]
        )
        suffix = ", ..." if len(materialized) > 4 else ""
        return f"SparsePauliSum({len(self)} terms: {preview}{suffix})"

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def simplified(self, tolerance: float = 1e-12) -> "SparsePauliSum":
        """Combine duplicate Pauli strings and drop negligible terms."""
        accumulator: dict[tuple[bytes, bytes], float] = {}
        order: list[tuple[bytes, bytes]] = []
        representative: dict[tuple[bytes, bytes], int] = {}
        signs = np.where(self._table.signs() == 0, 1.0, -1.0)
        for index in range(len(self._table)):
            key = self._table.row_key(index)
            if key not in accumulator:
                accumulator[key] = 0.0
                order.append(key)
                representative[key] = index
            accumulator[key] += float(self._coefficients[index]) * float(signs[index])
        kept_rows = [
            representative[key] for key in order if abs(accumulator[key]) > tolerance
        ]
        if not kept_rows:
            return SparsePauliSum(
                [PauliTerm(PauliString.identity(self._num_qubits), 0.0)]
            )
        # rows of the canonical store are always bare, so select() suffices
        table = self._table.select(kept_rows)
        coefficients = [accumulator[self._table.row_key(row)] for row in kept_rows]
        return SparsePauliSum.from_packed(table, coefficients)

    def scaled(self, factor: float) -> "SparsePauliSum":
        # from_packed adopts the table, so hand it an independent copy
        return SparsePauliSum.from_packed(self._table.copy(), self._coefficients * factor)

    def __add__(self, other: "SparsePauliSum") -> "SparsePauliSum":
        if self.num_qubits != other.num_qubits:
            raise PauliError("cannot add sums with different qubit counts")
        return SparsePauliSum(self.terms + other.terms)

    def conjugated_by(self, conjugator) -> "SparsePauliSum":
        """The sum ``U H U†`` in one vectorized sweep.

        ``conjugator`` is anything exposing ``conjugate_table`` — a
        :class:`~repro.clifford.tableau.CliffordTableau` or a frozen
        :class:`~repro.clifford.engine.PackedConjugator`.  Clifford
        conjugation maps Hermitian strings to (possibly sign-flipped)
        Hermitian strings; the signs fold into the coefficients.
        """
        conjugated = conjugator.conjugate_table(self._table)
        return SparsePauliSum.from_packed(conjugated, self._coefficients.copy())

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (small qubit counts only)."""
        dimension = 2**self._num_qubits
        matrix = np.zeros((dimension, dimension), dtype=complex)
        for term in self._materialized():
            matrix += term.coefficient * term.pauli.to_matrix()
        return matrix
