"""GF(2) linear algebra and CNOT-network synthesis.

The Clifford Absorption post-processing step for probability workloads
(QAOA) reduces the extracted Clifford tail to a Hadamard layer followed by a
CNOT network.  A CNOT network acts on computational basis states as an
invertible linear map over GF(2); this sub-package provides the matrix
algebra needed to build, invert and re-synthesize such maps.
"""

from repro.linear.gf2 import (
    gf2_gauss_elim,
    gf2_inverse,
    gf2_is_invertible,
    gf2_matvec,
    gf2_rank,
    gf2_solve,
)
from repro.linear.cnot_synthesis import (
    cnot_network_matrix,
    synthesize_cnot_network,
    synthesize_cnot_network_pmh,
)

__all__ = [
    "gf2_gauss_elim",
    "gf2_inverse",
    "gf2_is_invertible",
    "gf2_matvec",
    "gf2_rank",
    "gf2_solve",
    "cnot_network_matrix",
    "synthesize_cnot_network",
    "synthesize_cnot_network_pmh",
]
