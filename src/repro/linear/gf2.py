"""Dense GF(2) matrix routines built on boolean numpy arrays."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SynthesisError


def _as_bool_matrix(matrix: np.ndarray) -> np.ndarray:
    result = np.array(matrix, dtype=bool, copy=True)
    if result.ndim != 2:
        raise SynthesisError("expected a 2-D matrix")
    return result


def gf2_matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2)."""
    matrix = np.asarray(matrix, dtype=bool)
    vector = np.asarray(vector, dtype=bool)
    return (matrix @ vector.astype(np.int64)) % 2 == 1


def gf2_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Matrix-matrix product over GF(2)."""
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    return (left @ right) % 2 == 1


def gf2_gauss_elim(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-reduce ``matrix`` over GF(2).

    Returns the reduced matrix and the list of pivot column indices.
    """
    work = _as_bool_matrix(matrix)
    rows, cols = work.shape
    pivot_columns: list[int] = []
    pivot_row = 0
    for column in range(cols):
        if pivot_row >= rows:
            break
        candidates = np.nonzero(work[pivot_row:, column])[0]
        if candidates.size == 0:
            continue
        chosen = pivot_row + int(candidates[0])
        if chosen != pivot_row:
            work[[pivot_row, chosen]] = work[[chosen, pivot_row]]
        eliminate = work[:, column].copy()
        eliminate[pivot_row] = False
        work[eliminate] ^= work[pivot_row]
        pivot_columns.append(column)
        pivot_row += 1
    return work, pivot_columns


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, pivots = gf2_gauss_elim(matrix)
    return len(pivots)


def gf2_is_invertible(matrix: np.ndarray) -> bool:
    """True when ``matrix`` is square and full rank over GF(2)."""
    matrix = np.asarray(matrix, dtype=bool)
    return matrix.shape[0] == matrix.shape[1] and gf2_rank(matrix) == matrix.shape[0]


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square invertible matrix over GF(2)."""
    work = _as_bool_matrix(matrix)
    size = work.shape[0]
    if work.shape[1] != size:
        raise SynthesisError("only square matrices can be inverted")
    augmented = np.concatenate([work, np.eye(size, dtype=bool)], axis=1)
    reduced, pivots = gf2_gauss_elim(augmented)
    if pivots[: size] != list(range(size)):
        raise SynthesisError("matrix is singular over GF(2)")
    return reduced[:, size:]


def gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2) (least structured solution).

    Raises :class:`SynthesisError` when no solution exists.  When the system
    is under-determined, free variables are set to zero.
    """
    work = _as_bool_matrix(matrix)
    rhs = np.asarray(rhs, dtype=bool).reshape(-1)
    rows, cols = work.shape
    if rhs.shape[0] != rows:
        raise SynthesisError("right-hand side length does not match the matrix")
    augmented = np.concatenate([work, rhs.reshape(-1, 1)], axis=1)
    reduced, pivots = gf2_gauss_elim(augmented)
    if cols in pivots:
        raise SynthesisError("inconsistent GF(2) linear system")
    solution = np.zeros(cols, dtype=bool)
    for pivot_row, pivot_col in enumerate(pivots):
        solution[pivot_col] = reduced[pivot_row, cols]
    return solution
