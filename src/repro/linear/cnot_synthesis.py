"""Synthesis of CNOT networks from GF(2) linear maps.

A CNOT network on ``n`` qubits implements an invertible linear map ``A`` over
GF(2): it sends the basis state ``|x>`` to ``|A x>``.  A single ``CX(c, t)``
gate corresponds to the elementary row operation ``row_t += row_c``.

Two synthesis strategies are provided:

* plain Gaussian elimination (at most ``n**2`` CNOTs), and
* the Patel–Markov–Hayes (PMH) block algorithm, asymptotically
  ``O(n**2 / log n)`` CNOTs, used when re-synthesizing large networks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SynthesisError
from repro.linear.gf2 import gf2_is_invertible


def cnot_network_matrix(circuit: QuantumCircuit) -> np.ndarray:
    """The GF(2) linear map implemented by a circuit of CX / SWAP gates.

    Returns the matrix ``A`` with ``|x> -> |A x>``.  Raises if the circuit
    contains gates that do not act linearly on basis states.
    """
    size = circuit.num_qubits
    matrix = np.eye(size, dtype=bool)
    for gate in circuit:
        if gate.name == "cx":
            control, target = gate.qubits
            matrix[target] ^= matrix[control]
        elif gate.name == "swap":
            first, second = gate.qubits
            matrix[[first, second]] = matrix[[second, first]]
        elif gate.name in ("i", "z", "s", "sdg", "rz", "cz", "rzz"):
            # Diagonal gates only add phases; basis states map to themselves.
            continue
        else:
            raise SynthesisError(
                f"gate {gate.name!r} does not act linearly on computational basis states"
            )
    return matrix


def _apply_row_op(matrix: np.ndarray, control: int, target: int) -> None:
    matrix[target] ^= matrix[control]


def synthesize_cnot_network(matrix: np.ndarray) -> QuantumCircuit:
    """Synthesize a CNOT circuit implementing ``|x> -> |A x>`` by Gaussian elimination."""
    matrix = np.array(matrix, dtype=bool, copy=True)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise SynthesisError("the linear map must be a square matrix")
    if not gf2_is_invertible(matrix):
        raise SynthesisError("the linear map is not invertible over GF(2)")
    operations: list[tuple[int, int]] = []

    def record(control: int, target: int) -> None:
        _apply_row_op(matrix, control, target)
        operations.append((control, target))

    # Forward elimination to upper triangular form.
    for column in range(size):
        if not matrix[column, column]:
            below = np.nonzero(matrix[column + 1 :, column])[0]
            if below.size == 0:
                raise SynthesisError("unexpected singular column during synthesis")
            record(column + 1 + int(below[0]), column)
        for row in range(column + 1, size):
            if matrix[row, column]:
                record(column, row)
    # Back substitution to the identity.
    for column in range(size - 1, -1, -1):
        for row in range(column - 1, -1, -1):
            if matrix[row, column]:
                record(column, row)

    # The recorded row operations reduce A to the identity:
    #   E_k ... E_1 A = I, hence A = E_1^{-1} ... E_k^{-1}.
    # A row operation "row_t += row_c" is the matrix of CX(c, t) acting on
    # state vectors and is its own inverse, so the circuit is the recorded
    # operations in reverse order.
    circuit = QuantumCircuit(size)
    for control, target in reversed(operations):
        circuit.cx(control, target)
    return circuit


def synthesize_cnot_network_pmh(matrix: np.ndarray, section_size: int | None = None) -> QuantumCircuit:
    """Patel–Markov–Hayes synthesis of a CNOT network.

    Splits the columns into sections of width roughly ``log2(n)`` and removes
    duplicate sub-rows within each section before the usual elimination,
    reducing the CNOT count for large ``n``.
    """
    matrix = np.array(matrix, dtype=bool, copy=True)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise SynthesisError("the linear map must be a square matrix")
    if not gf2_is_invertible(matrix):
        raise SynthesisError("the linear map is not invertible over GF(2)")
    if section_size is None:
        section_size = max(1, int(round(math.log2(size))) if size > 1 else 1)

    def lower_synth(mat: np.ndarray) -> list[tuple[int, int]]:
        ops: list[tuple[int, int]] = []
        n = mat.shape[0]
        for section_start in range(0, n, section_size):
            section_end = min(section_start + section_size, n)
            # Eliminate duplicate patterns in the section below the diagonal.
            patterns: dict[bytes, int] = {}
            for row in range(section_start, n):
                chunk = mat[row, section_start:section_end].tobytes()
                if not any(mat[row, section_start:section_end]):
                    continue
                if chunk in patterns and patterns[chunk] != row:
                    source = patterns[chunk]
                    mat[row] ^= mat[source]
                    ops.append((source, row))
                else:
                    patterns[chunk] = row
            # Standard Gaussian elimination inside the section.
            for column in range(section_start, section_end):
                if not mat[column, column]:
                    below = np.nonzero(mat[column + 1 :, column])[0]
                    if below.size == 0:
                        continue
                    pivot = column + 1 + int(below[0])
                    mat[column] ^= mat[pivot]
                    ops.append((pivot, column))
                for row in range(column + 1, n):
                    if mat[row, column]:
                        mat[row] ^= mat[column]
                        ops.append((column, row))
        return ops

    # Eliminate the lower triangle of A, then the lower triangle of the
    # transpose of the remaining upper factor (the standard PMH trick).
    #
    # With lower_ops = [l1, ..., lp] we have  E_lp ... E_l1 A = U  and with
    # upper_ops = [u1, ..., uq] on U^T we have  U = F_uq ... F_u1  where
    # F swaps control and target.  Hence
    #   A = E_l1 ... E_lp F_uq ... F_u1
    # and the circuit in time order is  [F_u1 ... F_uq, E_lp ... E_l1].
    lower_ops = lower_synth(matrix)
    upper_ops = lower_synth(matrix.T.copy())

    circuit = QuantumCircuit(size)
    for control, target in upper_ops:
        circuit.cx(target, control)
    for control, target in reversed(lower_ops):
        circuit.cx(control, target)
    return circuit
