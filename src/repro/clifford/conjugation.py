"""Gate-wise conjugation of Pauli operators by Clifford gates.

All functions implement the map ``P -> g P g†`` in the phase convention of
:class:`repro.paulis.PauliString` (an explicit factor of ``i`` per ``Y``).  The
array-level functions operate in place on batches of rows so the same code
serves both single Pauli strings and whole Clifford tableaux.

This module is the *reference* (per-qubit boolean) implementation: it defines
the phase conventions that the bit-packed vectorized engine
(:mod:`repro.paulis.packed`, :mod:`repro.clifford.engine`) must reproduce
bit-for-bit, and it doubles as the "legacy loop" baseline that
``benchmarks/bench_throughput.py`` measures the packed engine against.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gate import Gate
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CliffordError, PauliError
from repro.paulis.pauli import PauliString


def _apply_h(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 2 * (x[:, qubit] & z[:, qubit])
    x[:, qubit], z[:, qubit] = z[:, qubit].copy(), x[:, qubit].copy()


def _apply_s(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += x[:, qubit]
    z[:, qubit] ^= x[:, qubit]


def _apply_sdg(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 3 * x[:, qubit]
    z[:, qubit] ^= x[:, qubit]


def _apply_sx(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 3 * z[:, qubit]
    x[:, qubit] ^= z[:, qubit]


def _apply_sxdg(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += z[:, qubit]
    x[:, qubit] ^= z[:, qubit]


def _apply_x(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 2 * z[:, qubit]


def _apply_y(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 2 * (x[:, qubit] ^ z[:, qubit])


def _apply_z(x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit: int) -> None:
    phase += 2 * x[:, qubit]


def _apply_cx(
    x: np.ndarray, z: np.ndarray, phase: np.ndarray, control: int, target: int
) -> None:
    # In the explicit-phase convention (Y carries a factor i) the CNOT
    # conjugation introduces no additional phase.
    x[:, target] ^= x[:, control]
    z[:, control] ^= z[:, target]


def _apply_cz(
    x: np.ndarray, z: np.ndarray, phase: np.ndarray, control: int, target: int
) -> None:
    phase += 2 * (x[:, control] & x[:, target])
    z[:, control] ^= x[:, target]
    z[:, target] ^= x[:, control]


def _apply_swap(
    x: np.ndarray, z: np.ndarray, phase: np.ndarray, qubit_a: int, qubit_b: int
) -> None:
    x[:, [qubit_a, qubit_b]] = x[:, [qubit_b, qubit_a]]
    z[:, [qubit_a, qubit_b]] = z[:, [qubit_b, qubit_a]]


_SINGLE_QUBIT_RULES = {
    "i": lambda x, z, phase, qubit: None,
    "h": _apply_h,
    "s": _apply_s,
    "sdg": _apply_sdg,
    "sx": _apply_sx,
    "sxdg": _apply_sxdg,
    "x": _apply_x,
    "y": _apply_y,
    "z": _apply_z,
}

_TWO_QUBIT_RULES = {
    "cx": _apply_cx,
    "cz": _apply_cz,
    "swap": _apply_swap,
}


def apply_gate_to_rows(
    x: np.ndarray, z: np.ndarray, phase: np.ndarray, gate: Gate
) -> None:
    """Apply ``row -> g row g†`` in place to every row of ``(x, z, phase)``.

    ``x`` and ``z`` are boolean arrays of shape ``(rows, num_qubits)``;
    ``phase`` is an integer array of length ``rows`` holding exponents of
    ``i``.  Phases are reduced modulo 4 by the caller-facing wrappers.
    """
    name = gate.name
    if name in _SINGLE_QUBIT_RULES:
        _SINGLE_QUBIT_RULES[name](x, z, phase, gate.qubits[0])
    elif name in _TWO_QUBIT_RULES:
        _TWO_QUBIT_RULES[name](x, z, phase, gate.qubits[0], gate.qubits[1])
    else:
        raise CliffordError(f"gate {gate.name!r} is not a supported Clifford gate")
    phase %= 4


def conjugate_pauli_by_gate(pauli: PauliString, gate: Gate) -> PauliString:
    """Return ``g P g†`` for a single Clifford gate ``g``."""
    for qubit in gate.qubits:
        if not 0 <= qubit < pauli.num_qubits:
            raise PauliError(
                f"gate {gate!r} addresses qubit {qubit} outside the Pauli's "
                f"{pauli.num_qubits}-qubit register"
            )
    x = pauli.x.reshape(1, -1).copy()
    z = pauli.z.reshape(1, -1).copy()
    phase = np.array([pauli.phase], dtype=np.int64)
    apply_gate_to_rows(x, z, phase, gate)
    return PauliString(x[0], z[0], int(phase[0]))


def conjugate_pauli_by_circuit(pauli: PauliString, circuit: QuantumCircuit) -> PauliString:
    """Return ``U P U†`` where ``U`` is the unitary of ``circuit``.

    The gates are applied in circuit (time) order, which corresponds to the
    Heisenberg-picture evolution ``P -> g_k ... g_1 P g_1† ... g_k†``.
    """
    if circuit.num_qubits != pauli.num_qubits:
        raise PauliError(
            f"circuit acts on {circuit.num_qubits} qubits but the Pauli has "
            f"{pauli.num_qubits}; conjugation would silently mis-index"
        )
    x = pauli.x.reshape(1, -1).copy()
    z = pauli.z.reshape(1, -1).copy()
    phase = np.array([pauli.phase], dtype=np.int64)
    for gate in circuit:
        apply_gate_to_rows(x, z, phase, gate)
    return PauliString(x[0], z[0], int(phase[0]))
