"""Vectorized Clifford conjugation over bit-packed Pauli batches.

Two batch strategies are provided on top of
:class:`~repro.paulis.packed.PackedPauliTable`:

* **gate streaming** — :func:`conjugate_table_by_circuit` replays a Clifford
  circuit gate by gate, each gate touching every row of the packed table at
  once (one numpy bitwise expression per gate instead of a Python loop per
  Pauli);
* **tableau application** — :class:`PackedConjugator` freezes a
  :class:`~repro.clifford.tableau.CliffordTableau` into packed generator
  images and applies the *composed* map to a whole table in one sweep over
  the ``2n`` generators, independent of the circuit's gate count.

:class:`ConjugationCache` memoizes frozen conjugators by tableau content so
batch compilation (:func:`repro.compile_many`) shares them across programs
and worker threads.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.arrays import ArrayBackend, resolve_backend
from repro.exceptions import CliffordError
from repro.paulis.packed import (
    PackedPauliTable,
    conjugate_row_through_generators,
    words_for_qubits,
)
from repro.paulis.pauli import PauliString

if TYPE_CHECKING:
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.gate import Gate
    from repro.clifford.tableau import CliffordTableau


def conjugate_table_by_circuit(
    table: PackedPauliTable, circuit: "QuantumCircuit", copy: bool = True
) -> PackedPauliTable:
    """Conjugate every row of ``table`` through ``circuit`` (time order).

    With ``copy=False`` the table is mutated in place and returned.
    """
    result = table.copy() if copy else table
    result.apply_circuit(circuit)
    return result


def stream_gates_over_suffix(
    table: PackedPauliTable,
    gates: Sequence["Gate"],
    start: int = 0,
    stop: int | None = None,
) -> None:
    """Conjugate rows ``[start, stop)`` of ``table`` through ``gates`` in place.

    The engine-facing name for the table-native extraction hot path: every
    basis-change / CNOT-tree gate a term emits is pushed across the whole
    remaining program (and the tableau generator rows riding at the end of
    the table) at once, instead of re-conjugating each later Pauli object
    individually.  This is a thin alias — the semantics (one whole-column
    bitwise expression per gate, phases folded modulo 4 after the batch) are
    defined by :meth:`~repro.paulis.packed.PackedPauliTable.apply_gates`.
    """
    table.apply_gates(gates, start=start, stop=stop)


def conjugate_paulis_by_circuit(
    paulis: Iterable[PauliString], circuit: "QuantumCircuit"
) -> list[PauliString]:
    """Batch counterpart of :func:`repro.clifford.conjugate_pauli_by_circuit`."""
    table = PackedPauliTable.from_paulis(paulis)
    table.apply_circuit(circuit)
    return table.to_paulis()


class PackedConjugator:
    """A Clifford conjugation map frozen into packed generator images.

    Row ``2q`` holds the image ``U X_q U†`` and row ``2q + 1`` the image
    ``U Z_q U†``.  Conjugating an arbitrary Pauli is then the ordered product
    of the generator images selected by its (x, z) bits; the whole-table
    variant performs that product for every input row simultaneously.
    """

    __slots__ = ("num_qubits", "backend", "_gen_x", "_gen_z", "_gen_phase")

    def __init__(
        self,
        num_qubits: int,
        gen_x: np.ndarray,
        gen_z: np.ndarray,
        gen_phase: np.ndarray,
        backend: "str | ArrayBackend | None" = None,
    ):
        self.num_qubits = int(num_qubits)
        self.backend = resolve_backend(backend)
        rows = 2 * self.num_qubits
        words = words_for_qubits(self.num_qubits)
        if gen_x.shape != (rows, words) or gen_z.shape != (rows, words):
            raise CliffordError(
                f"conjugator needs {rows}x{words} generator words, "
                f"got x{gen_x.shape} z{gen_z.shape}"
            )
        be = self.backend
        self._gen_x = be.asarray_words(gen_x)
        self._gen_z = be.asarray_words(gen_z)
        # Phases are consumed scalar-wise (one generator at a time) and by
        # the host single-row kernel, so they stay host-side.
        self._gen_phase = np.asarray(gen_phase, dtype=np.int64) % 4

    # ------------------------------------------------------------------ #
    @classmethod
    def from_tableau(
        cls, tableau: "CliffordTableau", backend: "str | ArrayBackend | None" = None
    ) -> "PackedConjugator":
        """Snapshot a tableau (later gates appended to it have no effect)."""
        rows = tableau.packed_rows()
        return cls(
            tableau.num_qubits,
            rows.x_words.copy(),
            rows.z_words.copy(),
            rows.phases.copy(),
            backend=backend,
        )

    @classmethod
    def from_circuit(
        cls, circuit: "QuantumCircuit", backend: "str | ArrayBackend | None" = None
    ) -> "PackedConjugator":
        """Freeze the conjugation map of a whole Clifford circuit."""
        from repro.clifford.tableau import CliffordTableau

        return cls.from_tableau(CliffordTableau.from_circuit(circuit), backend=backend)

    # ------------------------------------------------------------------ #
    def conjugate_table(self, table: PackedPauliTable) -> PackedPauliTable:
        """Apply the frozen map to every row of ``table`` at once.

        One sweep over the ``2n`` generators; each selected generator is
        XOR-folded into all selecting rows simultaneously, with the exact
        phase bookkeeping of the ordered product (X image before Z image per
        qubit, matching :meth:`CliffordTableau.conjugate`).  Tables on a
        different backend are transferred to the conjugator's backend first,
        and the result stays there.
        """
        if table.num_qubits != self.num_qubits:
            raise CliffordError(
                f"table holds {table.num_qubits}-qubit Paulis, "
                f"conjugator acts on {self.num_qubits}"
            )
        be = self.backend
        table = table.to_backend(be)
        result_x = be.zeros_like(table.x_words)
        result_z = be.zeros_like(table.z_words)
        result_phase = be.copy(table.phases)
        for qubit in range(self.num_qubits):
            word = qubit >> 6
            shift = qubit & 63
            for offset, sel_words in ((0, table.x_words), (1, table.z_words)):
                selected = be.to_bool(be.band(be.rshift(sel_words[:, word], shift), 1))
                if not be.any(selected):
                    continue
                row = 2 * qubit + offset
                gen_x = self._gen_x[row]
                # (-1) for every Z of the accumulator crossing an X of the
                # incoming generator image (ordered-product phase rule).
                crossings = be.popcount_rows(be.band(be.compress_rows(result_z, selected), gen_x))
                be.masked_iadd(
                    result_phase, selected, be.affine(crossings, 2, int(self._gen_phase[row]))
                )
                be.masked_ixor_rows(result_x, selected, gen_x)
                be.masked_ixor_rows(result_z, selected, self._gen_z[row])
        return PackedPauliTable(self.num_qubits, result_x, result_z, result_phase, backend=be)

    def conjugate(self, pauli: PauliString) -> PauliString:
        """Single-Pauli convenience wrapper (no boolean-mask overhead)."""
        if pauli.num_qubits != self.num_qubits:
            raise CliffordError(
                f"Pauli acts on {pauli.num_qubits} qubits, "
                f"conjugator on {self.num_qubits}"
            )
        be = self.backend
        result_x, result_z, phase = conjugate_row_through_generators(
            be.to_numpy(self._gen_x),
            be.to_numpy(self._gen_z),
            self._gen_phase,
            self.num_qubits,
            pauli.x_words,
            pauli.z_words,
            pauli.phase,
        )
        return PauliString.from_words(self.num_qubits, result_x, result_z, phase)

    def conjugate_paulis(self, paulis: Sequence[PauliString]) -> list[PauliString]:
        """Conjugate a collection of Paulis through the frozen map."""
        if not paulis:
            return []
        return self.conjugate_table(PackedPauliTable.from_paulis(paulis)).to_paulis()

    def content_key(self) -> tuple:
        """Hashable identity of the frozen map (backend-independent)."""
        be = self.backend
        return (
            self.num_qubits,
            be.tobytes(self._gen_x),
            be.tobytes(self._gen_z),
            self._gen_phase.tobytes(),
        )

    def __repr__(self) -> str:
        return (
            f"PackedConjugator(num_qubits={self.num_qubits}, backend={self.backend.name!r})"
        )


class ConjugationCache:
    """Thread-safe memo of :class:`PackedConjugator` keyed by tableau content.

    Shared by :func:`repro.compile_many` across its worker pool so programs
    whose extraction produced the same Clifford tail (common for structured
    workload families) freeze the conjugation map only once.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._store: dict[tuple, PackedConjugator] = {}
        self.hits = 0
        self.misses = 0

    def get(self, tableau: "CliffordTableau") -> PackedConjugator:
        """The frozen conjugator of ``tableau``, built at most once per content."""
        key = tableau.content_key()
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                return cached
        conjugator = PackedConjugator.from_tableau(tableau)
        with self._lock:
            winner = self._store.setdefault(key, conjugator)
            if winner is conjugator:
                self.misses += 1
            else:
                self.hits += 1
        return winner

    def __getstate__(self) -> dict:
        # The lock is not picklable; results returned from a
        # ProcessPoolExecutor carry the cache in their property set, so it
        # must survive a round-trip (a fresh lock is fine on the other side).
        with self._lock:
            return {"store": dict(self._store), "hits": self.hits, "misses": self.misses}

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._store = state["store"]
        self.hits = state["hits"]
        self.misses = state["misses"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._store), "hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ConjugationCache(entries={stats['entries']}, "
            f"hits={stats['hits']}, misses={stats['misses']})"
        )
