"""CHP-style stabilizer-state simulator (Aaronson & Gottesman, 2004).

Used to simulate and sample Clifford circuits in polynomial time.  The
simulator follows the standard tableau layout with ``n`` destabilizer rows,
``n`` stabilizer rows and a sign bit per row.  It supports the Clifford gate
set of this package plus computational-basis measurement.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import CliffordError


class StabilizerState:
    """A stabilizer state on ``num_qubits`` qubits, initialised to ``|0...0>``."""

    def __init__(self, num_qubits: int, seed: int | None = None):
        self.num_qubits = int(num_qubits)
        if self.num_qubits < 1:
            raise CliffordError("a stabilizer state needs at least one qubit")
        rows = 2 * self.num_qubits
        # Row i < n: destabilizers (X_i); row n + i: stabilizers (Z_i).
        self.x = np.zeros((rows, self.num_qubits), dtype=bool)
        self.z = np.zeros((rows, self.num_qubits), dtype=bool)
        self.r = np.zeros(rows, dtype=bool)
        for qubit in range(self.num_qubits):
            self.x[qubit, qubit] = True
            self.z[self.num_qubits + qubit, qubit] = True
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Gate application
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: Gate) -> None:
        name = gate.name
        if name == "i":
            return
        if name == "h":
            self._h(gate.qubits[0])
        elif name == "s":
            self._s(gate.qubits[0])
        elif name == "sdg":
            self._s(gate.qubits[0])
            self._s(gate.qubits[0])
            self._s(gate.qubits[0])
        elif name == "x":
            self._h(gate.qubits[0])
            self._s(gate.qubits[0])
            self._s(gate.qubits[0])
            self._h(gate.qubits[0])
        elif name == "z":
            self._s(gate.qubits[0])
            self._s(gate.qubits[0])
        elif name == "y":
            self.apply_gate(Gate("z", gate.qubits))
            self.apply_gate(Gate("x", gate.qubits))
        elif name == "sx":
            self._h(gate.qubits[0])
            self._s(gate.qubits[0])
            self._h(gate.qubits[0])
        elif name == "sxdg":
            self._h(gate.qubits[0])
            self.apply_gate(Gate("sdg", gate.qubits))
            self._h(gate.qubits[0])
        elif name == "cx":
            self._cx(gate.qubits[0], gate.qubits[1])
        elif name == "cz":
            self._h(gate.qubits[1])
            self._cx(gate.qubits[0], gate.qubits[1])
            self._h(gate.qubits[1])
        elif name == "swap":
            self._cx(gate.qubits[0], gate.qubits[1])
            self._cx(gate.qubits[1], gate.qubits[0])
            self._cx(gate.qubits[0], gate.qubits[1])
        else:
            raise CliffordError(f"gate {name!r} is not supported by the stabilizer simulator")

    def apply_circuit(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise CliffordError("circuit and state qubit counts differ")
        for gate in circuit:
            self.apply_gate(gate)

    def _h(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.x[:, qubit], self.z[:, qubit] = (
            self.z[:, qubit].copy(),
            self.x[:, qubit].copy(),
        )

    def _s(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] & self.z[:, qubit]
        self.z[:, qubit] ^= self.x[:, qubit]

    def _cx(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ True)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    # ------------------------------------------------------------------ #
    # Row arithmetic (the "rowsum" of Aaronson & Gottesman)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _g(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> int:
        """Exponent of ``i`` produced when multiplying the two rows, per AG04."""
        x1i = x1.astype(np.int64)
        z1i = z1.astype(np.int64)
        x2i = x2.astype(np.int64)
        z2i = z2.astype(np.int64)
        contributions = np.zeros_like(x1i)
        # case x1=1, z1=1 (Y): g = z2 - x2
        mask_y = (x1i == 1) & (z1i == 1)
        contributions[mask_y] = z2i[mask_y] - x2i[mask_y]
        # case x1=1, z1=0 (X): g = z2 * (2*x2 - 1)
        mask_x = (x1i == 1) & (z1i == 0)
        contributions[mask_x] = z2i[mask_x] * (2 * x2i[mask_x] - 1)
        # case x1=0, z1=1 (Z): g = x2 * (1 - 2*z2)
        mask_z = (x1i == 0) & (z1i == 1)
        contributions[mask_z] = x2i[mask_z] * (1 - 2 * z2i[mask_z])
        return int(np.sum(contributions))

    def _rowsum(self, target: int, source: int) -> None:
        """Set row ``target`` to the product row ``source`` * row ``target``."""
        exponent = (
            2 * int(self.r[target]) + 2 * int(self.r[source])
            + self._g(self.x[source], self.z[source], self.x[target], self.z[target])
        )
        exponent %= 4
        self.r[target] = exponent == 2
        self.x[target] ^= self.x[source]
        self.z[target] ^= self.z[source]

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int) -> int:
        """Measure ``qubit`` in the computational basis, collapsing the state."""
        n = self.num_qubits
        stabilizer_rows = np.nonzero(self.x[n:, qubit])[0]
        if stabilizer_rows.size > 0:
            # Random outcome.
            pivot = int(stabilizer_rows[0]) + n
            for row in range(2 * n):
                if row != pivot and self.x[row, qubit]:
                    self._rowsum(row, pivot)
            self.x[pivot - n] = self.x[pivot]
            self.z[pivot - n] = self.z[pivot]
            self.r[pivot - n] = self.r[pivot]
            outcome = int(self._rng.integers(0, 2))
            self.x[pivot] = False
            self.z[pivot] = False
            self.z[pivot, qubit] = True
            self.r[pivot] = bool(outcome)
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        scratch_x = np.zeros(n, dtype=bool)
        scratch_z = np.zeros(n, dtype=bool)
        scratch_r = 0
        for destabilizer in range(n):
            if self.x[destabilizer, qubit]:
                stabilizer = destabilizer + n
                exponent = (
                    2 * scratch_r + 2 * int(self.r[stabilizer])
                    + self._g(self.x[stabilizer], self.z[stabilizer], scratch_x, scratch_z)
                )
                exponent %= 4
                scratch_r = 1 if exponent == 2 else 0
                scratch_x ^= self.x[stabilizer]
                scratch_z ^= self.z[stabilizer]
        return int(scratch_r)

    def measure_all(self) -> str:
        """Measure every qubit; returns the bitstring with qubit 0 rightmost."""
        bits = [self.measure(qubit) for qubit in range(self.num_qubits)]
        return "".join(str(bit) for bit in reversed(bits))

    def sample_counts(self, circuit: QuantumCircuit, shots: int) -> dict[str, int]:
        """Sample ``shots`` measurement outcomes of ``circuit`` from ``|0...0>``."""
        counts: dict[str, int] = {}
        for _ in range(shots):
            fresh = StabilizerState(self.num_qubits, seed=int(self._rng.integers(0, 2**31)))
            fresh.apply_circuit(circuit)
            key = fresh.measure_all()
            counts[key] = counts.get(key, 0) + 1
        return counts
