"""Aaronson–Gottesman style Clifford tableau.

The tableau stores, for an n-qubit Clifford unitary ``U``, the images of the
single-qubit generators under Heisenberg evolution::

    row 2q     =  U X_q U†
    row 2q + 1 =  U Z_q U†

Each row is a Pauli in the explicit-phase convention of
:class:`repro.paulis.PauliString` (exponent of ``i`` modulo 4).  The tableau
supports appending Clifford gates (the map then represents the grown circuit)
and conjugating arbitrary Pauli strings in ``O(n * weight)`` time, which is
the operation QuCLEAR's Clifford Extraction and Absorption modules rely on.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.clifford.conjugation import apply_gate_to_rows
from repro.exceptions import CliffordError
from repro.paulis.pauli import PauliString


class CliffordTableau:
    """The conjugation map ``P -> U P U†`` of a Clifford unitary ``U``."""

    def __init__(self, num_qubits: int):
        self.num_qubits = int(num_qubits)
        if self.num_qubits < 1:
            raise CliffordError("a tableau needs at least one qubit")
        rows = 2 * self.num_qubits
        self._x = np.zeros((rows, self.num_qubits), dtype=bool)
        self._z = np.zeros((rows, self.num_qubits), dtype=bool)
        self._phase = np.zeros(rows, dtype=np.int64)
        for qubit in range(self.num_qubits):
            self._x[2 * qubit, qubit] = True
            self._z[2 * qubit + 1, qubit] = True

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "CliffordTableau":
        return cls(num_qubits)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CliffordTableau":
        """Tableau of a Clifford circuit (raises on non-Clifford gates)."""
        tableau = cls(circuit.num_qubits)
        for gate in circuit:
            tableau.append_gate(gate)
        return tableau

    def copy(self) -> "CliffordTableau":
        clone = CliffordTableau(self.num_qubits)
        clone._x = self._x.copy()
        clone._z = self._z.copy()
        clone._phase = self._phase.copy()
        return clone

    # ------------------------------------------------------------------ #
    # Growing the represented Clifford
    # ------------------------------------------------------------------ #
    def append_gate(self, gate: Gate) -> None:
        """Grow the circuit by one gate: the map becomes ``P -> g U P U† g†``."""
        if not gate.is_clifford:
            raise CliffordError(f"gate {gate.name!r} is not Clifford")
        apply_gate_to_rows(self._x, self._z, self._phase, gate)

    def append_circuit(self, circuit: QuantumCircuit) -> None:
        """Append every gate of ``circuit`` in time order."""
        if circuit.num_qubits != self.num_qubits:
            raise CliffordError("circuit and tableau qubit counts differ")
        for gate in circuit:
            self.append_gate(gate)

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def image_of_x(self, qubit: int) -> PauliString:
        """The image ``U X_qubit U†``."""
        row = 2 * qubit
        return PauliString(self._x[row], self._z[row], int(self._phase[row]))

    def image_of_z(self, qubit: int) -> PauliString:
        """The image ``U Z_qubit U†``."""
        row = 2 * qubit + 1
        return PauliString(self._x[row], self._z[row], int(self._phase[row]))

    def is_identity(self) -> bool:
        """True when the tableau represents conjugation by the identity (up to phase)."""
        reference = CliffordTableau(self.num_qubits)
        return (
            bool(np.array_equal(self._x, reference._x))
            and bool(np.array_equal(self._z, reference._z))
            and bool(np.array_equal(self._phase % 4, reference._phase))
        )

    # ------------------------------------------------------------------ #
    # Conjugation of arbitrary Paulis
    # ------------------------------------------------------------------ #
    def conjugate(self, pauli: PauliString) -> PauliString:
        """Return ``U P U†`` for an arbitrary Pauli string ``P``."""
        if pauli.num_qubits != self.num_qubits:
            raise CliffordError("Pauli and tableau qubit counts differ")
        # P = i^phase * prod_q X_q^{x_q} Z_q^{z_q}; conjugation is a
        # homomorphism, so the image is the ordered product of row images.
        result_x = np.zeros(self.num_qubits, dtype=bool)
        result_z = np.zeros(self.num_qubits, dtype=bool)
        result_phase = int(pauli.phase)
        for qubit in range(self.num_qubits):
            if pauli.x[qubit]:
                row = 2 * qubit
                result_phase += int(self._phase[row])
                result_phase += 2 * int(np.count_nonzero(result_z & self._x[row]))
                result_x ^= self._x[row]
                result_z ^= self._z[row]
            if pauli.z[qubit]:
                row = 2 * qubit + 1
                result_phase += int(self._phase[row])
                result_phase += 2 * int(np.count_nonzero(result_z & self._x[row]))
                result_x ^= self._x[row]
                result_z ^= self._z[row]
        return PauliString(result_x, result_z, result_phase % 4)

    def conjugate_many(self, paulis: list[PauliString]) -> list[PauliString]:
        """Conjugate a list of Paulis (convenience wrapper)."""
        return [self.conjugate(p) for p in paulis]

    # ------------------------------------------------------------------ #
    # Structure queries used by Clifford Absorption
    # ------------------------------------------------------------------ #
    def x_block(self) -> np.ndarray:
        """The 2n x n boolean matrix of X components of every row."""
        return self._x.copy()

    def z_block(self) -> np.ndarray:
        """The 2n x n boolean matrix of Z components of every row."""
        return self._z.copy()

    def phases(self) -> np.ndarray:
        """Phase exponents (of ``i``) of every row."""
        return self._phase.copy() % 4

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.num_qubits})"
