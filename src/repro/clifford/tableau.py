"""Aaronson–Gottesman style Clifford tableau.

The tableau stores, for an n-qubit Clifford unitary ``U``, the images of the
single-qubit generators under Heisenberg evolution::

    row 2q     =  U X_q U†
    row 2q + 1 =  U Z_q U†

Each row is a Pauli in the explicit-phase convention of
:class:`repro.paulis.PauliString` (exponent of ``i`` modulo 4).  The rows
live in a bit-packed :class:`~repro.paulis.packed.PackedPauliTable`, so
appending a Clifford gate updates all ``2n`` rows with a couple of word-wide
bitwise operations, and conjugating an arbitrary Pauli string walks only its
support at ``uint64`` granularity.  Batch conjugation of many Paulis goes
through :class:`repro.clifford.engine.PackedConjugator`.
"""

from __future__ import annotations

import numpy as np

from repro.arrays import NUMPY
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import CliffordError
from repro.paulis.packed import PackedPauliTable, conjugate_row_through_generators
from repro.paulis.pauli import PauliString


class CliffordTableau:
    """The conjugation map ``P -> U P U†`` of a Clifford unitary ``U``.

    Tableaus sit on the host side of the synthesis boundary: their rows are
    always on the numpy backend, whatever backend the program table uses.
    """

    def __init__(self, num_qubits: int):
        self.num_qubits = int(num_qubits)
        if self.num_qubits < 1:
            raise CliffordError("a tableau needs at least one qubit")
        rows = 2 * self.num_qubits
        self._rows = PackedPauliTable.zeros(rows, self.num_qubits, backend=NUMPY)
        one = np.uint64(1)
        for qubit in range(self.num_qubits):
            word = qubit >> 6
            mask = one << np.uint64(qubit & 63)
            self._rows.x_words[2 * qubit, word] = mask
            self._rows.z_words[2 * qubit + 1, word] = mask

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "CliffordTableau":
        return cls(num_qubits)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CliffordTableau":
        """Tableau of a Clifford circuit (raises on non-Clifford gates)."""
        tableau = cls(circuit.num_qubits)
        tableau.append_circuit(circuit)
        return tableau

    @classmethod
    def from_packed_rows(cls, rows: PackedPauliTable) -> "CliffordTableau":
        """Adopt ``2n`` packed generator-image rows as a tableau.

        ``rows`` must hold the images in the canonical layout (row ``2q`` =
        image of ``X_q``, row ``2q + 1`` = image of ``Z_q``).  Ownership
        transfers to the tableau — the caller must not mutate the table
        afterwards.  This is how the table-native extractor returns its
        conjugation map: the generator rows ride along the packed program
        table through the whole pass and are split off here at the end.
        This is the device-to-host transfer point: rows arriving on a
        non-numpy backend are copied to the host exactly once.
        """
        if rows.num_rows != 2 * rows.num_qubits:
            raise CliffordError(
                f"a {rows.num_qubits}-qubit tableau needs {2 * rows.num_qubits} "
                f"generator rows, got {rows.num_rows}"
            )
        tableau = cls.__new__(cls)
        tableau.num_qubits = rows.num_qubits
        tableau._rows = rows.to_host()
        return tableau

    def copy(self) -> "CliffordTableau":
        clone = CliffordTableau.__new__(CliffordTableau)
        clone.num_qubits = self.num_qubits
        clone._rows = self._rows.copy()
        return clone

    # ------------------------------------------------------------------ #
    # Growing the represented Clifford
    # ------------------------------------------------------------------ #
    def append_gate(self, gate: Gate) -> None:
        """Grow the circuit by one gate: the map becomes ``P -> g U P U† g†``."""
        if not gate.is_clifford:
            raise CliffordError(f"gate {gate.name!r} is not Clifford")
        self._rows.apply_gate(gate)

    def append_circuit(self, circuit: QuantumCircuit) -> None:
        """Append every gate of ``circuit`` in time order."""
        if circuit.num_qubits != self.num_qubits:
            raise CliffordError("circuit and tableau qubit counts differ")
        rows = self._rows
        for gate in circuit:
            if not gate.is_clifford:
                raise CliffordError(f"gate {gate.name!r} is not Clifford")
            NUMPY.apply_gate_to_words(rows.x_words, rows.z_words, rows.phases, gate)
        np.mod(rows.phases, 4, out=rows.phases)

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def image_of_x(self, qubit: int) -> PauliString:
        """The image ``U X_qubit U†``."""
        return self._rows.row(2 * qubit)

    def image_of_z(self, qubit: int) -> PauliString:
        """The image ``U Z_qubit U†``."""
        return self._rows.row(2 * qubit + 1)

    def packed_rows(self) -> PackedPauliTable:
        """The live packed generator-image rows (do not mutate)."""
        return self._rows

    def content_key(self) -> tuple:
        """Hashable snapshot identity, used by the conjugation cache."""
        return (
            self.num_qubits,
            self._rows.x_words.tobytes(),
            self._rows.z_words.tobytes(),
            (self._rows.phases % 4).tobytes(),
        )

    def is_identity(self) -> bool:
        """True when the tableau represents conjugation by the identity (up to phase)."""
        reference = CliffordTableau(self.num_qubits)
        return (
            bool(np.array_equal(self._rows.x_words, reference._rows.x_words))
            and bool(np.array_equal(self._rows.z_words, reference._rows.z_words))
            and bool(np.array_equal(self._rows.phases % 4, reference._rows.phases))
        )

    # ------------------------------------------------------------------ #
    # Conjugation of arbitrary Paulis
    # ------------------------------------------------------------------ #
    def conjugate(self, pauli: PauliString) -> PauliString:
        """Return ``U P U†`` for an arbitrary Pauli string ``P``."""
        if pauli.num_qubits != self.num_qubits:
            raise CliffordError("Pauli and tableau qubit counts differ")
        # P = i^phase * prod_q X_q^{x_q} Z_q^{z_q}; conjugation is a
        # homomorphism, so the image is the ordered product of row images.
        result_x, result_z, phase = conjugate_row_through_generators(
            self._rows.x_words,
            self._rows.z_words,
            self._rows.phases,
            self.num_qubits,
            pauli.x_words,
            pauli.z_words,
            pauli.phase,
        )
        return PauliString.from_words(self.num_qubits, result_x, result_z, phase)

    def conjugate_many(self, paulis: list[PauliString]) -> list[PauliString]:
        """Conjugate a batch of Paulis in one vectorized sweep."""
        from repro.clifford.engine import PackedConjugator

        if not paulis:
            return []
        return PackedConjugator.from_tableau(self).conjugate_paulis(paulis)

    def conjugate_table(self, table: PackedPauliTable) -> PackedPauliTable:
        """Conjugate a whole packed table through the tableau at once."""
        from repro.clifford.engine import PackedConjugator

        return PackedConjugator.from_tableau(self).conjugate_table(table)

    # ------------------------------------------------------------------ #
    # Structure queries used by Clifford Absorption
    # ------------------------------------------------------------------ #
    def x_block(self) -> np.ndarray:
        """The 2n x n boolean matrix of X components of every row."""
        x, _, _ = self._rows.to_bool_arrays()
        return x

    def z_block(self) -> np.ndarray:
        """The 2n x n boolean matrix of Z components of every row."""
        _, z, _ = self._rows.to_bool_arrays()
        return z

    def phases(self) -> np.ndarray:
        """Phase exponents (of ``i``) of every row."""
        return self._rows.phases.copy() % 4

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.num_qubits})"
