"""Stabilizer / Clifford substrate.

Provides the gate-wise Pauli conjugation rules, the Aaronson–Gottesman style
:class:`CliffordTableau` used by Clifford Extraction and Absorption, the
bit-packed vectorized conjugation engine (:class:`PackedConjugator`,
:class:`ConjugationCache`), and a CHP-style :class:`StabilizerState`
simulator used to verify and sample Clifford circuits.
"""

from repro.clifford.conjugation import conjugate_pauli_by_gate, conjugate_pauli_by_circuit
from repro.clifford.engine import (
    ConjugationCache,
    PackedConjugator,
    conjugate_paulis_by_circuit,
    conjugate_table_by_circuit,
)
from repro.clifford.tableau import CliffordTableau
from repro.clifford.stabilizer import StabilizerState

__all__ = [
    "conjugate_pauli_by_gate",
    "conjugate_pauli_by_circuit",
    "conjugate_paulis_by_circuit",
    "conjugate_table_by_circuit",
    "ConjugationCache",
    "PackedConjugator",
    "CliffordTableau",
    "StabilizerState",
]
