"""Stabilizer / Clifford substrate.

Provides the gate-wise Pauli conjugation rules, the Aaronson–Gottesman style
:class:`CliffordTableau` used by Clifford Extraction and Absorption, and a
CHP-style :class:`StabilizerState` simulator used to verify and sample
Clifford circuits.
"""

from repro.clifford.conjugation import conjugate_pauli_by_gate, conjugate_pauli_by_circuit
from repro.clifford.tableau import CliffordTableau
from repro.clifford.stabilizer import StabilizerState

__all__ = [
    "conjugate_pauli_by_gate",
    "conjugate_pauli_by_circuit",
    "CliffordTableau",
    "StabilizerState",
]
