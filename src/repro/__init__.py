"""Reproduction of *QuCLEAR: Clifford Extraction and Absorption for Quantum
Circuit Optimization* (HPCA 2025).

The public API centers on the composable pass-pipeline compiler:

* :func:`repro.compile` — the one-call entry point: pick a preset
  ``level`` (0..3, 3 = the full QuCLEAR flow), an optional device
  :class:`~repro.compiler.Target`, or any registered pipeline.
* :func:`repro.compile_many` — the batch entry point: shard independent
  programs across a ``concurrent.futures`` worker pool with a shared
  conjugation-tableau cache.
* :mod:`repro.compiler` — the pass/pipeline machinery: :class:`Pipeline`,
  :class:`Target`, the :class:`CompilerRegistry` (QuCLEAR *and* every
  baseline under one roof), and the individual passes.
* :class:`PauliString`, :class:`PauliTerm`, :class:`SparsePauliSum` — the
  Pauli-string program representation, thin views over the bit-packed
  symplectic store (:class:`PackedPauliTable`, 64 qubits per ``uint64``
  word) that the vectorized Clifford-conjugation engine operates on.
* :class:`QuantumCircuit`, :class:`Statevector` — the circuit substrate.
* :mod:`repro.arrays` — the pluggable array-backend layer the packed engine
  runs on: numpy (default), an import-guarded CuPy backend, and a
  pure-Python reference backend for ground-truth checks.  Select per compile
  with ``compile(..., backend=...)``, per device with
  ``Target(array_backend=...)``, or process-wide with the
  ``REPRO_ARRAY_BACKEND`` environment variable.
* :mod:`repro.parametric` — template compilation for VQE/QAOA traffic:
  :func:`repro.compile_template` runs the pipeline once per ansatz
  structure, :meth:`CompiledTemplate.bind` substitutes angles in
  microseconds with results bit-identical to a full compile.
* :mod:`repro.service` — compilation as a service: a versioned wire format
  (``CompilationResult.to_dict()/from_dict()``), a persistent
  content-addressed artifact cache, and a batching HTTP front-end
  (``python -m repro.service``).
* :mod:`repro.workloads` — the benchmark workload generators of Table II.
* :mod:`repro.baselines` — re-implementations of the comparison compilers.

Quick start::

    import repro
    from repro import PauliTerm

    terms = [PauliTerm.from_label("ZZZZ", 0.3), PauliTerm.from_label("YYXX", 0.5)]
    result = repro.compile(terms, level=3)
    print(result.cx_count(), "CNOTs instead of", 12)
    print(result.metadata["pass_timings"])     # per-pass wall-clock breakdown

    # Device-aware compilation (routes to the coupling map):
    routed = repro.compile(terms, target="sycamore")

    # Any registered compiler, one unified result type:
    baseline = repro.compile(terms, pipeline="qiskit-like")

The legacy ``QuCLEAR`` object remains available as a deprecated facade over
the preset pipeline.
"""

from repro.arrays import (
    ArrayBackend,
    CupyBackend,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.circuits import Gate, QuantumCircuit, Statevector
from repro.clifford import (
    CliffordTableau,
    ConjugationCache,
    PackedConjugator,
    StabilizerState,
)
from repro.core import (
    CliffordExtractor,
    CompilationResult,
    ExtractionResult,
    LegacyCliffordExtractor,
    ObservableAbsorber,
    ProbabilityAbsorber,
    QuCLEAR,
    absorb_observables,
    absorb_probabilities,
)
from repro.paulis import PackedPauliTable, PauliString, PauliTerm, SparsePauliSum
from repro.compiler import (
    CompilerRegistry,
    Pipeline,
    Target,
    compile,
    compile_many,
    get_registry,
    preset_pipeline,
)
from repro.parametric import (
    BoundProgram,
    CompiledTemplate,
    ParametricProgram,
    compile_template,
)

__version__ = "1.3.0"

__all__ = [
    "ArrayBackend",
    "CupyBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "Gate",
    "QuantumCircuit",
    "Statevector",
    "CliffordTableau",
    "StabilizerState",
    "CliffordExtractor",
    "LegacyCliffordExtractor",
    "CompilationResult",
    "ExtractionResult",
    "ObservableAbsorber",
    "ProbabilityAbsorber",
    "QuCLEAR",
    "absorb_observables",
    "absorb_probabilities",
    "PackedPauliTable",
    "PauliString",
    "PauliTerm",
    "SparsePauliSum",
    "ConjugationCache",
    "PackedConjugator",
    "CompilerRegistry",
    "Pipeline",
    "Target",
    "compile",
    "compile_many",
    "get_registry",
    "preset_pipeline",
    "BoundProgram",
    "CompiledTemplate",
    "ParametricProgram",
    "compile_template",
    "__version__",
]
