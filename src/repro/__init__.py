"""Reproduction of *QuCLEAR: Clifford Extraction and Absorption for Quantum
Circuit Optimization* (HPCA 2025).

The public API re-exports the pieces a downstream user needs most often:

* :class:`QuCLEAR` — the end-to-end compiler (Clifford Extraction + local
  optimization + Clifford Absorption helpers).
* :class:`PauliString`, :class:`PauliTerm`, :class:`SparsePauliSum` — the
  Pauli-string program representation.
* :class:`QuantumCircuit`, :class:`Statevector` — the circuit substrate.
* :mod:`repro.workloads` — the benchmark workload generators of Table II.
* :mod:`repro.baselines` — re-implementations of the comparison compilers.

Quick start::

    from repro import QuCLEAR, PauliTerm

    terms = [PauliTerm.from_label("ZZZZ", 0.3), PauliTerm.from_label("YYXX", 0.5)]
    result = QuCLEAR().compile(terms)
    print(result.cx_count(), "CNOTs instead of", 12)
"""

from repro.circuits import Gate, QuantumCircuit, Statevector
from repro.clifford import CliffordTableau, StabilizerState
from repro.core import (
    CliffordExtractor,
    CompilationResult,
    ExtractionResult,
    ObservableAbsorber,
    ProbabilityAbsorber,
    QuCLEAR,
    absorb_observables,
    absorb_probabilities,
)
from repro.paulis import PauliString, PauliTerm, SparsePauliSum

__version__ = "1.0.0"

__all__ = [
    "Gate",
    "QuantumCircuit",
    "Statevector",
    "CliffordTableau",
    "StabilizerState",
    "CliffordExtractor",
    "CompilationResult",
    "ExtractionResult",
    "ObservableAbsorber",
    "ProbabilityAbsorber",
    "QuCLEAR",
    "absorb_observables",
    "absorb_probabilities",
    "PauliString",
    "PauliTerm",
    "SparsePauliSum",
    "__version__",
]
