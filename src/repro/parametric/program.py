"""Parametric Pauli programs: fixed structure, symbolic coefficients.

A :class:`ParametricProgram` is the ansatz shape of VQE/QAOA traffic: a fixed
list of Pauli strings (held bit-packed, exactly like
:class:`~repro.paulis.sum.SparsePauliSum`) whose coefficients are *symbolic*
— term ``i`` evaluates to ``scales[i] * params[slots[i]]`` (or the constant
``scales[i]`` when ``slots[i] == -1``) once a concrete parameter vector is
supplied.  Everything the Clifford-extraction pipeline decides — grouping,
reordering, tree shapes, cancellations — depends only on this structure, so
a template compiled once (:func:`repro.parametric.compile_template`) serves
every binding of the ansatz.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidProgramError
from repro.paulis.packed import PackedPauliTable
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

if TYPE_CHECKING:
    from repro.parametric.template import CompiledTemplate


def validate_parameters(
    params: Sequence[float] | np.ndarray,
    num_params: int,
    source: str = "repro.parametric",
) -> np.ndarray:
    """Check and canonicalize a bind-parameter vector.

    Returns the parameters as a fresh ``float64`` array; raises
    :class:`~repro.exceptions.InvalidProgramError` on wrong arity or
    non-finite (NaN/inf) entries — the same up-front rejection every compile
    entry point applies to coefficients.
    """
    try:
        array = np.array(params, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise InvalidProgramError(
            f"{source}: parameters are not a real vector: {error}"
        ) from error
    if array.ndim != 1 or array.shape[0] != num_params:
        raise InvalidProgramError(
            f"{source}: expected {num_params} parameter(s), got shape {array.shape}"
        )
    if num_params and not np.isfinite(array).all():
        raise InvalidProgramError(
            f"{source}: parameters contain NaN/inf values — refusing to bind"
        )
    return array


class ParametricProgram:
    """A Pauli-rotation program with symbolic coefficient slots.

    Parameters
    ----------
    paulis:
        The fixed Pauli structure: an iterable of
        :class:`~repro.paulis.pauli.PauliString` or a whole
        :class:`~repro.paulis.packed.PackedPauliTable` (copied).  Rows must
        be Hermitian; a ``-1`` label sign is folded into the term's scale.
    slots:
        One integer per term: the index of the parameter feeding the term's
        coefficient, or ``-1`` for a constant term.
    scales:
        Per-term multiplier (default all ones).  Term ``i`` evaluates to
        ``scales[i] * params[slots[i]]``, or just ``scales[i]`` when
        ``slots[i] == -1``.
    num_params:
        Parameter-vector arity; defaults to ``max(slots) + 1``.
    """

    def __init__(
        self,
        paulis: Iterable[PauliString] | PackedPauliTable,
        slots: Sequence[int] | np.ndarray,
        scales: Sequence[float] | np.ndarray | None = None,
        num_params: int | None = None,
    ):
        if isinstance(paulis, PackedPauliTable):
            table = paulis.copy()
        else:
            pauli_list = list(paulis)
            if not pauli_list:
                raise InvalidProgramError(
                    "repro.parametric: program is empty — a template needs at "
                    "least one Pauli term"
                )
            table = PackedPauliTable.from_paulis(pauli_list)
        if table.num_qubits < 1:
            raise InvalidProgramError(
                "repro.parametric: program acts on zero qubits"
            )
        if len(table) == 0:
            raise InvalidProgramError(
                "repro.parametric: program is empty — a template needs at "
                "least one Pauli term"
            )
        if not table.hermitian_mask().all():
            raise InvalidProgramError(
                "repro.parametric: program contains non-Hermitian Pauli rows"
            )

        slot_array = np.asarray(slots)
        if slot_array.dtype.kind not in "iu":
            raise InvalidProgramError(
                f"repro.parametric: slots must be integers, got dtype "
                f"{slot_array.dtype}"
            )
        slot_array = slot_array.astype(np.int64, copy=True)
        if slot_array.shape != (len(table),):
            raise InvalidProgramError(
                f"repro.parametric: need one slot per term: {len(table)} terms, "
                f"slots shape {slot_array.shape}"
            )
        if slot_array.size and int(slot_array.min()) < -1:
            raise InvalidProgramError(
                "repro.parametric: slots must be parameter indices or -1 "
                "(constant term)"
            )
        highest = int(slot_array.max()) if slot_array.size else -1
        if num_params is None:
            num_params = highest + 1
        num_params = int(num_params)
        if num_params < 0 or highest >= num_params:
            raise InvalidProgramError(
                f"repro.parametric: slot {highest} out of range for "
                f"{num_params} parameter(s)"
            )

        if scales is None:
            scale_array = np.ones(len(table), dtype=np.float64)
        else:
            try:
                scale_array = np.array(scales, dtype=np.float64)
            except (TypeError, ValueError) as error:
                raise InvalidProgramError(
                    f"repro.parametric: scales are not a real vector: {error}"
                ) from error
        if scale_array.shape != (len(table),):
            raise InvalidProgramError(
                f"repro.parametric: need one scale per term: {len(table)} terms, "
                f"scales shape {scale_array.shape}"
            )
        if not np.isfinite(scale_array).all():
            raise InvalidProgramError(
                "repro.parametric: scales contain NaN/inf values — refusing to "
                "build a template"
            )

        # Canonical store: bare rows, label signs folded into the scales —
        # the same normalization SparsePauliSum.from_packed applies, so a
        # template and the concrete sums it binds agree on coefficients.
        sign_exponents = table.signs()
        if np.any(sign_exponents):
            scale_array = scale_array * np.where(sign_exponents == 0, 1.0, -1.0)
            table = table.bare()
        self._table = table
        self._slots = slot_array
        self._scales = scale_array
        self._num_params = num_params
        bound = np.nonzero(slot_array >= 0)[0]
        self._bound_index = bound
        self._bound_slots = slot_array[bound]
        self._bound_scales = scale_array[bound]

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_terms(
        cls,
        terms: Sequence[PauliTerm],
        slots: Sequence[int] | np.ndarray,
        num_params: int | None = None,
    ) -> "ParametricProgram":
        """Build from :class:`PauliTerm` entries; coefficients become scales."""
        term_list = list(terms)
        if not term_list:
            raise InvalidProgramError(
                "repro.parametric: program is empty — a template needs at "
                "least one Pauli term"
            )
        return cls(
            (term.pauli for term in term_list),
            slots,
            scales=[term.coefficient for term in term_list],
            num_params=num_params,
        )

    @classmethod
    def from_sum(
        cls,
        observable: SparsePauliSum,
        slots: Sequence[int] | np.ndarray,
        num_params: int | None = None,
    ) -> "ParametricProgram":
        """Build from a sum's packed store; coefficients become scales."""
        return cls(
            observable.packed_table.copy(),
            slots,
            scales=observable.coefficient_vector(),
            num_params=num_params,
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def table(self) -> PackedPauliTable:
        """The canonical bare packed store (do not mutate)."""
        return self._table

    @property
    def slots(self) -> np.ndarray:
        """Per-term parameter indices (``-1`` = constant); do not mutate."""
        return self._slots

    @property
    def scales(self) -> np.ndarray:
        """Per-term coefficient multipliers; do not mutate."""
        return self._scales

    @property
    def num_params(self) -> int:
        return self._num_params

    @property
    def num_qubits(self) -> int:
        return self._table.num_qubits

    @property
    def num_terms(self) -> int:
        return len(self._table)

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return (
            f"ParametricProgram({self.num_terms} terms, "
            f"{self.num_qubits} qubits, {self.num_params} params)"
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, params: Sequence[float] | np.ndarray) -> np.ndarray:
        """The concrete coefficient vector at ``params`` (validated)."""
        array = validate_parameters(params, self._num_params)
        return self._evaluate_validated(array)

    def _evaluate_validated(self, params: np.ndarray) -> np.ndarray:
        coefficients = self._scales.copy()
        if self._bound_index.size:
            coefficients[self._bound_index] = (
                self._bound_scales * params[self._bound_slots]
            )
        return coefficients

    def to_sum(self, params: Sequence[float] | np.ndarray) -> SparsePauliSum:
        """The concrete :class:`SparsePauliSum` at ``params``.

        This is exactly the program a from-scratch ``repro.compile`` of the
        same binding would receive — the bit-identity reference.
        """
        return SparsePauliSum.from_packed(self._table, self.evaluate(params))


class BoundProgram:
    """A compiled template plus one concrete parameter vector.

    Accepted by :func:`repro.compile_many` alongside regular programs: the
    batch planner counts a bound program as zero synthesis terms (binding
    replays a pre-compiled skeleton in microseconds) and executes it inline
    via :meth:`CompiledTemplate.bind`.
    """

    __slots__ = ("template", "params")

    def __init__(
        self, template: "CompiledTemplate", params: Sequence[float] | np.ndarray
    ):
        self.template = template
        self.params = validate_parameters(
            params, template.num_params, source="repro.parametric.BoundProgram"
        )

    def __len__(self) -> int:
        return self.template.num_terms

    def __repr__(self) -> str:
        return f"BoundProgram({self.template!r}, {self.params!r})"
