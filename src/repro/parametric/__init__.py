"""Template compilation for parametric (VQE/QAOA) workloads.

The pipeline's decisions depend only on Pauli structure, never on rotation
angles — so an ansatz is compiled **once** into a
:class:`~repro.parametric.template.CompiledTemplate` and every parameter
update binds in microseconds:

>>> program = ParametricProgram.from_terms(ansatz_terms, slots)
>>> template = compile_template(program, level=3)
>>> result = template.bind(theta)          # per-optimizer-iteration
"""

from repro.parametric.program import (
    BoundProgram,
    ParametricProgram,
    validate_parameters,
)
from repro.parametric.template import CompiledTemplate, compile_template

__all__ = [
    "BoundProgram",
    "CompiledTemplate",
    "ParametricProgram",
    "compile_template",
    "validate_parameters",
]
