"""Template compilation: run the pipeline once, bind angles in microseconds.

Every pass in the preset pipelines is *structurally* driven: commuting-block
grouping, the greedy in-block reordering, tree synthesis, and the extracted
Clifford tail read only the Pauli words — rotation angles appear exclusively
as the ``rz`` parameters on tree roots.  The peephole engine's control flow
is almost angle-free too: its commutation checks and cancellation scans never
read ``params``, and the only angle-dependent *decision* is dropping a
(near-)zero merged rotation.

:func:`compile_template` exploits this: it runs the full preset pipeline once
over a :class:`~repro.parametric.program.ParametricProgram` with *sentinel*
coefficients (term ``i`` carries ``float(i + 1)``), records which input terms
fold into each surviving rotation and in what order (a *merge chain*), and
keeps the angle-free gate skeleton plus the pre-extracted tail and
conjugation tableau.  :meth:`CompiledTemplate.bind` then substitutes concrete
angles by replaying only the chain arithmetic — no pass executes, no gate is
re-scanned — and the result is bit-identical to a from-scratch
:func:`repro.compile` at the same angles.

The one case the skeleton cannot reproduce is a *degenerate* binding: a
merged rotation whose angle lands within ``1e-12`` of zero, which the
concrete peephole would delete (changing the gate structure).  Binding
detects this while replaying the chain prefix sums and transparently falls
back to a full compile, so correctness never depends on the fast path.

Template construction ends with a self-check: one concrete compile at generic
calibration angles is compared gate-for-gate (and tableau-for-tableau)
against the template's own fast bind, so a trace that diverged from the real
pipeline fails loudly at ``compile_template`` time, never at serving time.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.clifford.tableau import CliffordTableau
from repro.compiler.api import compile as _compile_concrete
from repro.compiler.context import PropertySet
from repro.compiler.presets import MAX_OPTIMIZATION_LEVEL
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.core.extraction import CliffordExtractor, ExtractionResult
from repro.exceptions import CompilerError
from repro.parametric.program import ParametricProgram, validate_parameters
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.wire_optimizer import _FOUR_PI, _ZERO_EPS, GateStreamOptimizer

#: feature flags of the extraction presets, keyed by optimization level
_EXTRACTION_FLAGS = {
    2: dict(reorder_within_blocks=False, cross_block_lookahead=False),
    3: dict(reorder_within_blocks=True, cross_block_lookahead=True),
}

#: calibration attempts before declaring every binding degenerate
_CALIBRATION_ATTEMPTS = 8


class _SymbolicStream(GateStreamOptimizer):
    """The peephole engine re-run with symbolic rotation angles.

    Structural behaviour (scans, commutation checks, inverse-pair kills) is
    inherited unchanged; only :meth:`_merge_rotation` is replaced.  A sentinel
    rotation is never normalized, never deleted, and never updates a float —
    instead the signed sentinel code is appended to the surviving node's
    *merge chain*, recording exactly which input terms the concrete engine
    would sum into that gate, in the same order.

    Rotation nodes are pinned by strong references for the stream's lifetime
    (they are never killed — a rotation only matches other rotations), so the
    ``id``-keyed chain map cannot suffer from recycled ids.
    """

    def __init__(self, num_qubits: int):
        super().__init__(num_qubits)
        self._chain_nodes: list = []
        self._chain_codes: dict[int, list[int]] = {}

    def _merge_rotation(self, gate: Gate, node) -> None:
        code = _sentinel_code(gate.params[0])
        if node is not None:
            self._chain_codes[id(node)].append(code)
            return
        self._push(gate, 0.0)
        fresh = self._order[-1]
        self._chain_codes[id(fresh)] = [code]
        self._chain_nodes.append(fresh)

    def finalize(self) -> tuple[list[Gate], list[int], list[list[int]]]:
        """Surviving gates, rotation positions within them, and their chains."""
        skeleton: list[Gate] = []
        positions: list[int] = []
        chains: list[list[int]] = []
        codes = self._chain_codes
        for node in self._order:
            if not node.alive:
                continue
            chain = codes.get(id(node))
            if chain is not None:
                positions.append(len(skeleton))
                chains.append(chain)
            skeleton.append(node.gate)
        return skeleton, positions, chains


def _sentinel_code(param: float) -> int:
    """Decode a sentinel rotation angle back into its signed term code."""
    code = int(round(param))
    if code == 0 or float(code) != param:
        raise CompilerError(
            f"template trace produced a non-sentinel rotation angle {param!r}; "
            "the pipeline must have transformed an angle it was not expected to"
        )
    return code


def _chains_from_codes(codes: list[list[int]], num_terms: int) -> list[list[tuple[int, float]]]:
    """Signed sentinel codes -> per-chain ``(term_index, sign)`` entries."""
    chains: list[list[tuple[int, float]]] = []
    for chain in codes:
        entries: list[tuple[int, float]] = []
        for code in chain:
            term = abs(code) - 1
            if term >= num_terms:
                raise CompilerError(
                    f"template trace produced sentinel code {code} outside the "
                    f"{num_terms}-term program"
                )
            entries.append((term, 1.0 if code > 0 else -1.0))
        chains.append(entries)
    return chains


def _generic_parameters(num_params: int, attempt: int) -> np.ndarray:
    """Deterministic calibration angles, irrational-ish so sums never vanish."""
    golden = 0.6180339887498949
    shift = attempt * 0.0137203
    return np.array(
        [0.25 + 2.0 * (((i + 1) * golden) % 1.0) + shift for i in range(num_params)],
        dtype=np.float64,
    )


class CompiledTemplate:
    """A pipeline run frozen into an angle-bindable skeleton.

    Produced by :func:`compile_template`; :meth:`bind` is the serving-path
    entry point.  All bindings share the tail circuit, conjugation tableau
    and Pauli rows — results are value-immutable by convention, so the
    sharing is safe and keeps a bind allocation-light.
    """

    def __init__(
        self,
        program: ParametricProgram,
        level: int,
        target: Target | None,
        skeleton: list[Gate],
        positions: list[int],
        chains: list[list[tuple[int, float]]],
        normalize: bool,
        tail: QuantumCircuit | None,
        conjugation: CliffordTableau | None,
        rotation_count: int,
        name: str,
        metadata_base: dict,
        extraction_metadata: dict,
        always_fallback: bool = False,
    ):
        self.program = program
        self.level = int(level)
        self.target = target
        self.name = name
        self.num_qubits = program.num_qubits
        self.num_params = program.num_params
        self.num_terms = program.num_terms
        self._skeleton = skeleton
        self._positions = positions
        self._chains = chains
        self._normalize = bool(normalize)
        self._tail = tail
        self._conjugation = conjugation
        self._rotation_count = int(rotation_count)
        self._metadata_base = metadata_base
        self._extraction_metadata = extraction_metadata
        self._always_fallback = bool(always_fallback)
        #: array-backend spec for the full-compile fallback path; the fast
        #: bind itself is host-side and backend-free (not serialized — a
        #: restored template re-resolves at the serving process's defaults)
        self._backend_spec = None
        #: pauli of each input term, materialized once and shared by every
        #: bind result's ``extraction.terms``
        self._row_paulis = (
            [program.table.row(index) for index in range(program.num_terms)]
            if tail is not None
            else []
        )
        self.binds = 0
        self.fallback_binds = 0

    # ------------------------------------------------------------------ #
    @property
    def skeleton_gate_count(self) -> int:
        return len(self._skeleton)

    @property
    def rotation_count(self) -> int:
        return self._rotation_count

    def __repr__(self) -> str:
        return (
            f"CompiledTemplate({self.program!r}, level={self.level}, "
            f"name={self.name!r}, {len(self._skeleton)} gates)"
        )

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind(self, params: Sequence[float] | np.ndarray) -> CompilationResult:
        """Compile this template at concrete angles.

        Validates ``params`` (arity + NaN/inf rejection), replays the merge
        chains, and stitches the skeleton into a fresh
        :class:`~repro.compiler.result.CompilationResult` — bit-identical to
        ``repro.compile`` of the bound program.  Degenerate bindings (a
        merged rotation within ``1e-12`` of zero, which the concrete peephole
        would delete) transparently fall back to the full pipeline.
        """
        array = validate_parameters(
            params, self.num_params, source="repro.parametric.bind"
        )
        start = time.perf_counter()
        self.binds += 1
        if not self._always_fallback:
            result = self._bind_fast(array, start)
            if result is not None:
                return result
        self.fallback_binds += 1
        return self._full_compile(array)

    def _chain_angles(self, coefficients: list[float]) -> list[float] | None:
        """Final rotation angles per chain, or ``None`` on a degenerate sum.

        Mirrors the streaming optimizer's float arithmetic exactly: angles
        accumulate as a raw left-to-right sum in merge order and every
        intermediate state is normalized with ``math.remainder(acc, 4*pi)``
        — any intermediate landing inside the kill window means the concrete
        engine would have deleted the gate, so the skeleton is invalid for
        this binding.
        """
        angles: list[float] = []
        append = angles.append
        if not self._normalize:
            # level 0 emits raw angles, never merges, never deletes
            for chain in self._chains:
                term, sign = chain[0]
                append(sign * coefficients[term])
            return angles
        remainder = math.remainder
        for chain in self._chains:
            acc = 0.0
            merged = 0.0
            for term, sign in chain:
                acc += sign * coefficients[term]
                merged = remainder(acc, _FOUR_PI)
                if -_ZERO_EPS < merged < _ZERO_EPS:
                    return None
            append(merged)
        return angles

    def _bind_fast(self, array: np.ndarray, start: float) -> CompilationResult | None:
        coefficients = self.program._evaluate_validated(array).tolist()
        angles = self._chain_angles(coefficients)
        if angles is None:
            return None

        # Substitute angles into the skeleton.  Gate is a frozen dataclass
        # with pure-validation __post_init__, so a trusted construction that
        # fills __dict__ directly is value-identical and skips the per-gate
        # validation cost on the microsecond path.
        gates = self._skeleton.copy()
        blank = object.__new__
        gate_cls = Gate
        for position, angle in zip(self._positions, angles):
            proto = gates[position]
            gate = blank(gate_cls)
            gate.__dict__.update(
                name=proto.name, qubits=proto.qubits, params=(angle,)
            )
            gates[position] = gate
        circuit = QuantumCircuit.from_trusted_gates(self.num_qubits, gates)

        extraction = None
        if self._tail is not None:
            terms: list[PauliTerm] = []
            append = terms.append
            term_cls = PauliTerm
            for pauli, coefficient in zip(self._row_paulis, coefficients):
                term = blank(term_cls)
                term.__dict__.update(pauli=pauli, coefficient=coefficient)
                append(term)
            extraction = ExtractionResult(
                optimized_circuit=circuit,
                extracted_clifford=self._tail,
                conjugation=self._conjugation,
                terms=terms,
                rotation_count=self._rotation_count,
                elapsed_seconds=0.0,
                metadata=dict(self._extraction_metadata),
            )

        metadata = dict(self._metadata_base)
        metadata["pass_timings"] = {}
        return CompilationResult(
            circuit=circuit,
            extracted_clifford=self._tail,
            extraction=extraction,
            compile_seconds=time.perf_counter() - start,
            name=self.name,
            metadata=metadata,
            properties=PropertySet(),
        )

    def _full_compile(self, array: np.ndarray) -> CompilationResult:
        return _compile_concrete(
            self.program.to_sum(array),
            target=self.target,
            level=self.level,
            backend=self._backend_spec,
        )

    # ------------------------------------------------------------------ #
    # Wire-format reconstruction (see repro.service.serialize)
    # ------------------------------------------------------------------ #
    @classmethod
    def restore(
        cls,
        program: ParametricProgram,
        level: int,
        target: Target | None,
        skeleton: list[Gate],
        positions: list[int],
        chains: list[list[tuple[int, float]]],
        normalize: bool,
        tail: QuantumCircuit | None,
        conjugation: CliffordTableau | None,
        rotation_count: int,
        name: str,
        metadata_base: dict,
        extraction_metadata: dict,
        always_fallback: bool,
    ) -> "CompiledTemplate":
        """Rebuild a template from serialized parts, skipping the trace."""
        return cls(
            program=program,
            level=level,
            target=target,
            skeleton=skeleton,
            positions=positions,
            chains=chains,
            normalize=normalize,
            tail=tail,
            conjugation=conjugation,
            rotation_count=rotation_count,
            name=name,
            metadata_base=metadata_base,
            extraction_metadata=extraction_metadata,
            always_fallback=always_fallback,
        )


# ---------------------------------------------------------------------- #
# Template construction
# ---------------------------------------------------------------------- #
def compile_template(
    program: ParametricProgram,
    target: "Target | str | None" = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline=None,
    backend=None,
) -> CompiledTemplate:
    """Run the preset pipeline once over a parametric program.

    Parameters mirror :func:`repro.compile` where they can: ``target`` may be
    ``None`` or a fully-connected device (constrained-coupling routing is a
    per-binding rewrite the skeleton cannot carry, and is rejected), and
    ``pipeline`` must stay ``None`` — only the preset levels have the
    angle-independence guarantee templates rely on.  ``backend`` selects the
    array backend the trace's packed engine runs on (explicit argument >
    ``target.array_backend`` > ``REPRO_ARRAY_BACKEND`` > numpy); the bound
    results are bit-identical regardless, since binding replays a host-side
    skeleton.
    """
    if not isinstance(program, ParametricProgram):
        raise CompilerError(
            "compile_template needs a ParametricProgram; wrap a concrete "
            "program with repro.compile instead"
        )
    if pipeline is not None:
        raise CompilerError(
            "templates support the preset levels only: a custom pipeline has "
            "no angle-independence guarantee to trace against"
        )
    if not isinstance(level, int) or isinstance(level, bool) or not (
        0 <= level <= MAX_OPTIMIZATION_LEVEL
    ):
        raise CompilerError(
            f"optimization level must be 0..{MAX_OPTIMIZATION_LEVEL}, got {level!r}"
        )
    device = as_target(target)
    if device is not None and not device.is_fully_connected:
        raise CompilerError(
            f"templates compile for all-to-all connectivity only; routing to "
            f"{device.name!r} inserts SWAPs whose peephole interactions are "
            "re-derived per binding — compile without a target"
        )

    backend_spec = backend
    if backend_spec is None and device is not None:
        backend_spec = device.array_backend

    num_terms = program.num_terms
    sentinel = np.arange(1, num_terms + 1, dtype=np.float64)
    sentinel_sum = SparsePauliSum.from_packed(program.table.copy(), sentinel)

    tail: QuantumCircuit | None = None
    conjugation: CliffordTableau | None = None
    rotation_count = 0
    if level >= 2:
        extractor = CliffordExtractor(**_EXTRACTION_FLAGS[level], fuse_peephole=False)
        trace = extractor.extract(sentinel_sum, backend=backend_spec)
        raw_gates = list(trace.optimized_circuit)
        tail = trace.extracted_clifford
        conjugation = trace.conjugation
        rotation_count = trace.rotation_count
    else:
        raw_gates = list(synthesize_trotter_circuit(sentinel_sum.terms, tree="chain"))

    if level == 0:
        # no peephole at level 0: the raw emission *is* the circuit
        skeleton = raw_gates
        positions = [
            index for index, gate in enumerate(raw_gates) if gate.name == "rz"
        ]
        codes = [[_sentinel_code(raw_gates[index].params[0])] for index in positions]
        normalize = False
    else:
        stream = _SymbolicStream(program.num_qubits)
        stream.extend(raw_gates)
        skeleton, positions, codes = stream.finalize()
        normalize = True
    chains = _chains_from_codes(codes, num_terms)

    template = CompiledTemplate(
        program=program,
        level=level,
        target=device,
        skeleton=skeleton,
        positions=positions,
        chains=chains,
        normalize=normalize,
        tail=tail,
        conjugation=conjugation,
        rotation_count=rotation_count,
        name="template",  # replaced by the calibration harvest below
        metadata_base={},
        extraction_metadata={},
    )
    template._backend_spec = backend_spec

    _calibrate(template, device, level)
    return template


def _calibrate(template: CompiledTemplate, device: Target | None, level: int) -> None:
    """Harvest angle-independent metadata and self-check the fast path.

    One concrete preset compile at generic angles supplies the pipeline
    name and metadata (all structural); the template's own fast bind at the
    same angles must then reproduce that result bit-for-bit, or construction
    fails with :class:`~repro.exceptions.CompilerError`.
    """
    program = template.program
    calibration = None
    for attempt in range(_CALIBRATION_ATTEMPTS):
        candidate = _generic_parameters(program.num_params, attempt)
        coefficients = program._evaluate_validated(candidate).tolist()
        if template._chain_angles(coefficients) is not None:
            calibration = candidate
            break
        if program.num_params == 0:
            break  # constant program: perturbing cannot change anything
    if calibration is None:
        # every calibration draw hits the peephole kill window (e.g. a
        # constant term folding to zero): the skeleton can never be used,
        # every bind takes the full-compile fallback
        template._always_fallback = True
        calibration = _generic_parameters(program.num_params, 0)

    reference = _compile_concrete(
        program.to_sum(calibration),
        target=device,
        level=level,
        backend=template._backend_spec,
    )
    template.name = reference.name
    template._metadata_base = {
        key: value
        for key, value in reference.metadata.items()
        if key != "pass_timings"
    }
    if reference.extraction is not None:
        template._extraction_metadata = dict(reference.extraction.metadata)
        template._rotation_count = int(reference.extraction.rotation_count)
    if template._always_fallback:
        return

    fast = template._bind_fast(np.asarray(calibration, dtype=np.float64), 0.0)
    mismatch = _diff_results(fast, reference)
    if mismatch is not None:
        raise CompilerError(
            f"template self-check failed: fast bind diverged from the "
            f"concrete level-{level} pipeline on {mismatch} — refusing to "
            "serve from this template"
        )


def _diff_results(
    fast: CompilationResult | None, reference: CompilationResult
) -> str | None:
    """The first field where the two results differ, or ``None``."""
    if fast is None:
        return "degeneracy detection (fast bind refused calibration angles)"
    if fast.circuit != reference.circuit:
        return "the optimized circuit"
    if (fast.extracted_clifford is None) != (reference.extracted_clifford is None):
        return "the presence of an extracted tail"
    if (
        fast.extracted_clifford is not None
        and fast.extracted_clifford != reference.extracted_clifford
    ):
        return "the extracted Clifford tail"
    fast_meta = {k: v for k, v in fast.metadata.items() if k != "pass_timings"}
    ref_meta = {k: v for k, v in reference.metadata.items() if k != "pass_timings"}
    if fast_meta != ref_meta:
        return "the result metadata"
    if (fast.extraction is None) != (reference.extraction is None):
        return "the presence of an extraction record"
    if fast.extraction is not None:
        if (
            fast.extraction.conjugation.content_key()
            != reference.extraction.conjugation.content_key()
        ):
            return "the conjugation tableau"
        if fast.extraction.terms != reference.extraction.terms:
            return "the extraction term list"
        if fast.extraction.rotation_count != reference.extraction.rotation_count:
            return "the rotation count"
        if fast.extraction.metadata != reference.extraction.metadata:
            return "the extraction metadata"
    if fast.name != reference.name:
        return "the pipeline name"
    return None
