"""Device description consumed by device-aware passes.

A :class:`Target` bundles what the compiler needs to know about the machine it
is compiling for: qubit count, connectivity (a
:class:`~repro.transpile.coupling.CouplingMap`, ``None`` meaning all-to-all)
and the native basis-gate set.  The evaluation devices of the paper's Fig. 11
are available as named factories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arrays import ArrayBackend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import SINGLE_QUBIT_GATES, TWO_QUBIT_GATES
from repro.exceptions import CompilerError
from repro.transpile.coupling import CouplingMap

#: the default native gate set assumed when a device does not specify one —
#: everything the circuit substrate can express, so the default never rejects
DEFAULT_BASIS_GATES = frozenset(SINGLE_QUBIT_GATES | TWO_QUBIT_GATES)


@dataclass(frozen=True)
class Target:
    """What the compiler knows about the device it is compiling for.

    ``array_backend`` selects the :class:`~repro.arrays.ArrayBackend` the
    packed conjugation engine runs on for programs compiled against this
    target (a registry name or an instance; ``None`` defers to the
    ``REPRO_ARRAY_BACKEND`` env override, then the numpy default).  An
    explicit ``backend=`` argument to a compile entry point wins over the
    target's setting.
    """

    num_qubits: int
    coupling: CouplingMap | None = None
    basis_gates: frozenset[str] = field(default=DEFAULT_BASIS_GATES)
    name: str = "generic"
    array_backend: "str | ArrayBackend | None" = None

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise CompilerError("a target needs at least one qubit")
        if self.coupling is not None and self.coupling.num_qubits != self.num_qubits:
            raise CompilerError(
                f"target has {self.num_qubits} qubits but its coupling map has "
                f"{self.coupling.num_qubits}"
            )
        if self.array_backend is not None and not isinstance(
            self.array_backend, (str, ArrayBackend)
        ):
            raise CompilerError(
                f"array_backend must be a backend name or ArrayBackend instance, "
                f"got {type(self.array_backend).__name__}"
            )

    def with_array_backend(self, backend: "str | ArrayBackend | None") -> "Target":
        """A copy of this target pinned to ``backend`` (presets stay presets)."""
        return replace(self, array_backend=backend)

    # ------------------------------------------------------------------ #
    @property
    def is_fully_connected(self) -> bool:
        """True when any qubit pair may interact directly."""
        if self.coupling is None:
            return True
        num_pairs = self.num_qubits * (self.num_qubits - 1) // 2
        return len(self.coupling.edges) >= num_pairs

    def supports_gate(self, gate_name: str) -> bool:
        return gate_name in self.basis_gates

    def validate_circuit(self, circuit: QuantumCircuit) -> None:
        """Raise when ``circuit`` cannot possibly fit on this target."""
        if circuit.num_qubits > self.num_qubits:
            raise CompilerError(
                f"circuit needs {circuit.num_qubits} qubits, "
                f"target {self.name!r} has {self.num_qubits}"
            )
        unsupported = {g.name for g in circuit} - self.basis_gates
        if unsupported:
            raise CompilerError(
                f"circuit uses gates outside target {self.name!r}'s basis: "
                f"{sorted(unsupported)}"
            )

    def __repr__(self) -> str:
        connectivity = "all-to-all" if self.coupling is None else self.coupling.name
        backend = ""
        if self.array_backend is not None:
            spec = self.array_backend
            backend_name = spec if isinstance(spec, str) else spec.name
            backend = f", array_backend={backend_name!r}"
        return (
            f"Target({self.name!r}, qubits={self.num_qubits}, "
            f"coupling={connectivity}{backend})"
        )

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coupling(cls, coupling: CouplingMap, basis_gates: frozenset[str] | None = None) -> "Target":
        return cls(
            num_qubits=coupling.num_qubits,
            coupling=coupling,
            basis_gates=DEFAULT_BASIS_GATES if basis_gates is None else basis_gates,
            name=coupling.name,
        )

    @classmethod
    def fully_connected(cls, num_qubits: int) -> "Target":
        return cls(num_qubits=num_qubits, coupling=None, name=f"full-{num_qubits}")

    @classmethod
    def sycamore(cls) -> "Target":
        """The 64-qubit 2-D grid stand-in for Google Sycamore (Fig. 11)."""
        return cls.from_coupling(CouplingMap.sycamore())

    @classmethod
    def ibm_manhattan(cls) -> "Target":
        """The 65-qubit heavy-hex stand-in for IBM Manhattan (Fig. 11)."""
        return cls.from_coupling(CouplingMap.ibm_manhattan())

    @classmethod
    def named(cls, name: str) -> "Target":
        """Resolve one of the known device names."""
        factories = {
            "sycamore": cls.sycamore,
            "sycamore-64": cls.sycamore,
            "ibm-manhattan": cls.ibm_manhattan,
            "ibm-manhattan-65": cls.ibm_manhattan,
        }
        try:
            return factories[name.strip().lower()]()
        except KeyError as error:
            raise CompilerError(
                f"unknown target {name!r}; available: {sorted(set(factories))}"
            ) from error


def as_target(target: "Target | CouplingMap | str | None") -> "Target | None":
    """Normalize the ``target=`` argument accepted by the public API."""
    if target is None or isinstance(target, Target):
        return target
    if isinstance(target, CouplingMap):
        return Target.from_coupling(target)
    if isinstance(target, str):
        return Target.named(target)
    raise CompilerError(f"cannot interpret {target!r} as a compilation target")
