"""A long-lived process pool for the compile stage.

:func:`repro.compile_many` historically spun up a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per batch, which is why
:func:`~repro.compiler.api.plan_batch` only reaches for processes above a
~20k-term cutoff — below that, interpreter startup plus ``import repro``
per worker costs more than the GIL-bound synthesis it parallelizes.
:class:`CompilePool` removes that startup tax: the workers are forked/spawned
**once**, pre-import :mod:`repro` (and with it numpy and the packed engine),
warm a per-worker :class:`~repro.clifford.engine.ConjugationCache`, and then
survive across batches.  A service scheduler that owns one can shard every
batch over real cores for the cost of pickling the programs alone, so the
profitable-batch cutoff drops from ~20k terms to the plain pool-overhead
cutoff (~2.5k).

The pool is deliberately forgiving about worker death: a batch that trips
:class:`~concurrent.futures.process.BrokenProcessPool` (a worker OOM-killed
or segfaulted mid-compile) marks the executor broken, tears it down, and
raises :class:`CompilePoolBrokenError`; the *next* use transparently builds a
fresh executor.  :func:`repro.compile_many` catches that error and falls back
to in-process threads, so callers see a slower batch, never a failed one.

Construction is cheap (the executor is created lazily on first use) and
``max_workers=0`` is an explicit "no pool" marker: :meth:`CompilePool.usable`
is false and every planner treats the pool as absent — the knob a service
operator uses to force the in-process thread path on a one-core box.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.exceptions import CompilerError


class CompilePoolBrokenError(CompilerError):
    """A pool batch died with its workers; the caller should fall back."""


#: per-worker conjugation cache, created by the pool initializer so the very
#: first batch a worker sees already pools its tableau freezes
_WORKER_CACHE = None


def _pool_initializer() -> None:
    """Run once per worker process: pre-import the engine, warm the cache."""
    global _WORKER_CACHE
    import repro  # noqa: F401 — the import itself is the warmup

    from repro.clifford.engine import ConjugationCache

    _WORKER_CACHE = ConjugationCache()


def _pool_worker(payload):
    """Compile one (pipeline, device, program, backend) payload in a worker."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:  # initializer skipped (never on CPython, but cheap)
        from repro.clifford.engine import ConjugationCache

        _WORKER_CACHE = ConjugationCache()
    pipeline, device, program, backend = payload
    result = pipeline.run(
        program,
        target=device,
        properties={"conjugation_cache": _WORKER_CACHE},
        backend=backend,
    )
    # as in the per-batch process path: never pickle the worker's whole
    # conjugation cache back with every result
    result.properties.pop("conjugation_cache", None)
    return result


def _warmup_probe() -> int:
    """A near-no-op task submitted per worker to force eager process spawn.

    The brief sleep keeps each probe in flight long enough that the executor
    has to spawn a distinct worker per probe instead of serving them all
    from the first one.
    """
    import time

    time.sleep(0.05)
    return os.getpid()


class CompilePool:
    """A reusable process pool dedicated to pipeline compilation.

    Parameters
    ----------
    max_workers:
        Pool width.  ``None`` resolves to ``os.cpu_count()`` (capped at 32);
        ``0`` disables the pool entirely (:attr:`usable` is false), which is
        how a service on a single-core box opts back into in-process
        compilation without changing any call sites.

    Thread-safe: the scheduler's worker threads may race batch submissions
    and a broken-pool teardown.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 32)
        self.max_workers = int(max_workers)
        if self.max_workers < 0:
            raise CompilerError(
                f"CompilePool needs max_workers >= 0, got {self.max_workers}"
            )
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self.batches = 0
        self.programs = 0
        self.restarts = 0
        self.breaks = 0

    # ------------------------------------------------------------------ #
    @property
    def usable(self) -> bool:
        """Whether planners may route batches here (``max_workers > 0``)."""
        return self.max_workers > 0

    @property
    def alive(self) -> bool:
        """Whether a live executor currently exists (it is created lazily)."""
        with self._lock:
            return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if not self.usable:
            raise CompilerError("this CompilePool is disabled (max_workers=0)")
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers, initializer=_pool_initializer
                )
                self.restarts += 1  # counts executor (re)creations; first is 1
            return self._executor

    def warm(self, timeout: float | None = 60.0) -> int:
        """Force the workers to spawn and finish importing; returns the count.

        Without this the first batch pays the spawn+import latency; a server
        calls it at startup so the pool is hot before traffic arrives.
        """
        if not self.usable:
            return 0
        executor = self._ensure_executor()
        futures = [executor.submit(_warmup_probe) for _ in range(self.max_workers)]
        pids = set()
        for future in futures:
            pids.add(future.result(timeout=timeout))
        return len(pids)

    # ------------------------------------------------------------------ #
    def map_compile(
        self,
        pipeline,
        device,
        programs,
        backend=None,
        chunksize: int = 1,
    ) -> list:
        """Compile ``programs`` through the warm workers, in input order.

        Raises :class:`CompilePoolBrokenError` when the pool dies mid-batch
        (the executor is torn down; the next call rebuilds it), so callers
        can fall back to an in-process strategy without losing the batch.
        """
        # Lazy import: repro.service imports this module, so a top-level
        # import of the fault registry would be circular.
        from repro.service import faults

        faults.fire("pool.dispatch")
        executor = self._ensure_executor()
        payloads = [(pipeline, device, program, backend) for program in programs]
        try:
            results = list(
                executor.map(_pool_worker, payloads, chunksize=max(1, int(chunksize)))
            )
        except BrokenProcessPool as error:
            self._discard_executor(executor)
            with self._lock:
                self.breaks += 1
            raise CompilePoolBrokenError(
                f"compile pool lost its workers mid-batch ({error}); "
                "the batch should fall back to in-process execution"
            ) from error
        with self._lock:
            self.batches += 1
            self.programs += len(payloads)
        return results

    def _discard_executor(self, executor: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the workers; the pool may be lazily revived afterwards."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "CompilePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """JSON-safe pool counters for ``/metrics``."""
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "alive": self._executor is not None,
                "batches": self.batches,
                "programs": self.programs,
                "restarts": self.restarts,
                "breaks": self.breaks,
            }

    def __repr__(self) -> str:
        return (
            f"CompilePool(max_workers={self.max_workers}, alive={self.alive}, "
            f"batches={self.batches})"
        )
