"""The pass pipeline: an ordered chain of passes with per-pass timing.

``Pipeline.run`` threads a :class:`~repro.compiler.context.Program` and a
:class:`~repro.compiler.context.PassContext` through its passes, measures each
pass's wall-clock time, and packages everything into the unified
:class:`~repro.compiler.result.CompilationResult` (with the timing breakdown
in ``metadata["pass_timings"]``).
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from repro.arrays import ArrayBackend, resolve_backend
from repro.clifford.engine import ConjugationCache
from repro.compiler.context import PassContext, Program, PropertySet
from repro.compiler.passes import Pass
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CompilerError, SynthesisError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm


class Pipeline:
    """An immutable, reusable chain of compiler passes."""

    def __init__(self, passes: Sequence[Pass], name: str = "custom"):
        self.passes: tuple[Pass, ...] = tuple(passes)
        self.name = name
        for entry in self.passes:
            if not isinstance(entry, Pass):
                raise CompilerError(f"{entry!r} is not a compiler pass")

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Pass]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    def __repr__(self) -> str:
        stages = " -> ".join(p.name for p in self.passes) or "(empty)"
        return f"Pipeline({self.name!r}: {stages})"

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def has_pass(self, pass_type: type) -> bool:
        return any(isinstance(p, pass_type) for p in self.passes)

    def then(self, *extra: Pass, name: str | None = None) -> "Pipeline":
        """A new pipeline with ``extra`` passes appended."""
        return Pipeline(self.passes + tuple(extra), name=name or self.name)

    # ------------------------------------------------------------------ #
    def run(
        self,
        terms: Sequence[PauliTerm] | SparsePauliSum,
        target: "Target | None" = None,
        properties: dict | None = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> CompilationResult:
        """Run every pass in order over ``terms`` and collect the result.

        ``backend`` selects the array backend the packed engine runs on;
        precedence is explicit argument > ``target.array_backend`` >
        ``REPRO_ARRAY_BACKEND`` > numpy.  The resolved backend is published
        to passes as ``context.properties["array_backend"]`` and recorded in
        ``metadata["array_backend"]``.
        """
        if not self.passes:
            raise CompilerError(f"pipeline {self.name!r} has no passes")
        source_sum = terms if isinstance(terms, SparsePauliSum) else None
        term_list = list(terms)
        device = as_target(target)
        if term_list:
            if source_sum is not None:
                # a sum guarantees a uniform register by construction
                num_qubits = source_sum.num_qubits
            else:
                num_qubits = term_list[0].num_qubits
                for term in term_list:
                    if term.num_qubits != num_qubits:
                        # same exception the synthesis stages raise for this
                        raise SynthesisError("all Pauli terms must act on the same qubit count")
            if device is not None and num_qubits > device.num_qubits:
                raise CompilerError(
                    f"program needs {num_qubits} qubits, "
                    f"target {device.name!r} has {device.num_qubits}"
                )
        backend_spec = backend
        if backend_spec is None and device is not None:
            backend_spec = device.array_backend
        array_backend = resolve_backend(backend_spec)
        context = PassContext(target=device, properties=PropertySet(properties or {}))
        context.properties["array_backend"] = array_backend
        # Every run carries a conjugation cache so the absorption machinery
        # (eager AbsorptionPrep or the result's lazy absorbers) freezes each
        # Clifford tail's packed conjugator at most once; repro.compile_many
        # injects a shared cache here to pool that work across programs.
        if context.properties["conjugation_cache"] is None:
            context.properties["conjugation_cache"] = ConjugationCache()
        program = Program(terms=term_list, sum=source_sum)

        start = time.perf_counter()
        for entry in self.passes:
            pass_start = time.perf_counter()
            entry.run(program, context)
            context.record_timing(entry.name, time.perf_counter() - pass_start)
        elapsed = time.perf_counter() - start

        if program.circuit is None:
            raise CompilerError(
                f"pipeline {self.name!r} produced no circuit; "
                "it needs at least one synthesis pass"
            )
        metadata = dict(program.metadata)
        metadata["pass_timings"] = dict(context.pass_timings)
        metadata["passes"] = self.pass_names()
        metadata["array_backend"] = array_backend.name
        return CompilationResult(
            circuit=program.circuit,
            extracted_clifford=program.extracted_clifford,
            extraction=program.extraction,
            compile_seconds=elapsed,
            name=self.name,
            metadata=metadata,
            properties=PropertySet(context.properties),
        )

    #: alias so a Pipeline can stand in for the legacy ``QuCLEAR``-style
    #: objects that expose ``.compile(terms)``
    def compile(
        self,
        terms: Sequence[PauliTerm] | SparsePauliSum,
        target: "Target | None" = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> CompilationResult:
        return self.run(terms, target=target, backend=backend)


def with_routing(pipeline: Pipeline) -> Pipeline:
    """``pipeline`` extended with the standard routing tail, if it has none.

    The tail matches the paper's device-mapping flow: SWAP-insertion routing
    with the SWAPs decomposed into CNOTs, followed by a peephole sweep over
    the freshly exposed cancellations.
    """
    from repro.compiler.passes import PostRoutingPeephole, SabreRouting

    if pipeline.has_pass(SabreRouting):
        return pipeline
    return pipeline.then(
        SabreRouting(decompose_swaps=True),
        PostRoutingPeephole(),
        name=f"{pipeline.name}+routing",
    )


def ensure_device_routing(pipeline: Pipeline, device: "Target | None") -> Pipeline:
    """Append the routing tail when a constrained device demands it.

    A routing-less pipeline would silently emit gates the device cannot
    execute, so every ``target``-accepting entry point (``repro.compile``,
    ``CompilerRegistry.compile``) funnels through this policy.
    """
    if device is None or device.is_fully_connected:
        return pipeline
    return with_routing(pipeline)
