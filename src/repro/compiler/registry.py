"""The unified compiler registry.

One name-indexed catalogue of every compiler pipeline — the QuCLEAR presets
*and* the re-implemented baselines — all returning the same
:class:`~repro.compiler.result.CompilationResult`.  Lookups are
case-insensitive, so the evaluation harness's display name ``"QuCLEAR"``
resolves to the ``"quclear"`` pipeline.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.compiler.passes import FunctionCompilerPass
from repro.compiler.pipeline import Pipeline, ensure_device_routing
from repro.compiler.presets import preset_pipeline
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CompilerError
from repro.paulis.term import PauliTerm


class CompilerRegistry:
    """Name-indexed access to every registered compiler pipeline."""

    def __init__(self) -> None:
        self._pipelines: dict[str, Pipeline] = {}

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower()

    def register(self, name: str, pipeline: Pipeline, overwrite: bool = False) -> Pipeline:
        """Register ``pipeline`` under ``name`` (case-insensitive)."""
        key = self._normalize(name)
        if key in self._pipelines and not overwrite:
            raise CompilerError(f"compiler {name!r} is already registered")
        self._pipelines[key] = pipeline
        return pipeline

    def get(self, name: str) -> Pipeline:
        try:
            return self._pipelines[self._normalize(name)]
        except KeyError as error:
            raise CompilerError(
                f"unknown compiler {name!r}; available: {self.names()}"
            ) from error

    def names(self) -> list[str]:
        return sorted(self._pipelines)

    def compile(
        self,
        name: str,
        terms: Sequence[PauliTerm],
        target: Target | None = None,
    ) -> CompilationResult:
        """Run the pipeline registered under ``name`` on ``terms``.

        As with :func:`repro.compile`, a routing stage is appended when a
        constrained ``target`` is given to a pipeline that has none, so the
        returned circuit always fits the device.
        """
        device = as_target(target)
        pipeline = ensure_device_routing(self.get(name), device)
        return pipeline.run(terms, target=device)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._pipelines

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._pipelines)

    def __repr__(self) -> str:
        return f"CompilerRegistry({self.names()})"


def _baseline_pipeline(fn: Callable, pass_name: str, pipeline_name: str) -> Pipeline:
    return Pipeline([FunctionCompilerPass(fn, pass_name)], name=pipeline_name)


def _build_default_registry() -> CompilerRegistry:
    # Imported inside the function to break the import cycle: the baselines
    # package itself imports repro.compiler.result, so these modules must not
    # load before this module's own imports have finished.
    from repro.baselines.naive import compile_naive, compile_qiskit_like
    from repro.baselines.paulihedral import compile_paulihedral_like
    from repro.baselines.rustiq import compile_rustiq_like
    from repro.baselines.tket import compile_tket_like

    registry = CompilerRegistry()
    registry.register("quclear", preset_pipeline(3).then(name="quclear"))
    registry.register("naive", _baseline_pipeline(compile_naive, "NaiveSynthesis", "naive"))
    registry.register(
        "qiskit-like",
        _baseline_pipeline(compile_qiskit_like, "QiskitLikeSynthesis", "qiskit-like"),
    )
    registry.register(
        "paulihedral-like",
        _baseline_pipeline(compile_paulihedral_like, "PaulihedralSynthesis", "paulihedral-like"),
    )
    registry.register(
        "tket-like", _baseline_pipeline(compile_tket_like, "TketSynthesis", "tket-like")
    )
    registry.register(
        "rustiq-like", _baseline_pipeline(compile_rustiq_like, "RustiqSynthesis", "rustiq-like")
    )
    return registry


#: the process-wide default registry used by :func:`repro.compile`
DEFAULT_REGISTRY = _build_default_registry()


def get_registry() -> CompilerRegistry:
    """The default process-wide :class:`CompilerRegistry`."""
    return DEFAULT_REGISTRY
