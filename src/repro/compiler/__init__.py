"""Composable pass-pipeline compiler API.

The subsystem decomposes compilation into small passes chained by a
:class:`Pipeline`, compiling for a :class:`Target` and producing one unified
:class:`CompilationResult` whatever the pipeline:

* :class:`Pass` — the pass protocol (``run(program, context)``), with the
  QuCLEAR stages wrapped as :class:`GroupCommuting`,
  :class:`CliffordExtraction`, :class:`Peephole`, :class:`SabreRouting` and
  :class:`AbsorptionPrep`;
* :class:`PassContext` / :class:`PropertySet` — per-run state: analysis
  properties, per-pass timings, the target;
* :class:`Pipeline` — an ordered pass chain with per-pass wall-clock timing
  (surfaced as ``result.metadata["pass_timings"]``);
* :func:`preset_pipeline` — optimization levels 0..3 (3 = full QuCLEAR);
* :class:`CompilerRegistry` / :func:`get_registry` — the unified catalogue of
  QuCLEAR and every baseline compiler;
* :func:`compile` — the one-call entry point, re-exported as
  :func:`repro.compile`.
"""

from repro.compiler.result import CompilationResult
from repro.compiler.context import PassContext, Program, PropertySet
from repro.compiler.target import DEFAULT_BASIS_GATES, Target, as_target
from repro.compiler.passes import (
    AbsorptionPrep,
    CliffordExtraction,
    FunctionCompilerPass,
    GroupCommuting,
    NaiveSynthesis,
    Pass,
    Peephole,
    PostRoutingPeephole,
    SabreRouting,
)
from repro.compiler.pipeline import Pipeline, with_routing
from repro.compiler.presets import (
    MAX_OPTIMIZATION_LEVEL,
    preset_pipeline,
    quclear_passes,
    quclear_pipeline,
    quclear_preset,
)
from repro.compiler.registry import DEFAULT_REGISTRY, CompilerRegistry, get_registry
from repro.compiler.api import (
    BatchPlan,
    compile,
    compile_many,
    plan_batch,
    validate_program,
)
from repro.compiler.pool import CompilePool, CompilePoolBrokenError

__all__ = [
    "CompilationResult",
    "PassContext",
    "Program",
    "PropertySet",
    "Target",
    "DEFAULT_BASIS_GATES",
    "as_target",
    "Pass",
    "GroupCommuting",
    "CliffordExtraction",
    "NaiveSynthesis",
    "Peephole",
    "PostRoutingPeephole",
    "SabreRouting",
    "AbsorptionPrep",
    "FunctionCompilerPass",
    "Pipeline",
    "MAX_OPTIMIZATION_LEVEL",
    "preset_pipeline",
    "quclear_passes",
    "quclear_pipeline",
    "quclear_preset",
    "CompilerRegistry",
    "DEFAULT_REGISTRY",
    "get_registry",
    "compile",
    "compile_many",
    "BatchPlan",
    "CompilePool",
    "CompilePoolBrokenError",
    "plan_batch",
    "validate_program",
    "with_routing",
]
