"""Preset pipelines: ``optimization_level`` 0 to 3.

* **0** — naive direct synthesis, no optimization (the "native" column of
  Table II);
* **1** — naive synthesis plus local peephole rewriting (the Qiskit-O3
  stand-in), routed to the target when one is given;
* **2** — Clifford Extraction with the recursive tree but without the greedy
  in-block reordering or cross-block lookahead (a cheaper QuCLEAR);
* **3** — the full QuCLEAR flow of the paper's Fig. 6: commuting-block
  grouping, full-featured Clifford Extraction, peephole rewriting, and
  routing to the target (the absorbers are built lazily by the result).

When no target is supplied the routing pass is a no-op, so a level-3 run on
an all-to-all device produces exactly the circuit of the legacy
``QuCLEAR().compile(...)``.
"""

from __future__ import annotations

from repro.compiler.passes import (
    CliffordExtraction,
    GroupCommuting,
    NaiveSynthesis,
    Peephole,
    PostRoutingPeephole,
    SabreRouting,
)
from repro.compiler.pipeline import Pipeline
from repro.exceptions import CompilerError

#: highest supported optimization level
MAX_OPTIMIZATION_LEVEL = 3


def quclear_passes(
    reorder_within_blocks: bool = True,
    recursive_tree: bool = True,
    cross_block_lookahead: bool = True,
    local_optimize: bool = True,
    max_lookahead: int | None = None,
) -> list:
    """The logical-circuit portion of the QuCLEAR flow as a pass list.

    This is exactly what the legacy ``QuCLEAR(...)`` object ran: grouping,
    extraction with the requested feature flags, and (optionally) the
    peephole pass — no routing, no absorption preparation.

    When local optimization is requested the extraction pass streams its
    emission through the wire-indexed peephole engine (``fuse_peephole``):
    the optimized tail is built once, at gate-append time, and the trailing
    :class:`Peephole` pass reduces to a fixpoint check.
    """
    passes: list = [
        GroupCommuting(),
        CliffordExtraction(
            reorder_within_blocks=reorder_within_blocks,
            recursive_tree=recursive_tree,
            cross_block_lookahead=cross_block_lookahead,
            max_lookahead=max_lookahead,
            fuse_peephole=local_optimize,
        ),
    ]
    if local_optimize:
        passes.append(Peephole())
    return passes


def quclear_pipeline(name: str = "quclear", **flags) -> Pipeline:
    """A logical-only QuCLEAR pipeline with the legacy feature flags."""
    return Pipeline(quclear_passes(**flags), name=name)


def _device_tail() -> list:
    """The device stages shared by the full presets.

    Absorption preparation is deliberately *not* part of the presets: the
    result builds (and caches) the absorbers lazily on first use, so eagerly
    constructing them would only inflate the compile-time measurement that
    Table III compares against the baselines (the paper reports absorption
    runtime separately, in Table IV).
    """
    return [SabreRouting(), PostRoutingPeephole()]


def quclear_preset(name: str = "quclear", **flags) -> Pipeline:
    """The full QuCLEAR preset (grouping, extraction, peephole, routing)
    with custom feature flags — what level 3 runs."""
    return Pipeline(quclear_passes(**flags) + _device_tail(), name=name)


def preset_pipeline(level: int = MAX_OPTIMIZATION_LEVEL) -> Pipeline:
    """The preset pipeline for ``optimization_level = level`` (0..3)."""
    if level == 0:
        return Pipeline([NaiveSynthesis()], name="level0")
    if level == 1:
        return Pipeline(
            [NaiveSynthesis(), Peephole(), SabreRouting(), PostRoutingPeephole()],
            name="level1",
        )
    if level == 2:
        return quclear_preset(
            name="level2",
            reorder_within_blocks=False,
            cross_block_lookahead=False,
        )
    if level == 3:
        return quclear_preset(name="level3")
    raise CompilerError(
        f"optimization level must be 0..{MAX_OPTIMIZATION_LEVEL}, got {level!r}"
    )
