"""The compiler entry points: :func:`repro.compile` and :func:`repro.compile_many`."""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arrays import ArrayBackend
from repro.clifford.engine import ConjugationCache
from repro.compiler.pipeline import Pipeline, ensure_device_routing
from repro.compiler.pool import CompilePool, CompilePoolBrokenError
from repro.compiler.presets import MAX_OPTIMIZATION_LEVEL, preset_pipeline
from repro.compiler.registry import get_registry
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CompilerError, InvalidProgramError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap

#: executor strategies accepted by :func:`compile_many` ("pool" routes the
#: batch through a caller-supplied long-lived :class:`CompilePool`)
_EXECUTORS = ("auto", "threads", "processes", "serial", "pool")


def validate_program(
    program: Sequence[PauliTerm] | SparsePauliSum,
    source: str = "repro.compile",
    index: int | None = None,
) -> None:
    """Up-front program checks shared by every compile entry point.

    Raises :class:`~repro.exceptions.InvalidProgramError` for an empty
    program, one acting on zero qubits, or one carrying NaN/inf rotation
    coefficients — the malformed shapes that otherwise surface as whatever
    deep internal error hits them first (``terms[0]`` IndexError,
    packed-shape mismatches, NaN-poisoned cache keys, ...).  ``source``
    names the entry point and ``index`` the batch position, so the message
    points at the offending request.
    """
    where = f"{source}: program" if index is None else f"{source}: program {index}"
    if isinstance(program, SparsePauliSum):
        num_terms = len(program)
        num_qubits = program.num_qubits
    else:
        num_terms = len(program)
        num_qubits = program[0].num_qubits if num_terms else 0
    if num_terms == 0:
        raise InvalidProgramError(
            f"{where} is empty — a compilation needs at least one Pauli rotation"
        )
    if num_qubits < 1:
        raise InvalidProgramError(
            f"{where} acts on zero qubits — every Pauli term needs at least one qubit"
        )
    if isinstance(program, SparsePauliSum):
        finite = bool(np.isfinite(program.coefficient_vector()).all())
    else:
        finite = all(math.isfinite(term.coefficient) for term in program)
    if not finite:
        raise InvalidProgramError(
            f"{where} contains NaN/inf rotation coefficients — refusing to "
            "compile (they would flow into the packed store and poison cache keys)"
        )


def _resolve_pipeline(
    pipeline: Pipeline | str | None, level: int
) -> Pipeline:
    if pipeline is None:
        return preset_pipeline(level)
    if isinstance(pipeline, Pipeline):
        return pipeline
    if isinstance(pipeline, str):
        return get_registry().get(pipeline)
    raise CompilerError(f"cannot interpret {pipeline!r} as a pipeline")


def compile(
    terms: Sequence[PauliTerm] | SparsePauliSum,
    target: Target | CouplingMap | str | None = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline: Pipeline | str | None = None,
    backend: "str | ArrayBackend | None" = None,
) -> CompilationResult:
    """Compile a Pauli-rotation program.

    Parameters
    ----------
    terms:
        The program: a sequence of :class:`~repro.paulis.term.PauliTerm`
        rotations or a :class:`~repro.paulis.sum.SparsePauliSum`.  A sum is
        the fast path — its bit-packed store flows through the grouping and
        extraction passes directly, with no per-term re-packing.
    target:
        Optional device to compile for — a :class:`Target`, a
        :class:`~repro.transpile.coupling.CouplingMap`, or a known device
        name (``"sycamore"``, ``"ibm-manhattan"``).  ``None`` compiles for an
        all-to-all device.
    level:
        Preset optimization level 0..3 (3 = the full QuCLEAR flow).
    pipeline:
        Explicit pipeline to run instead of a preset: a
        :class:`~repro.compiler.pipeline.Pipeline` instance or the name of a
        registered compiler (``"quclear"``, ``"qiskit-like"``, ...).
    backend:
        Array backend for the packed conjugation engine — a
        :mod:`repro.arrays` registry name (``"numpy"``, ``"cupy"``,
        ``"reference"``) or an :class:`~repro.arrays.ArrayBackend` instance.
        Precedence: this argument > ``target.array_backend`` >
        ``REPRO_ARRAY_BACKEND`` > numpy.  The resolved name lands in
        ``result.metadata["array_backend"]``.
    """
    if not isinstance(terms, SparsePauliSum):
        terms = list(terms)
    validate_program(terms, source="repro.compile")
    resolved = _resolve_pipeline(pipeline, level)
    device = as_target(target)
    return ensure_device_routing(resolved, device).run(terms, target=device, backend=backend)


# ---------------------------------------------------------------------- #
# Batch compilation
# ---------------------------------------------------------------------- #
def _run_one(
    pipeline: Pipeline,
    device: Target | None,
    program: Sequence[PauliTerm] | SparsePauliSum,
    cache: ConjugationCache | None,
    backend: "str | ArrayBackend | None" = None,
) -> CompilationResult:
    properties = {"conjugation_cache": cache} if cache is not None else None
    return pipeline.run(program, target=device, properties=properties, backend=backend)


#: per-process conjugation cache for the ``executor="processes"`` path (a
#: cache object cannot be shared across process boundaries)
_PROCESS_CACHE: ConjugationCache | None = None


def _process_worker(payload) -> CompilationResult:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = ConjugationCache()
    pipeline, device, program, backend = payload
    result = _run_one(pipeline, device, program, _PROCESS_CACHE, backend=backend)
    # Don't ship the whole per-process cache back with every result: the
    # pickle payload would grow as O(results x cache size).  The result's
    # lazy absorbers tolerate a missing cache (PropertySet reads None).
    result.properties.pop("conjugation_cache", None)
    return result


def _default_worker_count(num_programs: int) -> int:
    return max(1, min(num_programs, os.cpu_count() or 1, 32))


#: below this many total Pauli terms a batch is too small for any worker
#: pool to amortize its startup + handoff overhead (measured: the 8-program
#: small bench tier, ~600 terms, compiled *slower* under threads than
#: sequentially)
SERIAL_BATCH_TERMS = 2500

#: above this many total terms the per-program synthesis work (pure-Python,
#: GIL-bound) dwarfs process startup + result pickling, so a process pool
#: actually scales; in between, threads at least overlap the numpy segments
PROCESS_BATCH_TERMS = 20000

#: with a *live* :class:`~repro.compiler.pool.CompilePool` (workers already
#: spawned, repro imported, conjugation caches warm) the only per-batch cost
#: left is pickling, so the processes cutoff collapses to the plain
#: pool-overhead cutoff — any batch worth parallelizing at all is worth
#: sending to the warm pool
POOL_BATCH_TERMS = SERIAL_BATCH_TERMS


@dataclass(frozen=True)
class BatchPlan:
    """How :func:`compile_many` will execute a batch.

    ``executor`` is the *resolved* strategy (never ``"auto"``), ``chunksize``
    the per-submission chunk for the process pool, and ``reason`` a short
    human-readable justification — the benchmark records the plan alongside
    the measured batch speedup.
    """

    executor: str
    max_workers: int
    chunksize: int
    num_programs: int
    total_terms: int
    reason: str


def plan_batch(
    programs: Sequence[Sequence[PauliTerm] | SparsePauliSum],
    max_workers: int | None = None,
    executor: str = "auto",
    pool: "CompilePool | None" = None,
) -> BatchPlan:
    """Resolve the executor strategy for a batch, overhead-aware.

    ``"auto"`` falls back to sequential execution for small batches/programs
    (where pool startup and GIL contention outweigh any overlap), picks a
    chunked process pool for large batches (the synthesis passes are
    GIL-bound Python), and threads for the middle ground.  An explicit
    ``executor`` is honored, with one degenerate exception: a single-program
    or single-worker batch always resolves to ``"serial"`` (there is nothing
    to parallelize, so no pool is spun up).

    ``pool`` is a live :class:`~repro.compiler.pool.CompilePool`: its workers
    are already spawned and warm, so ``"auto"`` routes any batch above the
    plain pool-overhead cutoff (:data:`POOL_BATCH_TERMS`) to it instead of
    waiting for the much higher fresh-process cutoff.  A disabled pool
    (``max_workers=0``) is treated as absent.
    """
    if executor not in _EXECUTORS:
        raise CompilerError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
    if executor == "pool" and (pool is None or not pool.usable):
        raise CompilerError(
            "executor='pool' needs a usable CompilePool (max_workers > 0) "
            "passed as pool="
        )
    from repro.parametric.program import BoundProgram

    program_list = list(programs)
    # a bound template replays a pre-compiled skeleton in microseconds — it
    # contributes no synthesis work for a pool to amortize, so it plans as
    # zero terms
    sizes = [
        0 if isinstance(program, BoundProgram) else len(program)
        for program in program_list
    ]
    total_terms = sum(sizes)
    if program_list and all(
        isinstance(program, BoundProgram) for program in program_list
    ):
        return BatchPlan(
            "serial",
            1,
            1,
            len(program_list),
            0,
            "every program is a bound template; binds replay inline in "
            "microseconds, no pool can help",
        )
    workers = (
        max_workers if max_workers is not None else _default_worker_count(len(program_list))
    )
    chunksize = max(1, len(program_list) // (workers * 4)) if workers else 1
    if executor == "pool":
        if len(program_list) <= 1:
            return BatchPlan(
                "serial", 1, 1, len(program_list), total_terms, "single program or worker"
            )
        pool_chunksize = max(1, len(program_list) // (pool.max_workers * 4))
        return BatchPlan(
            "pool",
            pool.max_workers,
            pool_chunksize,
            len(program_list),
            total_terms,
            "explicit executor='pool'",
        )
    if executor != "auto":
        reason = f"explicit executor={executor!r}"
        if len(program_list) <= 1 or workers <= 1:
            executor, reason = "serial", "single program or worker"
        return BatchPlan(executor, workers, chunksize, len(program_list), total_terms, reason)
    if len(program_list) <= 1:
        return BatchPlan(
            "serial", 1, 1, len(program_list), total_terms, "single program or worker"
        )
    if total_terms < SERIAL_BATCH_TERMS:
        return BatchPlan(
            "serial",
            1,
            1,
            len(program_list),
            total_terms,
            f"batch of {total_terms} terms is below the {SERIAL_BATCH_TERMS}-term "
            "pool-overhead cutoff",
        )
    if pool is not None and pool.usable and total_terms >= POOL_BATCH_TERMS:
        pool_chunksize = max(1, len(program_list) // (pool.max_workers * 4))
        return BatchPlan(
            "pool",
            pool.max_workers,
            pool_chunksize,
            len(program_list),
            total_terms,
            f"batch of {total_terms} terms rides the live warm compile pool: "
            "worker spawn and repro import are already paid, only pickling is left",
        )
    if workers <= 1:
        return BatchPlan(
            "serial", 1, 1, len(program_list), total_terms, "single program or worker"
        )
    if total_terms >= PROCESS_BATCH_TERMS:
        return BatchPlan(
            "processes",
            workers,
            chunksize,
            len(program_list),
            total_terms,
            f"batch of {total_terms} terms amortizes process startup; synthesis "
            "is GIL-bound so threads cannot scale it",
        )
    return BatchPlan(
        "threads",
        workers,
        chunksize,
        len(program_list),
        total_terms,
        "mid-size batch: threads overlap the numpy segments without pickling",
    )


def compile_many(
    programs: Sequence[Sequence[PauliTerm] | SparsePauliSum],
    target: Target | CouplingMap | str | None = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline: Pipeline | str | None = None,
    max_workers: int | None = None,
    executor: str = "auto",
    conjugation_cache: ConjugationCache | None = None,
    backend: "str | ArrayBackend | None" = None,
    pool: CompilePool | None = None,
) -> list[CompilationResult]:
    """Compile a batch of independent Pauli-rotation programs.

    Every program goes through the same resolved pipeline (preset ``level``,
    explicit ``pipeline``, or registered name — identical semantics to
    :func:`repro.compile`), sharded across a :mod:`concurrent.futures`
    worker pool.  Results come back in input order.

    A single :class:`~repro.clifford.engine.ConjugationCache` is shared by
    all workers (and attached to each run's property set), so programs whose
    extraction produces the same Clifford tail freeze the packed conjugation
    map only once; pass ``conjugation_cache`` to share it across several
    ``compile_many`` calls.

    Parameters
    ----------
    programs:
        The batch; each entry is what :func:`repro.compile` accepts as
        ``terms``, or a :class:`~repro.parametric.BoundProgram` (a compiled
        template plus one parameter vector), which binds inline instead of
        joining the worker pool.
    target, level, pipeline:
        As in :func:`repro.compile`, applied to every program.
    max_workers:
        Worker-pool width; defaults to ``min(len(programs), cpu_count, 32)``.
    executor:
        ``"auto"`` (the default) resolves the strategy with
        :func:`plan_batch` — sequential for small batches (pool startup and
        GIL contention made small-tier batches *slower* than a plain loop),
        a chunked process pool for large ones (the synthesis passes are
        GIL-bound Python), threads in between.  ``"serial"``, ``"threads"``
        and ``"processes"`` force the respective strategy; with
        ``"processes"`` the conjugation cache is per-process and submissions
        are chunked to amortize pickling.
    backend:
        Array backend for the packed engine, applied to every program in the
        batch (same precedence as :func:`repro.compile`).  Backend names and
        the built-in backend instances are picklable, so the setting survives
        the ``"processes"`` path.
    pool:
        A long-lived :class:`~repro.compiler.pool.CompilePool` whose warm
        workers take the batch instead of a per-call pool: ``"auto"`` routes
        any batch above the plain pool-overhead cutoff to it (the fresh
        process-startup cutoff no longer applies), and ``executor="pool"``
        forces it.  A batch that loses its pool workers mid-flight
        transparently falls back to in-process threads — slower, never
        failed.  Like the ``"processes"`` path, pool workers keep private
        per-process conjugation caches, so a caller-supplied
        ``conjugation_cache`` is only consulted by the in-process strategies.
    """
    from repro.parametric.program import BoundProgram

    program_list = [
        program
        if isinstance(program, (SparsePauliSum, BoundProgram))
        else list(program)
        for program in programs
    ]
    if not program_list:
        return []

    # Bound templates ride along in a mixed batch but never join the worker
    # pool: each one replays its template's skeleton inline (microseconds,
    # already validated at construction), while the regular programs flow
    # through the planned batch below.  ``target``/``level``/``pipeline``
    # do not apply to a bind — those were fixed when its template compiled.
    bind_indices = [
        index
        for index, program in enumerate(program_list)
        if isinstance(program, BoundProgram)
    ]
    if bind_indices:
        results: "list[CompilationResult | None]" = [None] * len(program_list)
        for index in bind_indices:
            bound = program_list[index]
            results[index] = bound.template.bind(bound.params)
        regular = [
            (index, program)
            for index, program in enumerate(program_list)
            if not isinstance(program, BoundProgram)
        ]
        if regular:
            compiled = compile_many(
                [program for _, program in regular],
                target=target,
                level=level,
                pipeline=pipeline,
                max_workers=max_workers,
                executor=executor,
                conjugation_cache=conjugation_cache,
                backend=backend,
            )
            for (index, _), result in zip(regular, compiled):
                results[index] = result
        return results

    for index, program in enumerate(program_list):
        validate_program(program, source="repro.compile_many", index=index)
    plan = plan_batch(program_list, max_workers=max_workers, executor=executor, pool=pool)
    if executor == "auto" and plan.executor == "processes" and conjugation_cache is not None:
        # the documented cache-sharing contract: a caller-supplied cache
        # pools conjugator freezes across calls, which only works in-process
        # (the process path keeps a private per-worker cache and strips it
        # from results) — auto must not silently downgrade that
        plan = BatchPlan(
            "threads",
            plan.max_workers,
            plan.chunksize,
            plan.num_programs,
            plan.total_terms,
            "caller-supplied conjugation cache is shareable only in-process; "
            "keeping threads instead of auto-selecting processes",
        )
    resolved = _resolve_pipeline(pipeline, level)
    device = as_target(target)
    routed = ensure_device_routing(resolved, device)
    cache = conjugation_cache if conjugation_cache is not None else ConjugationCache()

    if plan.executor == "serial":
        return [
            _run_one(routed, device, program, cache, backend=backend)
            for program in program_list
        ]

    if plan.executor == "pool":
        try:
            return pool.map_compile(
                routed, device, program_list, backend=backend, chunksize=plan.chunksize
            )
        except CompilePoolBrokenError:
            # the warm workers died mid-batch (OOM kill, segfault): degrade
            # to in-process threads so the batch still completes; the pool
            # rebuilds itself lazily for the next one
            workers = max(1, plan.max_workers)
            with ThreadPoolExecutor(max_workers=workers) as fallback:
                return list(
                    fallback.map(
                        lambda program: _run_one(
                            routed, device, program, cache, backend=backend
                        ),
                        program_list,
                    )
                )

    if plan.executor == "processes":
        payloads = [(routed, device, program, backend) for program in program_list]
        with ProcessPoolExecutor(max_workers=plan.max_workers) as pool:
            return list(pool.map(_process_worker, payloads, chunksize=plan.chunksize))

    with ThreadPoolExecutor(max_workers=plan.max_workers) as pool:
        return list(
            pool.map(
                lambda program: _run_one(routed, device, program, cache, backend=backend),
                program_list,
            )
        )
