"""The compiler entry points: :func:`repro.compile` and :func:`repro.compile_many`."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

from repro.clifford.engine import ConjugationCache
from repro.compiler.pipeline import Pipeline, ensure_device_routing
from repro.compiler.presets import MAX_OPTIMIZATION_LEVEL, preset_pipeline
from repro.compiler.registry import get_registry
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CompilerError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap

#: executor strategies accepted by :func:`compile_many`
_EXECUTORS = ("auto", "threads", "processes", "serial")


def _resolve_pipeline(
    pipeline: Pipeline | str | None, level: int
) -> Pipeline:
    if pipeline is None:
        return preset_pipeline(level)
    if isinstance(pipeline, Pipeline):
        return pipeline
    if isinstance(pipeline, str):
        return get_registry().get(pipeline)
    raise CompilerError(f"cannot interpret {pipeline!r} as a pipeline")


def compile(
    terms: Sequence[PauliTerm] | SparsePauliSum,
    target: Target | CouplingMap | str | None = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline: Pipeline | str | None = None,
) -> CompilationResult:
    """Compile a Pauli-rotation program.

    Parameters
    ----------
    terms:
        The program: a sequence of :class:`~repro.paulis.term.PauliTerm`
        rotations or a :class:`~repro.paulis.sum.SparsePauliSum`.  A sum is
        the fast path — its bit-packed store flows through the grouping and
        extraction passes directly, with no per-term re-packing.
    target:
        Optional device to compile for — a :class:`Target`, a
        :class:`~repro.transpile.coupling.CouplingMap`, or a known device
        name (``"sycamore"``, ``"ibm-manhattan"``).  ``None`` compiles for an
        all-to-all device.
    level:
        Preset optimization level 0..3 (3 = the full QuCLEAR flow).
    pipeline:
        Explicit pipeline to run instead of a preset: a
        :class:`~repro.compiler.pipeline.Pipeline` instance or the name of a
        registered compiler (``"quclear"``, ``"qiskit-like"``, ...).
    """
    resolved = _resolve_pipeline(pipeline, level)
    device = as_target(target)
    return ensure_device_routing(resolved, device).run(terms, target=device)


# ---------------------------------------------------------------------- #
# Batch compilation
# ---------------------------------------------------------------------- #
def _run_one(
    pipeline: Pipeline,
    device: Target | None,
    program: Sequence[PauliTerm] | SparsePauliSum,
    cache: ConjugationCache | None,
) -> CompilationResult:
    properties = {"conjugation_cache": cache} if cache is not None else None
    return pipeline.run(program, target=device, properties=properties)


#: per-process conjugation cache for the ``executor="processes"`` path (a
#: cache object cannot be shared across process boundaries)
_PROCESS_CACHE: ConjugationCache | None = None


def _process_worker(payload) -> CompilationResult:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = ConjugationCache()
    pipeline, device, program = payload
    result = _run_one(pipeline, device, program, _PROCESS_CACHE)
    # Don't ship the whole per-process cache back with every result: the
    # pickle payload would grow as O(results x cache size).  The result's
    # lazy absorbers tolerate a missing cache (PropertySet reads None).
    result.properties.pop("conjugation_cache", None)
    return result


def _default_worker_count(num_programs: int) -> int:
    return max(1, min(num_programs, os.cpu_count() or 1, 32))


def compile_many(
    programs: Sequence[Sequence[PauliTerm] | SparsePauliSum],
    target: Target | CouplingMap | str | None = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline: Pipeline | str | None = None,
    max_workers: int | None = None,
    executor: str = "auto",
    conjugation_cache: ConjugationCache | None = None,
) -> list[CompilationResult]:
    """Compile a batch of independent Pauli-rotation programs.

    Every program goes through the same resolved pipeline (preset ``level``,
    explicit ``pipeline``, or registered name — identical semantics to
    :func:`repro.compile`), sharded across a :mod:`concurrent.futures`
    worker pool.  Results come back in input order.

    A single :class:`~repro.clifford.engine.ConjugationCache` is shared by
    all workers (and attached to each run's property set), so programs whose
    extraction produces the same Clifford tail freeze the packed conjugation
    map only once; pass ``conjugation_cache`` to share it across several
    ``compile_many`` calls.

    Parameters
    ----------
    programs:
        The batch; each entry is what :func:`repro.compile` accepts as
        ``terms``.
    target, level, pipeline:
        As in :func:`repro.compile`, applied to every program.
    max_workers:
        Worker-pool width; defaults to ``min(len(programs), cpu_count, 32)``.
    executor:
        ``"threads"`` (default for ``"auto"``), ``"processes"`` (isolates the
        pure-Python synthesis work per core at pickling cost; the cache is
        then per-process), or ``"serial"``.  The table-native extractor made
        each compile mostly vectorized numpy work that releases the GIL
        poorly in short bursts, so ``"processes"`` still pays off for batches
        of *large* programs where per-program compile time dwarfs the
        pickling overhead; for many small programs stay with threads.
    """
    if executor not in _EXECUTORS:
        raise CompilerError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}"
        )
    program_list = list(programs)
    if not program_list:
        return []
    resolved = _resolve_pipeline(pipeline, level)
    device = as_target(target)
    routed = ensure_device_routing(resolved, device)
    cache = conjugation_cache if conjugation_cache is not None else ConjugationCache()

    workers = max_workers if max_workers is not None else _default_worker_count(len(program_list))
    if executor == "auto":
        executor = "serial" if (len(program_list) == 1 or workers <= 1) else "threads"

    if executor == "serial" or workers <= 1:
        return [_run_one(routed, device, program, cache) for program in program_list]

    if executor == "processes":
        payloads = [(routed, device, program) for program in program_list]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_process_worker, payloads))

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(lambda program: _run_one(routed, device, program, cache), program_list)
        )
