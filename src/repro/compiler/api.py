"""The one-call compiler entry point: :func:`repro.compile`."""

from __future__ import annotations

from typing import Sequence

from repro.compiler.pipeline import Pipeline, ensure_device_routing
from repro.compiler.presets import MAX_OPTIMIZATION_LEVEL, preset_pipeline
from repro.compiler.registry import get_registry
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CompilerError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap


def compile(
    terms: Sequence[PauliTerm] | SparsePauliSum,
    target: Target | CouplingMap | str | None = None,
    level: int = MAX_OPTIMIZATION_LEVEL,
    pipeline: Pipeline | str | None = None,
) -> CompilationResult:
    """Compile a Pauli-rotation program.

    Parameters
    ----------
    terms:
        The program: a sequence of :class:`~repro.paulis.term.PauliTerm`
        rotations (or a :class:`~repro.paulis.sum.SparsePauliSum`).
    target:
        Optional device to compile for — a :class:`Target`, a
        :class:`~repro.transpile.coupling.CouplingMap`, or a known device
        name (``"sycamore"``, ``"ibm-manhattan"``).  ``None`` compiles for an
        all-to-all device.
    level:
        Preset optimization level 0..3 (3 = the full QuCLEAR flow).
    pipeline:
        Explicit pipeline to run instead of a preset: a
        :class:`~repro.compiler.pipeline.Pipeline` instance or the name of a
        registered compiler (``"quclear"``, ``"qiskit-like"``, ...).
    """
    if pipeline is None:
        resolved = preset_pipeline(level)
    elif isinstance(pipeline, Pipeline):
        resolved = pipeline
    elif isinstance(pipeline, str):
        resolved = get_registry().get(pipeline)
    else:
        raise CompilerError(f"cannot interpret {pipeline!r} as a pipeline")
    device = as_target(target)
    return ensure_device_routing(resolved, device).run(terms, target=device)
