"""Mutable state shared by the passes of one pipeline run.

A pipeline run threads two objects through its passes:

* :class:`Program` — the compilation artifact itself (Pauli terms in, circuit
  out), mutated in place by each pass;
* :class:`PassContext` — everything *about* the run: the :class:`Target`
  being compiled for, the :class:`PropertySet` of analysis results, and the
  per-pass wall-clock timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.circuits.circuit import QuantumCircuit
from repro.paulis.term import PauliTerm

if TYPE_CHECKING:
    from repro.compiler.target import Target
    from repro.core.extraction import ExtractionResult
    from repro.paulis.packed import PackedPauliTable
    from repro.paulis.sum import SparsePauliSum
    from repro.transpile.routing import RoutingResult


class PropertySet(dict):
    """A dictionary of properties produced and consumed by passes.

    Missing keys read as ``None`` (so passes can probe for optional upstream
    analysis without try/except), and properties survive the whole pipeline
    run — they are attached to the final
    :class:`~repro.compiler.result.CompilationResult`.
    """

    def __missing__(self, key: str) -> None:
        return None


@dataclass
class Program:
    """The compilation artifact as it flows through a pipeline.

    Synthesis passes turn :attr:`terms` into :attr:`circuit`; later passes
    rewrite the circuit in place.  Extraction-style passes additionally set
    :attr:`extracted_clifford` / :attr:`extraction`.

    When the program entered the pipeline as a
    :class:`~repro.paulis.sum.SparsePauliSum`, :attr:`sum` carries it so the
    table-native passes (grouping, extraction) can consume the bit-packed
    store directly; for plain term-list programs ``GroupCommuting`` stashes
    the table it packed for the commuting scan in :attr:`packed_table` so
    extraction does not re-pack the same Paulis.  :attr:`block_bounds` is
    the packed form of the commuting-block partition (row offsets, block
    ``k`` being ``bounds[k]..bounds[k+1]``) recorded alongside the
    term-list :attr:`blocks`.
    """

    terms: list[PauliTerm]
    sum: "SparsePauliSum | None" = None
    packed_table: "PackedPauliTable | None" = None
    blocks: list[list[PauliTerm]] | None = None
    block_bounds: list[int] | None = None
    circuit: QuantumCircuit | None = None
    extracted_clifford: QuantumCircuit | None = None
    extraction: "ExtractionResult | None" = None
    routing: "RoutingResult | None" = None
    metadata: dict = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        if self.circuit is not None:
            return self.circuit.num_qubits
        return self.terms[0].num_qubits if self.terms else 0


@dataclass
class PassContext:
    """Per-run context handed to every pass."""

    target: "Target | None" = None
    properties: PropertySet = field(default_factory=PropertySet)
    pass_timings: dict[str, float] = field(default_factory=dict)

    def record_timing(self, pass_name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds for ``pass_name`` (repeats add up)."""
        self.pass_timings[pass_name] = self.pass_timings.get(pass_name, 0.0) + seconds

    def get(self, key: str, default: Any = None) -> Any:
        value = self.properties[key]
        return default if value is None else value
