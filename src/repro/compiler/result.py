"""The unified result type returned by every registered compiler pipeline.

Historically the QuCLEAR flow returned ``repro.core.framework.CompilationResult``
while the baselines returned a separate ``BaselineResult``; the two are merged
here so that every pipeline in the :class:`~repro.compiler.registry.CompilerRegistry`
— QuCLEAR presets and baselines alike — produces the same object and the
evaluation harness never has to branch on the compiler kind.

Pipelines that perform Clifford Extraction populate :attr:`extracted_clifford`
and :attr:`extraction`; direct-synthesis pipelines leave them ``None`` and the
absorption helpers raise :class:`~repro.exceptions.CompilerError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.context import PropertySet
from repro.exceptions import CompilerError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.absorption import (
        AbsorbedObservable,
        ObservableAbsorber,
        ProbabilityAbsorber,
    )
    from repro.core.extraction import ExtractionResult


@dataclass
class CompilationResult:
    """Everything produced by one compiler-pipeline run.

    Attributes
    ----------
    circuit:
        The circuit that has to execute on quantum hardware.
    extracted_clifford:
        The Clifford tail handled classically by Clifford Absorption, or
        ``None`` when the pipeline performed no extraction.
    extraction:
        The underlying :class:`~repro.core.extraction.ExtractionResult`
        (conjugation tableau, metadata, ...), when available.
    compile_seconds:
        Wall-clock time of the full pipeline run.
    name:
        Name of the pipeline that produced the result (``"quclear"``,
        ``"qiskit-like"``, ...).
    metadata:
        Free-form per-run information; pipelines always record the per-pass
        wall-clock breakdown under ``metadata["pass_timings"]``.
    properties:
        The :class:`~repro.compiler.context.PropertySet` accumulated by the
        passes (conjugation tableau, absorbers, routing result, ...).
    """

    circuit: QuantumCircuit
    extracted_clifford: QuantumCircuit | None = None
    extraction: "ExtractionResult | None" = None
    compile_seconds: float = 0.0
    name: str = "quclear"
    metadata: dict = field(default_factory=dict)
    properties: PropertySet = field(default_factory=PropertySet)

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    def cx_count(self) -> int:
        return self.circuit.cx_count()

    def entangling_depth(self) -> int:
        return self.circuit.entangling_depth()

    @property
    def pass_timings(self) -> dict[str, float]:
        """Per-pass wall-clock seconds recorded by the pipeline, in run order."""
        return self.metadata.get("pass_timings", {})

    def metrics(self) -> dict[str, float]:
        """The metrics reported in the paper's Table III."""
        return {
            "cx_count": self.circuit.cx_count(),
            "entangling_depth": self.circuit.entangling_depth(),
            "single_qubit_count": self.circuit.single_qubit_count(),
            "compile_seconds": self.compile_seconds,
        }

    # ------------------------------------------------------------------ #
    # Wire serialization (the service substrate)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """This result as a JSON-safe wire payload.

        Circuits travel as OpenQASM, the conjugation tableau as its packed
        generator rows, metadata and pass timings bit-exactly;
        :meth:`from_dict` reverses it.  ``properties`` stay behind — they
        hold process-local machinery (conjugation caches, lazy absorbers)
        that the receiving side rebuilds on demand.  See
        :mod:`repro.service.serialize` for the format definition.
        """
        from repro.service.serialize import result_to_wire

        return result_to_wire(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CompilationResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        from repro.service.serialize import result_from_wire

        return result_from_wire(payload)

    # ------------------------------------------------------------------ #
    # Clifford Absorption helpers (extraction-based pipelines only)
    # ------------------------------------------------------------------ #
    def _require_extraction(self) -> "ExtractionResult":
        if self.extraction is None:
            raise CompilerError(
                f"pipeline {self.name!r} performed no Clifford Extraction; "
                "absorption helpers are unavailable"
            )
        if self.metadata.get("routed"):
            raise CompilerError(
                "the circuit was routed to a device, so its outcomes are "
                "permuted by the final layout; the logical-space Clifford "
                "absorption helpers would give wrong answers — compile "
                "without a target for absorption workflows"
            )
        return self.extraction

    def observable_absorber(self) -> "ObservableAbsorber":
        """CA module for observable (expectation-value) workloads."""
        extraction = self._require_extraction()
        cached = self.properties.get("observable_absorber")
        if cached is not None:
            return cached
        from repro.core.absorption import ObservableAbsorber

        absorber = ObservableAbsorber(
            extraction.conjugation, cache=self.properties["conjugation_cache"]
        )
        self.properties["observable_absorber"] = absorber
        return absorber

    def absorb_observables(
        self, observables: Iterable[PauliString] | SparsePauliSum
    ) -> "list[AbsorbedObservable]":
        absorber = self.observable_absorber()
        if isinstance(observables, SparsePauliSum):
            return absorber.absorb_table(observables)
        return absorber.absorb_all(observables)

    def probability_absorber(self) -> "ProbabilityAbsorber":
        """CA module for probability-distribution (QAOA) workloads."""
        self._require_extraction()
        cached = self.properties.get("probability_absorber")
        if cached is not None:
            return cached
        from repro.core.absorption import build_probability_absorber

        absorber = build_probability_absorber(self.extracted_clifford)
        self.properties["probability_absorber"] = absorber
        return absorber
