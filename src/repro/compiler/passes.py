"""The compiler passes that compose into pipelines.

Every pass implements ``run(program, context)``: it mutates the
:class:`~repro.compiler.context.Program` in place (and/or records analysis
results in the context's :class:`~repro.compiler.context.PropertySet`) and
returns nothing.  The existing QuCLEAR stages are wrapped here one-to-one:

* :class:`GroupCommuting` — partition the Pauli program into commuting blocks;
* :class:`CliffordExtraction` — Algorithm 2, the CE module;
* :class:`NaiveSynthesis` — direct V-shaped synthesis (the "native" baseline);
* :class:`Peephole` — local rewriting, the Qiskit-O3 stand-in;
* :class:`SabreRouting` — SWAP-insertion routing onto the target's coupling map;
* :class:`AbsorptionPrep` — precompute the CA-module absorbers;
* :class:`FunctionCompilerPass` — adapter that runs a whole legacy
  ``terms -> CompilationResult`` compiler function as a single pass.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from repro.compiler.context import PassContext, Program
from repro.compiler.result import CompilationResult
from repro.core.commuting import commuting_block_bounds
from repro.core.extraction import CliffordExtractor
from repro.exceptions import CompilerError
from repro.paulis.packed import PackedPauliTable
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize
from repro.transpile.routing import route_circuit
from repro.transpile.wire_optimizer import streaming_peephole_optimize


class Pass(abc.ABC):
    """Base class of every pipeline pass."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def run(self, program: Program, context: PassContext) -> None:
        """Transform ``program`` in place and/or record properties."""

    def __repr__(self) -> str:
        return self.name

    # ------------------------------------------------------------------ #
    def _require_terms(self, program: Program) -> list[PauliTerm]:
        if not program.terms:
            raise CompilerError(f"{self.name} needs a non-empty Pauli-term program")
        return program.terms

    def _require_circuit(self, program: Program):
        if program.circuit is None:
            raise CompilerError(
                f"{self.name} requires a synthesized circuit; "
                "run a synthesis pass (NaiveSynthesis / CliffordExtraction) first"
            )
        return program.circuit


class GroupCommuting(Pass):
    """Partition the Pauli program into maximal runs of commuting strings.

    The scan runs on the bit-packed store (the program sum's own table when
    one entered the pipeline); the partition is recorded both as row offsets
    (``program.block_bounds``, what the table-native extractor consumes) and
    as term-list blocks for any legacy consumer.
    """

    def run(self, program: Program, context: PassContext) -> None:
        terms = self._require_terms(program)
        backend = context.properties["array_backend"]
        if program.sum is not None:
            table = program.sum.packed_table
            if backend is not None:
                table = table.to_backend(backend)
        else:
            table = PackedPauliTable.from_paulis((t.pauli for t in terms), backend=backend)
        # stash for CliffordExtraction so the same Paulis are packed (and
        # moved to the active backend) exactly once
        program.packed_table = table
        bounds = commuting_block_bounds(table)
        program.block_bounds = bounds
        program.blocks = [terms[a:b] for a, b in zip(bounds, bounds[1:])]
        program.metadata["num_blocks"] = len(program.blocks)
        context.properties["num_blocks"] = len(program.blocks)


class CliffordExtraction(Pass):
    """Clifford Extraction (Algorithm 2): synthesize left halves, push the
    mirrored Cliffords through the remaining program, return the tail."""

    def __init__(
        self,
        reorder_within_blocks: bool = True,
        recursive_tree: bool = True,
        cross_block_lookahead: bool = True,
        max_lookahead: int | None = None,
        fuse_peephole: bool = False,
        extractor: CliffordExtractor | None = None,
    ):
        if extractor is not None:
            defaults = (True, True, True, None, False)
            given = (
                reorder_within_blocks,
                recursive_tree,
                cross_block_lookahead,
                max_lookahead,
                fuse_peephole,
            )
            if given != defaults:
                raise CompilerError(
                    "pass either feature flags or an explicit extractor, not both: "
                    "the flags would be silently ignored"
                )
        self.extractor = extractor if extractor is not None else CliffordExtractor(
            reorder_within_blocks=reorder_within_blocks,
            recursive_tree=recursive_tree,
            cross_block_lookahead=cross_block_lookahead,
            max_lookahead=max_lookahead,
            fuse_peephole=fuse_peephole,
        )

    def run(self, program: Program, context: PassContext) -> None:
        # Consume the packed sum when one entered the pipeline: the extractor
        # then adopts its bit-packed store directly instead of re-packing a
        # term list, and the partition travels as row offsets.
        source = program.sum if program.sum is not None else self._require_terms(program)
        extraction = self.extractor.extract(
            source,
            blocks=program.blocks,
            block_bounds=program.block_bounds,
            packed_table=program.packed_table,
            backend=context.properties["array_backend"],
        )
        program.circuit = extraction.optimized_circuit
        program.extracted_clifford = extraction.extracted_clifford
        program.extraction = extraction
        program.metadata["rotation_count"] = extraction.rotation_count
        program.metadata.setdefault("num_blocks", extraction.metadata.get("num_blocks"))
        if extraction.metadata.get("peephole_fused"):
            # emission already streamed through the wire-indexed optimizer:
            # the circuit is a local-rewrite fixpoint, a later Peephole pass
            # can skip the re-scan, and the raw emitted CNOT count is kept
            # for the usual pre/post report
            program.metadata["peephole_fixpoint"] = True
            program.metadata.setdefault(
                "pre_optimization_cx", extraction.metadata["pre_optimization_cx"]
            )
        context.properties["conjugation_tableau"] = extraction.conjugation
        context.properties["rotation_count"] = extraction.rotation_count


class NaiveSynthesis(Pass):
    """Direct synthesis: one V-shaped block per Pauli rotation, in order.

    ``fuse_peephole=True`` streams the blocks through a peephole-optimizing
    circuit builder, so mirrored trees between adjacent blocks cancel as they
    are emitted and any later :class:`Peephole` pass is a no-op.
    """

    def __init__(self, tree: str = "chain", fuse_peephole: bool = False):
        self.tree = tree
        self.fuse_peephole = fuse_peephole

    def run(self, program: Program, context: PassContext) -> None:
        terms = self._require_terms(program)
        if self.fuse_peephole:
            from repro.circuits.circuit import QuantumCircuit
            from repro.synthesis.pauli_rotation import synthesize_pauli_rotation

            builder = QuantumCircuit.builder(terms[0].num_qubits)
            for term in terms:
                synthesize_pauli_rotation(term, tree=self.tree, into=builder)
            program.metadata.setdefault("pre_optimization_cx", builder.appended_cx)
            program.metadata["peephole_fixpoint"] = True
            program.circuit = builder.build()
        else:
            program.circuit = synthesize_trotter_circuit(terms, tree=self.tree)
        context.properties["synthesis_tree"] = self.tree


class Peephole(Pass):
    """Local rewriting: inverse-pair cancellation and rotation merging.

    ``engine="streaming"`` (the default) runs the wire-indexed
    :class:`~repro.transpile.wire_optimizer.GateStreamOptimizer` — one
    amortized-linear pass, no iteration cap — and skips entirely when the
    upstream synthesis already streamed its emission through the optimizer
    (``program.metadata["peephole_fixpoint"]``).  ``engine="legacy"`` runs
    the iterated ground-truth sweeps of
    :func:`~repro.transpile.peephole.peephole_optimize`.
    """

    _ENGINES = ("streaming", "legacy")

    def __init__(self, max_iterations: int = 20, engine: str = "streaming"):
        if engine not in self._ENGINES:
            raise CompilerError(
                f"peephole engine must be one of {self._ENGINES}, got {engine!r}"
            )
        self.max_iterations = max_iterations
        self.engine = engine

    def run(self, program: Program, context: PassContext) -> None:
        circuit = self._require_circuit(program)
        program.metadata.setdefault("pre_optimization_cx", circuit.cx_count())
        if self.engine == "legacy":
            program.circuit = peephole_optimize(circuit, max_iterations=self.max_iterations)
            return
        if program.metadata.get("peephole_fixpoint"):
            # emission-fused: the circuit was built through the streaming
            # optimizer, re-running it would be a no-op by construction
            return
        program.circuit = streaming_peephole_optimize(circuit)
        program.metadata["peephole_fixpoint"] = True


class PostRoutingPeephole(Peephole):
    """Peephole that only runs when routing actually rewrote the circuit.

    The pre-routing circuit is already a peephole fixpoint in the presets, so
    re-sweeping it on an all-to-all (or targetless) compile would be pure
    wasted work; SWAP decomposition, however, exposes fresh cancellations.
    """

    def run(self, program: Program, context: PassContext) -> None:
        if not program.metadata.get("routed"):
            return
        super().run(program, context)


class SabreRouting(Pass):
    """SWAP-insertion routing onto the target's coupling map.

    A no-op when the run has no target or the target is fully connected, so
    preset pipelines behave identically to the logical-circuit flow when no
    device is specified.
    """

    def __init__(self, initial_layout: str = "greedy", decompose_swaps: bool = True):
        self.initial_layout = initial_layout
        self.decompose_swaps = decompose_swaps

    def run(self, program: Program, context: PassContext) -> None:
        target = context.target
        if target is None:
            program.metadata.setdefault("swap_count", 0)
            return
        circuit = self._require_circuit(program)
        target.validate_circuit(circuit)
        if target.coupling is None or target.is_fully_connected:
            program.metadata.setdefault("swap_count", 0)
            return
        routing = route_circuit(
            circuit,
            target.coupling,
            initial_layout=self.initial_layout,
            decompose_swaps=self.decompose_swaps,
        )
        program.circuit = routing.circuit
        program.routing = routing
        program.metadata["swap_count"] = routing.swap_count
        program.metadata["routed"] = True
        # SWAP decomposition exposes fresh cancellations: the pre-routing
        # peephole fixpoint no longer holds for the rewritten circuit
        program.metadata["peephole_fixpoint"] = False
        program.metadata["device"] = target.name
        context.properties["routing"] = routing
        context.properties["initial_layout"] = routing.initial_layout
        context.properties["final_layout"] = routing.final_layout


class AbsorptionPrep(Pass):
    """Precompute the Clifford Absorption machinery for the extracted tail.

    Detects whether the workload supports the (cheaper) probability-absorption
    mode and stores the ready-to-use absorbers in the property set.  A no-op
    for pipelines that performed no extraction.
    """

    def run(self, program: Program, context: PassContext) -> None:
        if program.extraction is None or program.extracted_clifford is None:
            return
        if program.metadata.get("routed"):
            # the extraction artifacts live in logical space; after routing the
            # physical outcomes are permuted and the absorbers would be wrong
            program.metadata["absorption_style"] = "unavailable"
            context.properties["absorption_style"] = "unavailable"
            return
        from repro.core.absorption import (
            ObservableAbsorber,
            build_probability_absorber,
        )
        from repro.exceptions import AbsorptionError

        context.properties["observable_absorber"] = ObservableAbsorber(
            program.extraction.conjugation,
            cache=context.properties["conjugation_cache"],
        )
        try:
            context.properties["probability_absorber"] = build_probability_absorber(
                program.extracted_clifford
            )
            style = "probabilities"
        except AbsorptionError:
            style = "observables"
        context.properties["absorption_style"] = style
        program.metadata["absorption_style"] = style


class FunctionCompilerPass(Pass):
    """Adapter: run a legacy ``terms -> CompilationResult`` compiler function
    as a single pipeline pass (used to register the baseline compilers)."""

    def __init__(self, fn: Callable[[Sequence[PauliTerm]], CompilationResult], name: str):
        self._fn = fn
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def run(self, program: Program, context: PassContext) -> None:
        result = self._fn(self._require_terms(program))
        program.circuit = result.circuit
        program.extracted_clifford = result.extracted_clifford
        program.extraction = result.extraction
        program.metadata.update(result.metadata)
