"""Hybrid quantum-classical execution helpers.

The QuCLEAR workflow is hybrid by construction: the optimized circuit runs on
a quantum backend while the extracted Clifford is resolved classically.  This
sub-package provides small backend abstractions (dense statevector and CHP
stabilizer sampling) and an executor that chains CA-Pre, execution and
CA-Post for both measurement styles.
"""

from repro.simulation.backends import Backend, StatevectorBackend, StabilizerBackend
from repro.simulation.executor import HybridExecutor

__all__ = ["Backend", "StatevectorBackend", "StabilizerBackend", "HybridExecutor"]
