"""End-to-end hybrid execution of QuCLEAR-compiled programs.

The executor owns the full workflow of Fig. 6 of the paper:

* compile the Pauli-rotation program through a compiler pipeline,
* CA-Pre: append the measurement bases / Hadamard layer,
* execute the optimized circuit on a backend,
* CA-Post: recover expectation values or the original output distribution.

The compiler is any :class:`~repro.compiler.pipeline.Pipeline` (or the name
of one registered in the :class:`~repro.compiler.registry.CompilerRegistry`);
it must perform Clifford Extraction for the absorption steps to apply, so the
default is the full QuCLEAR preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.pipeline import Pipeline
from repro.compiler.presets import preset_pipeline
from repro.compiler.registry import get_registry
from repro.compiler.result import CompilationResult
from repro.core.measurement_grouping import group_observables
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.simulation.backends import Backend, StatevectorBackend


@dataclass
class ExpectationEstimate:
    """Result of estimating a weighted observable."""

    value: float
    num_circuit_executions: int
    num_observables: int
    compilation: CompilationResult


@dataclass
class DistributionEstimate:
    """Result of estimating an output distribution."""

    counts: dict[str, int]
    num_circuit_executions: int
    compilation: CompilationResult


class HybridExecutor:
    """Runs compiled programs on a backend and post-processes classically.

    Parameters
    ----------
    backend:
        Where circuits execute; defaults to the seeded statevector sampler.
    compiler:
        A :class:`Pipeline`, a registered pipeline name (``"quclear"``), a
        preset level as an ``int``, or any legacy object exposing
        ``.compile(terms)``.  Defaults to the full QuCLEAR preset.
    shots:
        Shots per circuit execution.
    group_measurements:
        Group qubitwise-commuting observables into shared executions.
    """

    def __init__(
        self,
        backend: Backend | None = None,
        compiler: "Pipeline | str | int | object | None" = None,
        shots: int = 8192,
        group_measurements: bool = True,
    ):
        self.backend = backend if backend is not None else StatevectorBackend(seed=0)
        if compiler is None:
            compiler = preset_pipeline(3)
        elif isinstance(compiler, str):
            compiler = get_registry().get(compiler)
        elif isinstance(compiler, int):
            compiler = preset_pipeline(compiler)
        self.compiler = compiler
        self.shots = int(shots)
        self.group_measurements = group_measurements

    # ------------------------------------------------------------------ #
    def _compile(self, terms: Sequence[PauliTerm]) -> CompilationResult:
        return self.compiler.compile(terms)

    # ------------------------------------------------------------------ #
    def estimate_expectation(
        self,
        terms: Sequence[PauliTerm],
        observable: SparsePauliSum,
        state_preparation: QuantumCircuit | None = None,
    ) -> ExpectationEstimate:
        """Estimate ``<psi| H |psi>`` where ``|psi>`` is prepared by the program."""
        result = self._compile(terms)
        absorbed = result.absorb_observables(observable)
        weights = observable.coefficients

        prefix = state_preparation if state_preparation is not None else QuantumCircuit(result.num_qubits)
        executions = 0
        total = 0.0
        if self.group_measurements:
            groups = group_observables(absorbed)
            weight_of = {id(item): weight for item, weight in zip(absorbed, weights)}
            for group in groups:
                circuit = prefix.compose(result.circuit).compose(group.measurement_circuit())
                counts = self.backend.run(circuit, self.shots)
                executions += 1
                for member, value in zip(group.members, group.expectations_from_counts(counts)):
                    total += weight_of[id(member)] * value
        else:
            for weight, item in zip(weights, absorbed):
                circuit = prefix.compose(result.circuit).compose(item.measurement_basis)
                counts = self.backend.run(circuit, self.shots)
                executions += 1
                total += weight * item.expectation_from_counts(counts)
        return ExpectationEstimate(
            value=total,
            num_circuit_executions=executions,
            num_observables=len(absorbed),
            compilation=result,
        )

    # ------------------------------------------------------------------ #
    def sample_distribution(
        self,
        terms: Sequence[PauliTerm],
        state_preparation: QuantumCircuit | None = None,
    ) -> DistributionEstimate:
        """Sample the program's output distribution in the computational basis."""
        result = self._compile(terms)
        absorber = result.probability_absorber()
        prefix = state_preparation if state_preparation is not None else QuantumCircuit(result.num_qubits)
        circuit = prefix.compose(result.circuit).compose(absorber.pre_circuit())
        raw_counts = self.backend.run(circuit, self.shots)
        return DistributionEstimate(
            counts=absorber.map_counts(raw_counts),
            num_circuit_executions=1,
            compilation=result,
        )

    # ------------------------------------------------------------------ #
    def expected_observable_value(
        self, terms: Sequence[PauliTerm], observable: PauliString
    ) -> float:
        """Convenience wrapper for a single unweighted Pauli observable."""
        weighted = SparsePauliSum([PauliTerm(observable.copy(), 1.0)])
        return self.estimate_expectation(terms, weighted).value
