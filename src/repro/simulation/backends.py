"""Execution backends used by the hybrid executor.

A backend turns a circuit into a measurement histogram.  Two are provided:

* :class:`StatevectorBackend` — exact amplitudes, optionally sampled with a
  finite shot count; works for any gate set but is limited to ~20 qubits.
* :class:`StabilizerBackend` — CHP sampling; only valid for Clifford
  circuits, but scales to hundreds of qubits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import Statevector
from repro.clifford.stabilizer import StabilizerState
from repro.exceptions import CircuitError


class Backend(ABC):
    """Minimal execution interface: circuit in, bitstring histogram out."""

    @abstractmethod
    def run(self, circuit: QuantumCircuit, shots: int) -> dict[str, int]:
        """Execute ``circuit`` from ``|0...0>`` and return measured counts."""

    def probabilities(self, circuit: QuantumCircuit) -> dict[str, float]:
        """Exact or estimated output distribution (default: normalised counts)."""
        counts = self.run(circuit, shots=10_000)
        total = sum(counts.values())
        return {bits: count / total for bits, count in counts.items()}


class StatevectorBackend(Backend):
    """Dense statevector simulation with optional finite sampling."""

    def __init__(self, seed: int | None = None):
        self.seed = seed

    def run(self, circuit: QuantumCircuit, shots: int) -> dict[str, int]:
        state = Statevector.from_circuit(circuit)
        return state.sample_counts(shots, seed=self.seed)

    def probabilities(self, circuit: QuantumCircuit) -> dict[str, float]:
        return Statevector.from_circuit(circuit).probability_dict()


class StabilizerBackend(Backend):
    """CHP stabilizer sampling; rejects non-Clifford circuits."""

    def __init__(self, seed: int | None = None):
        self.seed = seed

    def run(self, circuit: QuantumCircuit, shots: int) -> dict[str, int]:
        if any(not gate.is_clifford for gate in circuit):
            raise CircuitError("the stabilizer backend only executes Clifford circuits")
        state = StabilizerState(circuit.num_qubits, seed=self.seed)
        return state.sample_counts(circuit, shots)
