"""SWAP-insertion routing onto a limited-connectivity coupling map.

A lightweight SABRE-style router: gates are processed in program order and a
SWAP chain along the shortest path is inserted whenever a two-qubit gate acts
on non-adjacent physical qubits.  Two initial-layout strategies are provided
(trivial, and a greedy interaction-based placement).  The routed circuit ends
with the logical-to-physical permutation recorded in the result so that
measurement post-processing can undo it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import RoutingError
from repro.transpile.coupling import CouplingMap


@dataclass
class RoutingResult:
    """Routed circuit plus the bookkeeping needed to interpret its outputs."""

    circuit: QuantumCircuit
    coupling: CouplingMap
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    swap_count: int
    metadata: dict = field(default_factory=dict)

    def cx_count(self) -> int:
        """CNOT count of the routed circuit with SWAPs costed as 3 CNOTs."""
        return self.circuit.cx_count()


def _trivial_layout(num_logical: int) -> dict[int, int]:
    return {logical: logical for logical in range(num_logical)}


def _greedy_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> dict[int, int]:
    """Place the most strongly interacting logical pairs on adjacent physical qubits."""
    interaction: Counter = Counter()
    for gate in circuit:
        if gate.num_qubits == 2:
            pair = tuple(sorted(gate.qubits))
            interaction[pair] += 1
    layout: dict[int, int] = {}
    used_physical: set[int] = set()

    def place(logical: int, physical: int) -> None:
        layout[logical] = physical
        used_physical.add(physical)

    # Seed with the hottest pair on the highest-degree edge.
    if interaction:
        hottest_pair = interaction.most_common(1)[0][0]
        best_edge = max(
            coupling.edges,
            key=lambda edge: len(coupling.neighbors(edge[0])) + len(coupling.neighbors(edge[1])),
        )
        place(hottest_pair[0], best_edge[0])
        place(hottest_pair[1], best_edge[1])
    for (first, second), _ in interaction.most_common():
        for logical, partner in ((first, second), (second, first)):
            if logical in layout or partner not in layout:
                continue
            anchor = layout[partner]
            candidates = [
                physical
                for physical in coupling.neighbors(anchor)
                if physical not in used_physical
            ]
            if not candidates:
                candidates = [
                    physical
                    for physical in range(coupling.num_qubits)
                    if physical not in used_physical
                ]
                candidates.sort(key=lambda physical: coupling.distance(anchor, physical))
            place(logical, candidates[0])
    for logical in range(circuit.num_qubits):
        if logical not in layout:
            free = [p for p in range(coupling.num_qubits) if p not in used_physical]
            if not free:
                raise RoutingError("device has fewer qubits than the circuit")
            place(logical, free[0])
    return layout


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: str | dict[int, int] = "greedy",
    decompose_swaps: bool = False,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate acts on coupled physical qubits.

    Parameters
    ----------
    circuit:
        Logical circuit to map.
    coupling:
        Target connectivity graph; must have at least as many qubits as the
        circuit and be connected.
    initial_layout:
        ``"trivial"``, ``"greedy"`` or an explicit logical-to-physical map.
    decompose_swaps:
        When True, inserted SWAPs are emitted as three CNOTs.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise RoutingError(
            f"circuit needs {circuit.num_qubits} qubits, device has {coupling.num_qubits}"
        )
    if not coupling.is_connected_graph():
        raise RoutingError("the coupling graph is not connected")

    if isinstance(initial_layout, dict):
        layout = dict(initial_layout)
    elif initial_layout == "trivial":
        layout = _trivial_layout(circuit.num_qubits)
    elif initial_layout == "greedy":
        layout = _greedy_layout(circuit, coupling)
    else:
        raise RoutingError(f"unknown initial layout strategy {initial_layout!r}")
    if len(set(layout.values())) != len(layout):
        raise RoutingError("initial layout maps two logical qubits to the same physical qubit")

    physical_of = dict(layout)
    routed = QuantumCircuit(coupling.num_qubits)
    swap_count = 0

    def emit_swap(physical_a: int, physical_b: int) -> None:
        nonlocal swap_count
        if decompose_swaps:
            routed.cx(physical_a, physical_b)
            routed.cx(physical_b, physical_a)
            routed.cx(physical_a, physical_b)
        else:
            routed.swap(physical_a, physical_b)
        swap_count += 1

    inverse_layout = {physical: logical for logical, physical in physical_of.items()}

    for gate in circuit:
        if gate.num_qubits == 1:
            routed.append(Gate(gate.name, (physical_of[gate.qubits[0]],), gate.params))
            continue
        logical_a, logical_b = gate.qubits
        physical_a = physical_of[logical_a]
        physical_b = physical_of[logical_b]
        if not coupling.are_connected(physical_a, physical_b):
            path = coupling.shortest_path(physical_a, physical_b)
            # Move qubit a along the path until adjacent to qubit b.
            for step in range(len(path) - 2):
                here, there = path[step], path[step + 1]
                emit_swap(here, there)
                logical_here = inverse_layout.get(here)
                logical_there = inverse_layout.get(there)
                if logical_here is not None:
                    physical_of[logical_here] = there
                if logical_there is not None:
                    physical_of[logical_there] = here
                inverse_layout[here], inverse_layout[there] = (
                    logical_there,
                    logical_here,
                )
            physical_a = physical_of[logical_a]
            physical_b = physical_of[logical_b]
        routed.append(Gate(gate.name, (physical_a, physical_b), gate.params))

    return RoutingResult(
        circuit=routed,
        coupling=coupling,
        initial_layout=layout,
        final_layout=dict(physical_of),
        swap_count=swap_count,
        metadata={"decompose_swaps": decompose_swaps},
    )
