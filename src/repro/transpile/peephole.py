"""Local (peephole) circuit optimization.

The passes here are the stand-in for "Qiskit optimization level 3" used by the
paper when reporting the combined QuCLEAR + local-optimization numbers:

* cancellation of adjacent inverse pairs (``cx``/``cx``, ``h``/``h``,
  ``s``/``sdg``, ...), with commuting gates allowed in between,
* merging of same-axis rotations on the same qubit and removal of
  (near-)zero-angle rotations,
* removal of explicit identity gates.

The passes are iterated until the circuit stops shrinking.

.. note::
   This module is the *unoptimized ground truth* (the repo pattern of
   ``extraction_legacy`` / ``conjugation``): the iterated O(G^2)-worst-case
   sweeps stay exactly as the paper's local-optimization stand-in describes
   them.  The production path is
   :class:`repro.transpile.wire_optimizer.GateStreamOptimizer`, which reaches
   the same fixpoint in one streaming pass;
   ``tests/test_transpile/test_peephole_equivalence.py`` diffs the two on
   gate count and statevector.  Keep this module unoptimized.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate

_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cz", "swap"}
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("sx", "sxdg"), ("sxdg", "sx")}
_ROTATIONS = {"rz", "rx", "ry", "rzz"}

#: gates acting on an *unordered* qubit pair: ``cz(0, 1)`` and ``cz(1, 0)``
#: are the same operation, so pair matching must ignore the listed order
_SYMMETRIC_GATES = {"cz", "swap", "rzz"}

#: two full turns are an identity for rotation gates
_TWO_PI = 2.0 * math.pi


def _same_qubits(first: Gate, second: Gate) -> bool:
    """Whether the two gates act on the same qubits, honouring symmetric gates."""
    if first.qubits == second.qubits:
        return True
    return (
        first.name == second.name
        and first.name in _SYMMETRIC_GATES
        and set(first.qubits) == set(second.qubits)
    )


def _is_inverse_pair(first: Gate, second: Gate) -> bool:
    if not _same_qubits(first, second):
        return False
    if first.name == second.name and first.name in _SELF_INVERSE:
        return True
    return (first.name, second.name) in _INVERSE_PAIRS


def gates_commute(first: Gate, second: Gate) -> bool:
    """Conservative commutation check used when looking for cancellation partners."""
    if not set(first.qubits) & set(second.qubits):
        return True
    if first.is_diagonal and second.is_diagonal:
        return True
    shared = set(first.qubits) & set(second.qubits)
    for gate_a, gate_b in ((first, second), (second, first)):
        if gate_a.name == "cx":
            control, target = gate_a.qubits
            # A gate diagonal in Z on the control commutes with the CNOT.
            if all(q == control for q in shared) and gate_b.is_diagonal:
                return True
            # An X-type gate on the target commutes with the CNOT.
            if all(q == target for q in shared) and gate_b.name in ("x", "rx", "sx", "sxdg"):
                return True
            if gate_b.name == "cx":
                other_control, other_target = gate_b.qubits
                if control == other_control and target != other_target:
                    return True
                if target == other_target and control != other_control:
                    return True
    return False


def _cancel_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """One sweep of inverse-pair cancellation with commutation-aware search."""
    removed = [False] * len(gates)
    changed = False
    for index, gate in enumerate(gates):
        if removed[index]:
            continue
        if gate.name == "i":
            removed[index] = True
            changed = True
            continue
        if gate.params:
            continue
        for later in range(index + 1, len(gates)):
            if removed[later]:
                continue
            other = gates[later]
            if _is_inverse_pair(gate, other):
                removed[index] = True
                removed[later] = True
                changed = True
                break
            if not gates_commute(gate, other):
                break
    survivors = [gate for index, gate in enumerate(gates) if not removed[index]]
    return survivors, changed


def _merge_rotations_pass(gates: list[Gate]) -> tuple[list[Gate], bool]:
    """Merge same-axis rotations separated only by commuting gates."""
    removed = [False] * len(gates)
    merged: dict[int, float] = {}
    changed = False
    for index, gate in enumerate(gates):
        if removed[index] or gate.name not in _ROTATIONS:
            continue
        angle = merged.get(index, gate.params[0])
        for later in range(index + 1, len(gates)):
            if removed[later]:
                continue
            other = gates[later]
            if other.name == gate.name and _same_qubits(gate, other):
                angle += merged.get(later, other.params[0])
                removed[later] = True
                changed = True
                continue
            if not gates_commute(gate, other):
                break
        merged[index] = angle
    survivors: list[Gate] = []
    for index, gate in enumerate(gates):
        if removed[index]:
            continue
        if index in merged:
            angle = math.remainder(merged[index], 2.0 * _TWO_PI)
            if abs(angle) < 1e-12 or abs(abs(angle) - 2.0 * _TWO_PI) < 1e-12:
                changed = True
                continue
            if angle != gate.params[0]:
                gate = Gate(gate.name, gate.qubits, (angle,))
            survivors.append(gate)
        else:
            survivors.append(gate)
    return survivors, changed


def peephole_optimize(circuit: QuantumCircuit, max_iterations: int = 20) -> QuantumCircuit:
    """Iterate the local passes until no further reduction happens."""
    gates = list(circuit)  # explicit copy: circuit.gates is now the live list
    for _ in range(max_iterations):
        gates, cancelled = _cancel_pass(gates)
        gates, merged = _merge_rotations_pass(gates)
        if not cancelled and not merged:
            break
    return QuantumCircuit.from_trusted_gates(circuit.num_qubits, gates)
