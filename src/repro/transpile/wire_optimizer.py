"""Streaming wire-indexed peephole optimization.

:class:`GateStreamOptimizer` is the amortized-linear replacement for the
iterated whole-list sweeps of :func:`repro.transpile.peephole.peephole_optimize`
(which stays, unoptimized, as the equivalence ground truth — the repo pattern
of ``extraction_legacy`` / ``conjugation``).  Instead of materializing a gate
tail and then rescanning it up to ``max_iterations`` times, the optimizer
applies every local rewrite *eagerly, at gate-append time*:

* **inverse-pair cancellation** — an arriving parameterless gate walks
  backward over the pending gates *on its own wires only* (per-qubit frontier
  stacks; gates on disjoint qubits are never even visited) and cancels with
  the nearest inverse partner reachable through commuting gates;
* **same-axis rotation merging** — an arriving rotation merges its angle into
  the nearest reachable rotation of the same name on the same (unordered,
  for ``rzz``) qubits, normalizing with ``math.remainder(angle, 4*pi)`` and
  deleting the survivor when the merged angle is (near-)zero;
* **identity removal** — explicit ``i`` gates are dropped on arrival.

Because a cancellation partner must itself commute through every gate it
passes — and partner gates are commutation-equivalent to the gates they
cancel/merge with — removing a pending gate can never unblock a rewrite
between two gates that are *both* already pending.  Appending therefore needs
no retroactive re-checks: one pass over the gate stream reaches the same
fixpoint the legacy engine iterates toward, with no ``max_iterations`` cap
(the randomized suite in ``tests/test_transpile/test_peephole_equivalence.py``
diffs gate counts and statevectors against the legacy engine, including
fixpoints the legacy default cap of 20 sweeps cannot reach).

The walk visits only gates sharing a wire with the arriving gate, so the
amortized cost per appended gate is the length of its blocked-commuting
prefix on its own wires — O(G) total for the CNOT-tree tails Clifford
extraction emits, where almost every cancellation partner sits at the top of
a wire stack.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # the real import is deferred: circuit.py imports us back
    from repro.circuits.circuit import QuantumCircuit

from repro.circuits.gate import CX_EQUIVALENT_WEIGHT, Gate
from repro.exceptions import CircuitError
from repro.transpile.peephole import (
    _INVERSE_PAIRS,
    _ROTATIONS,
    _SELF_INVERSE,
    _SYMMETRIC_GATES,
    _TWO_PI,
    gates_commute,
)

#: rotations are normalized into ``[-2*pi, 2*pi]`` (two full turns are an
#: identity for the ``exp(-i theta/2 P)`` convention), exactly as the legacy
#: merge pass does
_FOUR_PI = 2.0 * _TWO_PI

#: angles this close to zero (after normalization) are dropped entirely
_ZERO_EPS = 1e-12

#: parameterless gate -> the name that cancels it
_PARTNER_NAME: dict[str, str] = {name: name for name in _SELF_INVERSE}
_PARTNER_NAME.update(dict(_INVERSE_PAIRS))

#: rebuild bookkeeping once this many cancelled gates linger in the buffers
_COMPACT_MIN_DEAD = 256


class _Node:
    """One pending gate: mutable so rotation merges update it in place."""

    __slots__ = ("gate", "raw_angle", "seq", "alive")

    def __init__(self, gate: Gate, raw_angle: float | None, seq: int):
        self.gate = gate
        #: un-normalized accumulated angle for rotations (the legacy merge
        #: pass sums raw params before normalizing once; accumulating the raw
        #: sum keeps the merged float bit-identical to the legacy result)
        self.raw_angle = raw_angle
        self.seq = seq
        self.alive = True


class GateStreamOptimizer:
    """Maintains the peephole fixpoint of a gate stream, one append at a time.

    Gates go in through :meth:`append` / :meth:`extend`; the surviving
    optimized tail comes out of :meth:`gates` (original emission order, with
    merged rotations sitting at their earliest position).  The optimizer is
    single-use per tail: feed the whole stream, read the result.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise CircuitError("a gate stream needs at least one qubit")
        self.num_qubits = int(num_qubits)
        #: per-qubit frontier stacks of pending nodes (wire-indexed)
        self._wires: list[list[_Node]] = [[] for _ in range(self.num_qubits)]
        #: all nodes in arrival order (dead ones compacted away periodically)
        self._order: list[_Node] = []
        self._live = 0
        self._dead = 0
        self._seq = 0
        self._appended = 0
        self._appended_cx = 0
        #: commutation verdicts are angle-independent, so they are memoized
        #: per (name, qubits) pair; the synthesis hot loops emit the same few
        #: gate shapes over and over
        self._commute_cache: dict[tuple, bool] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of gates currently surviving."""
        return self._live

    @property
    def appended(self) -> int:
        """Total gates fed in (the unoptimized tail length)."""
        return self._appended

    @property
    def appended_cx(self) -> int:
        """CNOT-equivalent count of the *unoptimized* stream (SWAP costs 3).

        Matches ``QuantumCircuit.cx_count()`` of the raw tail, so fused
        emission can still report ``pre_optimization_cx``.
        """
        return self._appended_cx

    def gates(self) -> list[Gate]:
        """The surviving gates, in emission order."""
        return [node.gate for node in self._order if node.alive]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates())

    # ------------------------------------------------------------------ #
    # Streaming input
    # ------------------------------------------------------------------ #
    def extend(self, gates: Iterable[Gate]) -> "GateStreamOptimizer":
        for gate in gates:
            self.append(gate)
        return self

    def append(self, gate: Gate) -> "GateStreamOptimizer":
        self._appended += 1
        name = gate.name
        weight = CX_EQUIVALENT_WEIGHT.get(name)
        if weight is not None:
            self._appended_cx += weight
        if name == "i":
            return self
        qubits = gate.qubits
        # A rotation matches (merges with) its own name; a parameterless gate
        # matches its inverse partner.  Gate names uniquely determine whether
        # params are carried, so a name match is a full kind match.
        rotation = name in _ROTATIONS
        partner = name if rotation else _PARTNER_NAME.get(name)
        flipped = (
            (qubits[1], qubits[0])
            if name in _SYMMETRIC_GATES
            else None
        )
        if len(qubits) == 1:
            node = self._scan_one(gate, qubits, partner, flipped)
        else:
            node = self._scan_two(gate, qubits, partner, flipped)
        if rotation:
            self._merge_rotation(gate, node)
        elif node is not None:
            self._kill(node)
        else:
            self._push(gate, None)
        return self

    # ------------------------------------------------------------------ #
    # Wire-indexed backward scans
    # ------------------------------------------------------------------ #
    # Only the frontier stacks of the arriving gate's own wires are visited,
    # so pending gates on disjoint qubits — which trivially commute — cost
    # nothing, unlike the legacy whole-list sweep.  The scan stops at the
    # first non-commuting pending gate; the match node (or None) is returned.

    def _scan_one(self, gate, qubits, partner, flipped) -> "_Node | None":
        stack = self._wires[qubits[0]]
        cache = self._commute_cache
        name = gate.name
        for index in range(len(stack) - 1, -1, -1):
            node = stack[index]
            if not node.alive:
                continue
            other = node.gate
            if other.name == partner and (
                other.qubits == qubits or other.qubits == flipped
            ):
                return node
            key = (name, qubits, other.name, other.qubits)
            verdict = cache.get(key)
            if verdict is None:
                verdict = gates_commute(gate, other)
                cache[key] = verdict
            if not verdict:
                return None
        return None

    def _scan_two(self, gate, qubits, partner, flipped) -> "_Node | None":
        wires = self._wires
        stack_a = wires[qubits[0]]
        stack_b = wires[qubits[1]]
        index_a = len(stack_a) - 1
        index_b = len(stack_b) - 1
        cache = self._commute_cache
        name = gate.name
        while True:
            while index_a >= 0 and not stack_a[index_a].alive:
                index_a -= 1
            while index_b >= 0 and not stack_b[index_b].alive:
                index_b -= 1
            if index_a < 0 and index_b < 0:
                return None
            if index_b < 0 or (
                index_a >= 0 and stack_a[index_a].seq >= stack_b[index_b].seq
            ):
                node = stack_a[index_a]
                index_a -= 1
                # a pending two-qubit gate sharing both wires sits on both
                # stacks; step past it on both
                if index_b >= 0 and stack_b[index_b] is node:
                    index_b -= 1
            else:
                node = stack_b[index_b]
                index_b -= 1
            other = node.gate
            if other.name == partner and (
                other.qubits == qubits or other.qubits == flipped
            ):
                return node
            key = (name, qubits, other.name, other.qubits)
            verdict = cache.get(key)
            if verdict is None:
                verdict = gates_commute(gate, other)
                cache[key] = verdict
            if not verdict:
                return None

    # ------------------------------------------------------------------ #
    # Rewrite application
    # ------------------------------------------------------------------ #
    def _merge_rotation(self, gate: Gate, node: "_Node | None") -> None:
        """Fold the arriving rotation into ``node`` (or push it, normalized)."""
        angle = gate.params[0]
        if node is not None:
            other = node.gate
            raw = node.raw_angle + angle
            merged = math.remainder(raw, _FOUR_PI)
            if abs(merged) < _ZERO_EPS or abs(abs(merged) - _FOUR_PI) < _ZERO_EPS:
                self._kill(node)
            else:
                node.raw_angle = raw
                if merged != other.params[0]:
                    node.gate = Gate(gate.name, other.qubits, (merged,))
            return
        normalized = math.remainder(angle, _FOUR_PI)
        if abs(normalized) < _ZERO_EPS or abs(abs(normalized) - _FOUR_PI) < _ZERO_EPS:
            return
        if normalized != angle:
            gate = Gate(gate.name, gate.qubits, (normalized,))
        self._push(gate, angle)

    # ------------------------------------------------------------------ #
    # Buffer maintenance
    # ------------------------------------------------------------------ #
    def _push(self, gate: Gate, raw_angle: float | None) -> None:
        node = _Node(gate, raw_angle, self._seq)
        self._seq += 1
        self._order.append(node)
        for qubit in gate.qubits:
            self._wires[qubit].append(node)
        self._live += 1

    def _kill(self, node: _Node) -> None:
        node.alive = False
        self._live -= 1
        self._dead += 1
        for qubit in node.gate.qubits:
            stack = self._wires[qubit]
            while stack and not stack[-1].alive:
                stack.pop()
        if self._dead > _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop dead nodes from all buffers (amortized against the kills)."""
        self._order = [node for node in self._order if node.alive]
        for qubit, stack in enumerate(self._wires):
            self._wires[qubit] = [node for node in stack if node.alive]
        self._dead = 0

def streaming_peephole_optimize(circuit: "QuantumCircuit") -> "QuantumCircuit":
    """Peephole-optimize a circuit in one streaming pass.

    Reaches the same fixpoint as the legacy
    :func:`~repro.transpile.peephole.peephole_optimize` (without its
    ``max_iterations`` cap) by streaming the gate list through a
    :class:`GateStreamOptimizer`.
    """
    from repro.circuits.circuit import QuantumCircuit

    optimizer = GateStreamOptimizer(circuit.num_qubits)
    optimizer.extend(circuit)
    return QuantumCircuit.from_trusted_gates(circuit.num_qubits, optimizer.gates())
