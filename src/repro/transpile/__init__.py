"""Circuit-level optimization and hardware mapping.

This sub-package stands in for the Qiskit transpiler used by the paper:

* :mod:`repro.transpile.peephole` — local rewriting passes (inverse-pair
  cancellation, rotation merging, commutation-aware CNOT cancellation) that
  play the role of "Qiskit optimization level 3" in the evaluation.  The
  iterated-sweep engine here is the unoptimized ground truth; the production
  path is the streaming engine below.
* :mod:`repro.transpile.wire_optimizer` — the streaming wire-indexed
  peephole engine: per-qubit frontier stacks reach the same rewrite fixpoint
  in one amortized-linear pass, eagerly at gate-append time, so circuit
  emission can fuse local optimization instead of rescanning the tail.
* :mod:`repro.transpile.coupling` — coupling-map models of the two
  limited-connectivity backends of Fig. 11 (IBM Manhattan's 65-qubit
  heavy-hex lattice and Google Sycamore's 64-qubit 2-D grid).
* :mod:`repro.transpile.routing` — a SABRE-style SWAP-insertion router.
"""

from repro.transpile.peephole import peephole_optimize
from repro.transpile.wire_optimizer import GateStreamOptimizer, streaming_peephole_optimize
from repro.transpile.coupling import CouplingMap
from repro.transpile.routing import route_circuit, RoutingResult

__all__ = [
    "peephole_optimize",
    "GateStreamOptimizer",
    "streaming_peephole_optimize",
    "CouplingMap",
    "route_circuit",
    "RoutingResult",
]
