"""Coupling-map models of the evaluation backends.

The paper maps circuits to two devices with limited connectivity: the
65-qubit IBM Manhattan (heavy-hex lattice) and the 64-qubit Google Sycamore
(2-D grid).  Real calibration data is not needed — only the connectivity
graph matters for SWAP-insertion counts — so the maps are generated
programmatically: an exact 2-D grid for Sycamore and a heavy-hex style
lattice (degree at most 3) with 65 qubits for Manhattan.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import networkx as nx

from repro.exceptions import RoutingError


class CouplingMap:
    """An undirected qubit-connectivity graph with cached distances."""

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]], name: str = "custom"):
        self.num_qubits = int(num_qubits)
        self.name = name
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        for first, second in edges:
            if not (0 <= first < self.num_qubits and 0 <= second < self.num_qubits):
                raise RoutingError(f"edge ({first}, {second}) outside 0..{self.num_qubits - 1}")
            if first == second:
                raise RoutingError("self-loop edges are not allowed")
            self.graph.add_edge(int(first), int(second))
        self._distances: dict[int, dict[int, int]] | None = None

    # ------------------------------------------------------------------ #
    @property
    def edges(self) -> list[tuple[int, int]]:
        return [(int(a), int(b)) for a, b in self.graph.edges]

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(int(n) for n in self.graph.neighbors(qubit))

    def are_connected(self, first: int, second: int) -> bool:
        return self.graph.has_edge(first, second)

    def is_connected_graph(self) -> bool:
        return nx.is_connected(self.graph)

    def distance(self, first: int, second: int) -> int:
        if self._distances is None:
            self._distances = {
                int(source): {int(t): int(d) for t, d in lengths.items()}
                for source, lengths in nx.all_pairs_shortest_path_length(self.graph)
            }
        try:
            return self._distances[first][second]
        except KeyError as error:
            raise RoutingError(f"no path between qubits {first} and {second}") from error

    def shortest_path(self, first: int, second: int) -> list[int]:
        try:
            return [int(q) for q in nx.shortest_path(self.graph, first, second)]
        except nx.NetworkXNoPath as error:
            raise RoutingError(f"no path between qubits {first} and {second}") from error

    def __repr__(self) -> str:
        return f"CouplingMap({self.name!r}, qubits={self.num_qubits}, edges={len(self.edges)})"

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    @classmethod
    def fully_connected(cls, num_qubits: int) -> "CouplingMap":
        edges = [
            (first, second)
            for first in range(num_qubits)
            for second in range(first + 1, num_qubits)
        ]
        return cls(num_qubits, edges, name=f"full-{num_qubits}")

    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        edges = [(index, index + 1) for index in range(num_qubits - 1)]
        return cls(num_qubits, edges, name=f"line-{num_qubits}")

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        edges = [(index, (index + 1) % num_qubits) for index in range(num_qubits)]
        return cls(num_qubits, edges, name=f"ring-{num_qubits}")

    @classmethod
    def grid(cls, rows: int, columns: int) -> "CouplingMap":
        """A rows x columns 2-D nearest-neighbour grid."""
        def index(row: int, column: int) -> int:
            return row * columns + column

        edges = []
        for row in range(rows):
            for column in range(columns):
                if column + 1 < columns:
                    edges.append((index(row, column), index(row, column + 1)))
                if row + 1 < rows:
                    edges.append((index(row, column), index(row + 1, column)))
        return cls(rows * columns, edges, name=f"grid-{rows}x{columns}")

    @classmethod
    def sycamore(cls) -> "CouplingMap":
        """The 64-qubit 2-D grid stand-in for Google Sycamore used in Fig. 11."""
        device = cls.grid(8, 8)
        device.name = "sycamore-64"
        return device

    @classmethod
    def heavy_hex(cls, row_count: int = 4, row_length: int = 11) -> "CouplingMap":
        """A heavy-hex style lattice (degree at most 3, IBM Falcon/Hummingbird style).

        Rows of ``row_length`` qubits are connected linearly; consecutive rows
        are joined through dedicated bridge qubits attached at alternating
        columns, which reproduces the sparse degree-2/3 structure that makes
        heavy-hex routing expensive.
        """
        edges: list[tuple[int, int]] = []
        row_start: list[int] = []
        next_index = 0
        for _ in range(row_count):
            row_start.append(next_index)
            for column in range(row_length - 1):
                edges.append((next_index + column, next_index + column + 1))
            next_index += row_length
        for row in range(row_count - 1):
            # Bridges every 4 columns, offset by 2 on odd gaps (heavy-hex pattern).
            offset = 1 if row % 2 == 0 else 3
            for column in range(offset, row_length, 4):
                bridge = next_index
                next_index += 1
                edges.append((row_start[row] + column, bridge))
                edges.append((bridge, row_start[row + 1] + column))
        return cls(next_index, edges, name=f"heavy-hex-{next_index}")

    @classmethod
    def ibm_manhattan(cls) -> "CouplingMap":
        """The 65-qubit heavy-hex stand-in for IBM Manhattan used in Fig. 11."""
        device = cls.heavy_hex(row_count=5, row_length=11)
        device.name = "ibm-manhattan-65"
        return device


def bfs_distance(edges: Iterable[tuple[int, int]], num_qubits: int, source: int) -> list[int]:
    """Breadth-first distances from ``source`` (utility for tests and layouts)."""
    adjacency: dict[int, list[int]] = {index: [] for index in range(num_qubits)}
    for first, second in edges:
        adjacency[first].append(second)
        adjacency[second].append(first)
    distances = [-1] * num_qubits
    distances[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if distances[neighbor] == -1:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances
