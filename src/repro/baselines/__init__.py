"""Baseline compilers re-implementing the ideas of the paper's comparison points.

The original evaluation compares QuCLEAR against Qiskit, T|ket>, Paulihedral,
Rustiq and Tetris binaries.  Those tools are not available offline, so each
baseline here re-implements the published core idea of the corresponding
method (see DESIGN.md for the substitution rationale):

* :func:`compile_naive` — direct V-shaped synthesis, no optimization (the
  "native" gate counts of Table II).
* :func:`compile_qiskit_like` — direct synthesis followed by peephole local
  rewriting (inverse cancellation, rotation merging) — the Qiskit O3 stand-in.
* :func:`compile_paulihedral_like` — block-wise gate cancellation: Pauli
  strings are reordered inside commuting blocks to maximise shared structure
  between adjacent V-blocks before local rewriting (Paulihedral's idea).
* :func:`compile_tket_like` — phase-gadget style synthesis with balanced
  parity trees plus local rewriting (T|ket>'s pairwise gadget approach).
* :func:`compile_rustiq_like` — greedy Pauli-network synthesis: a persistent
  Clifford frame, no uncomputation per gadget, with the final Clifford frame
  emitted explicitly at the end of the circuit (Rustiq's idea, without
  QuCLEAR's absorption step).
"""

from repro.baselines.result import BaselineResult, CompilationResult
from repro.baselines.naive import compile_naive, compile_qiskit_like
from repro.baselines.paulihedral import compile_paulihedral_like
from repro.baselines.tket import compile_tket_like
from repro.baselines.rustiq import compile_rustiq_like
from repro.baselines.registry import BASELINE_COMPILERS, compile_with

__all__ = [
    "BaselineResult",
    "CompilationResult",
    "compile_naive",
    "compile_qiskit_like",
    "compile_paulihedral_like",
    "compile_tket_like",
    "compile_rustiq_like",
    "BASELINE_COMPILERS",
    "compile_with",
]
