"""Paulihedral-style baseline: block-wise reordering for gate cancellation.

Paulihedral's core idea (Li et al., ASPLOS 2022) is a Pauli-string
intermediate representation in which mutually commuting strings are grouped
into blocks, the strings inside (and across) blocks are ordered so that
adjacent V-shaped gadgets share as much of their CNOT trees as possible, and
the shared parts cancel during synthesis.  The re-implementation here keeps
the essential mechanism:

* strings are grouped into commuting blocks,
* inside every block a greedy nearest-neighbour order maximises the letter
  overlap between consecutive strings,
* every gadget's parity chain is ordered so that qubits shared with the next
  string come last (right next to the mirrored tree of the following gadget),
* the peephole pass then cancels the mirrored trees.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.circuits.circuit import QuantumCircuit
from repro.core.commuting import convert_commute_sets
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.synthesis.pauli_rotation import basis_change_gates, cnot_chain_gates
from repro.transpile.peephole import peephole_optimize


def _letter_overlap(first: PauliString, second: PauliString) -> int:
    """Number of qubits on which the two strings carry the same non-identity letter."""
    overlap = 0
    for qubit in range(first.num_qubits):
        letter = first.letter(qubit)
        if letter != "I" and letter == second.letter(qubit):
            overlap += 1
    return overlap


def _order_block(block: list[PauliTerm]) -> list[PauliTerm]:
    """Greedy nearest-neighbour ordering by letter overlap."""
    if len(block) <= 2:
        return list(block)
    remaining = list(block)
    ordered = [remaining.pop(0)]
    while remaining:
        last = ordered[-1].pauli
        best_index = max(
            range(len(remaining)), key=lambda index: _letter_overlap(last, remaining[index].pauli)
        )
        ordered.append(remaining.pop(best_index))
    return ordered


def _chain_order(term: PauliTerm, previous_term: PauliTerm | None) -> list[int]:
    """Support order: qubits sharing their letter with the previous string first.

    The mirrored tree of the previous gadget ends with the CNOTs over the
    first qubits of *its* chain; starting the next chain with the qubits whose
    letters (and hence basis-change gates) match the previous string turns
    those CNOT pairs into adjacent inverses that the peephole pass removes.
    """
    support = term.pauli.support
    if previous_term is None:
        return support
    shared = {
        qubit
        for qubit in support
        if term.pauli.letter(qubit) == previous_term.pauli.letter(qubit)
        and previous_term.pauli.letter(qubit) != "I"
    }
    return [q for q in support if q in shared] + [q for q in support if q not in shared]


def _synthesize_gadget(term: PauliTerm, order: list[int], num_qubits: int) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    pauli = term.pauli
    sign = pauli.sign
    angle = term.coefficient if sign == 1 else -term.coefficient
    basis = basis_change_gates(pauli)
    tree, root = cnot_chain_gates(order)
    circuit.extend(basis)
    circuit.extend(tree)
    circuit.rz(angle, root)
    circuit.extend(gate.inverse() for gate in reversed(tree))
    circuit.extend(gate.inverse() for gate in reversed(basis))
    return circuit


def compile_paulihedral_like(terms: Sequence[PauliTerm]) -> CompilationResult:
    """Block-wise gate-cancellation baseline."""
    term_list = list(terms)
    start = time.perf_counter()
    num_qubits = term_list[0].num_qubits
    blocks = [_order_block(block) for block in convert_commute_sets(term_list)]
    ordered = [term for block in blocks for term in block]

    circuit = QuantumCircuit(num_qubits)
    previous_term: PauliTerm | None = None
    for term in ordered:
        if term.pauli.is_identity():
            continue
        order = _chain_order(term, previous_term)
        circuit = circuit.compose(_synthesize_gadget(term, order, num_qubits))
        previous_term = term
    optimized = peephole_optimize(circuit)
    return CompilationResult(
        name="paulihedral-like",
        circuit=optimized,
        compile_seconds=time.perf_counter() - start,
        metadata={"num_blocks": len(blocks), "pre_optimization_cx": circuit.cx_count()},
    )
