"""Common result container for baseline compilers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit


@dataclass
class BaselineResult:
    """Output of a baseline compiler run."""

    name: str
    circuit: QuantumCircuit
    compile_seconds: float
    metadata: dict = field(default_factory=dict)

    def cx_count(self) -> int:
        return self.circuit.cx_count()

    def entangling_depth(self) -> int:
        return self.circuit.entangling_depth()

    def metrics(self) -> dict[str, float]:
        return {
            "cx_count": self.circuit.cx_count(),
            "entangling_depth": self.circuit.entangling_depth(),
            "single_qubit_count": self.circuit.single_qubit_count(),
            "compile_seconds": self.compile_seconds,
        }
