"""Result container for baseline compilers.

.. deprecated::
    ``BaselineResult`` has been merged into the unified
    :class:`repro.compiler.result.CompilationResult`; every baseline now
    returns that type directly.  The name is kept as an alias so existing
    imports and ``isinstance`` checks keep working.
"""

from __future__ import annotations

from repro.compiler.result import CompilationResult

#: deprecated alias — baselines return the unified result type
BaselineResult = CompilationResult

__all__ = ["BaselineResult", "CompilationResult"]
