"""Rustiq-style baseline: greedy Pauli-network synthesis.

Rustiq (de Brugière & Martiel, 2024) synthesizes a sequence of Pauli
rotations bottom-up: a persistent Clifford frame is updated after every
rotation instead of uncomputing each gadget, and the residual Clifford is
emitted once at the end of the circuit.  The re-implementation reuses the
Clifford-extraction engine with its cheapest settings (no reordering, no
recursive lookahead) and — unlike QuCLEAR — appends the residual Clifford
frame to the circuit, because Rustiq has no classical absorption step.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.core.extraction import CliffordExtractor
from repro.paulis.term import PauliTerm
from repro.transpile.peephole import peephole_optimize


def compile_rustiq_like(terms: Sequence[PauliTerm]) -> CompilationResult:
    """Greedy Pauli-network synthesis with the residual Clifford emitted at the end."""
    term_list = list(terms)
    start = time.perf_counter()
    extractor = CliffordExtractor(
        reorder_within_blocks=False,
        recursive_tree=False,
        cross_block_lookahead=False,
    )
    extraction = extractor.extract(term_list)
    # Rustiq implements the full unitary: the residual Clifford frame stays in
    # the circuit (QuCLEAR's advantage is precisely that it does not).
    full_circuit = extraction.optimized_circuit.compose(extraction.extracted_clifford)
    optimized = peephole_optimize(full_circuit)
    return CompilationResult(
        name="rustiq-like",
        circuit=optimized,
        compile_seconds=time.perf_counter() - start,
        metadata={
            "network_cx": extraction.optimized_circuit.cx_count(),
            "frame_cx": extraction.extracted_clifford.cx_count(),
        },
    )
