"""T|ket>-style baseline: phase-gadget synthesis with balanced parity trees.

T|ket> compiles exponentiated Pauli strings as phase gadgets (Cowtan et al.,
2019), pairing and diagonalizing commuting gadgets and synthesizing the
parity logic with balanced trees before running its Clifford peephole
simplification.  The re-implementation keeps the two ingredients that matter
for the gate-count comparison: balanced (logarithmic-depth) parity trees per
gadget and a local rewriting pass over the concatenated circuit, with
commuting gadgets ordered to maximise adjacent cancellation.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.baselines.paulihedral import _order_block
from repro.compiler.result import CompilationResult
from repro.core.commuting import convert_commute_sets
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize


def compile_tket_like(terms: Sequence[PauliTerm]) -> CompilationResult:
    """Phase-gadget synthesis with balanced trees and local rewriting."""
    term_list = list(terms)
    start = time.perf_counter()
    blocks = [_order_block(block) for block in convert_commute_sets(term_list)]
    ordered = [term for block in blocks for term in block]
    circuit = synthesize_trotter_circuit(ordered, tree="balanced")
    optimized = peephole_optimize(circuit)
    return CompilationResult(
        name="tket-like",
        circuit=optimized,
        compile_seconds=time.perf_counter() - start,
        metadata={"num_blocks": len(blocks), "pre_optimization_cx": circuit.cx_count()},
    )
