"""Name-indexed access to every baseline compiler."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.naive import compile_naive, compile_qiskit_like
from repro.baselines.paulihedral import compile_paulihedral_like
from repro.baselines.result import BaselineResult
from repro.baselines.rustiq import compile_rustiq_like
from repro.baselines.tket import compile_tket_like
from repro.exceptions import WorkloadError
from repro.paulis.term import PauliTerm

#: every baseline compiler used by the evaluation harness, keyed by the short
#: name that appears in the benchmark output tables
BASELINE_COMPILERS: dict[str, Callable[[Sequence[PauliTerm]], BaselineResult]] = {
    "naive": compile_naive,
    "qiskit-like": compile_qiskit_like,
    "paulihedral-like": compile_paulihedral_like,
    "tket-like": compile_tket_like,
    "rustiq-like": compile_rustiq_like,
}


def compile_with(name: str, terms: Sequence[PauliTerm]) -> BaselineResult:
    """Run the baseline compiler called ``name`` on ``terms``."""
    try:
        compiler = BASELINE_COMPILERS[name]
    except KeyError as error:
        raise WorkloadError(
            f"unknown baseline {name!r}; available: {sorted(BASELINE_COMPILERS)}"
        ) from error
    return compiler(terms)
