"""Name-indexed access to every baseline compiler.

.. deprecated::
    The per-module dict and :func:`compile_with` predate the unified
    :class:`repro.compiler.registry.CompilerRegistry`, which also knows the
    QuCLEAR pipelines.  ``compile_with`` now delegates to that registry and
    emits a :class:`DeprecationWarning`; ``BASELINE_COMPILERS`` is kept for
    code that iterates the raw baseline functions.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence

from repro.baselines.naive import compile_naive, compile_qiskit_like
from repro.baselines.paulihedral import compile_paulihedral_like
from repro.baselines.result import BaselineResult
from repro.baselines.rustiq import compile_rustiq_like
from repro.baselines.tket import compile_tket_like
from repro.exceptions import CompilerError, SynthesisError, WorkloadError
from repro.paulis.term import PauliTerm

#: every baseline compiler function, keyed by the short name that appears in
#: the benchmark output tables (deprecated — prefer the CompilerRegistry)
BASELINE_COMPILERS: dict[str, Callable[[Sequence[PauliTerm]], BaselineResult]] = {
    "naive": compile_naive,
    "qiskit-like": compile_qiskit_like,
    "paulihedral-like": compile_paulihedral_like,
    "tket-like": compile_tket_like,
    "rustiq-like": compile_rustiq_like,
}


def compile_with(name: str, terms: Sequence[PauliTerm]) -> BaselineResult:
    """Run the baseline compiler called ``name`` on ``terms``.

    Deprecated: delegates to ``repro.compiler.get_registry().compile(...)``.
    """
    warnings.warn(
        "compile_with(name, terms) is deprecated; use "
        "repro.compiler.get_registry().compile(name, terms) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.compiler.registry import get_registry

    # keep the historical contract: only the five baselines are accepted here,
    # and an empty program raises the same SynthesisError the functions did
    if name not in BASELINE_COMPILERS:
        raise WorkloadError(
            f"unknown baseline {name!r}; available: {sorted(BASELINE_COMPILERS)}"
        )
    term_list = list(terms)
    if not term_list:
        raise SynthesisError("cannot synthesize a circuit from zero Pauli terms")
    try:
        return get_registry().compile(name, term_list)
    except CompilerError as error:  # defensive: no known pipeline error remains
        raise WorkloadError(str(error)) from error
