"""Direct synthesis baselines: unoptimized ("native") and peephole-optimized."""

from __future__ import annotations

import time
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize


def compile_naive(terms: Sequence[PauliTerm]) -> CompilationResult:
    """One V-shaped block per Pauli rotation, no optimization at all."""
    start = time.perf_counter()
    circuit = synthesize_trotter_circuit(list(terms))
    return CompilationResult(
        name="naive",
        circuit=circuit,
        compile_seconds=time.perf_counter() - start,
    )


def compile_qiskit_like(terms: Sequence[PauliTerm]) -> CompilationResult:
    """Direct synthesis followed by peephole local rewriting (Qiskit O3 stand-in)."""
    start = time.perf_counter()
    circuit = synthesize_trotter_circuit(list(terms))
    optimized = peephole_optimize(circuit)
    return CompilationResult(
        name="qiskit-like",
        circuit=optimized,
        compile_seconds=time.perf_counter() - start,
        metadata={"pre_optimization_cx": circuit.cx_count()},
    )
