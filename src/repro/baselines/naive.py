"""Direct synthesis baselines: unoptimized ("native") and peephole-optimized."""

from __future__ import annotations

import time
from typing import Sequence

from repro.baselines.result import BaselineResult
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize


def compile_naive(terms: Sequence[PauliTerm]) -> BaselineResult:
    """One V-shaped block per Pauli rotation, no optimization at all."""
    start = time.perf_counter()
    circuit = synthesize_trotter_circuit(list(terms))
    return BaselineResult(
        name="naive",
        circuit=circuit,
        compile_seconds=time.perf_counter() - start,
    )


def compile_qiskit_like(terms: Sequence[PauliTerm]) -> BaselineResult:
    """Direct synthesis followed by peephole local rewriting (Qiskit O3 stand-in)."""
    start = time.perf_counter()
    circuit = synthesize_trotter_circuit(list(terms))
    optimized = peephole_optimize(circuit)
    return BaselineResult(
        name="qiskit-like",
        circuit=optimized,
        compile_seconds=time.perf_counter() - start,
        metadata={"pre_optimization_cx": circuit.cx_count()},
    )
