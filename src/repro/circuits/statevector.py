"""Dense statevector simulation for correctness checks and small workloads.

The simulator uses the little-endian convention: basis index ``b`` has qubit 0
as the least-significant bit.  It is intended for up to roughly 20 qubits
(QAOA workloads) and forms the ground truth for every equivalence test in the
test suite.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import CircuitError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum


class Statevector:
    """A dense complex state vector on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        self.num_qubits = int(num_qubits)
        dimension = 1 << self.num_qubits
        if data is None:
            self.data = np.zeros(dimension, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dimension,):
                raise CircuitError(
                    f"statevector data must have length {dimension}, got {data.shape}"
                )
            self.data = data.copy()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Statevector":
        """Simulate ``circuit`` starting from ``|0...0>``."""
        state = cls(circuit.num_qubits)
        state.apply_circuit(circuit)
        return state

    def copy(self) -> "Statevector":
        return Statevector(self.num_qubits, self.data)

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: Gate) -> None:
        matrix = gate.matrix()
        if gate.num_qubits == 1:
            self._apply_single(matrix, gate.qubits[0])
        elif gate.num_qubits == 2:
            self._apply_two(matrix, gate.qubits[0], gate.qubits[1])
        else:
            raise CircuitError(f"unsupported gate arity for {gate!r}")

    def apply_circuit(self, circuit: QuantumCircuit) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise CircuitError("circuit and statevector qubit counts differ")
        for gate in circuit:
            self.apply_gate(gate)

    def _apply_single(self, matrix: np.ndarray, qubit: int) -> None:
        tensor = self.data.reshape([2] * self.num_qubits)
        axis = self.num_qubits - 1 - qubit
        tensor = np.moveaxis(tensor, axis, 0)
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(2, -1)
        tensor = tensor.reshape(shape)
        self.data = np.moveaxis(tensor, 0, axis).reshape(-1)

    def _apply_two(self, matrix: np.ndarray, qubit_a: int, qubit_b: int) -> None:
        # The 4x4 matrices in GATE_DEFINITIONS are little-endian: index
        # ordering |q_b q_a> with qubit_a the first listed qubit as the least
        # significant bit.
        tensor = self.data.reshape([2] * self.num_qubits)
        axis_a = self.num_qubits - 1 - qubit_a
        axis_b = self.num_qubits - 1 - qubit_b
        tensor = np.moveaxis(tensor, [axis_b, axis_a], [0, 1])
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(4, -1)
        tensor = tensor.reshape(shape)
        self.data = np.moveaxis(tensor, [0, 1], [axis_b, axis_a]).reshape(-1)

    # ------------------------------------------------------------------ #
    # Measurement and expectation values
    # ------------------------------------------------------------------ #
    def probabilities(self) -> np.ndarray:
        """Probability of each computational-basis state."""
        return np.abs(self.data) ** 2

    def probability_dict(self, tolerance: float = 1e-12) -> dict[str, float]:
        """Non-negligible basis-state probabilities keyed by bitstring.

        Bitstrings are written with qubit 0 as the rightmost character.
        """
        probabilities = self.probabilities()
        result: dict[str, float] = {}
        for index, probability in enumerate(probabilities):
            if probability > tolerance:
                result[format(index, f"0{self.num_qubits}b")] = float(probability)
        return result

    def sample_counts(self, shots: int, seed: int | None = None) -> dict[str, int]:
        """Sample measurement outcomes in the computational basis."""
        rng = np.random.default_rng(seed)
        probabilities = self.probabilities()
        probabilities = probabilities / probabilities.sum()
        outcomes = rng.choice(len(probabilities), size=shots, p=probabilities)
        counts: dict[str, int] = {}
        for outcome in outcomes:
            key = format(int(outcome), f"0{self.num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation_value(self, observable: PauliString | SparsePauliSum) -> float:
        """Exact expectation value of a Pauli string or a weighted sum."""
        if isinstance(observable, SparsePauliSum):
            return float(
                sum(
                    term.coefficient * self.expectation_value(term.pauli)
                    for term in observable
                )
            )
        transformed = self._apply_pauli(observable)
        return float(np.real(np.vdot(self.data, transformed)))

    def _apply_pauli(self, pauli: PauliString) -> np.ndarray:
        if pauli.num_qubits != self.num_qubits:
            raise CircuitError("Pauli and statevector qubit counts differ")
        result = self.data
        scratch = Statevector(self.num_qubits, result)
        for qubit in range(self.num_qubits):
            letter = pauli.letter(qubit)
            if letter != "I":
                scratch._apply_single(
                    {"X": np.array([[0, 1], [1, 0]], dtype=complex),
                     "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
                     "Z": np.array([[1, 0], [0, -1]], dtype=complex)}[letter],
                    qubit,
                )
        return complex(pauli.sign) * scratch.data

    # ------------------------------------------------------------------ #
    # Comparison helpers (used heavily by the tests)
    # ------------------------------------------------------------------ #
    def equiv(self, other: "Statevector", tolerance: float = 1e-9) -> bool:
        """True when the two states agree up to a global phase."""
        if self.num_qubits != other.num_qubits:
            return False
        overlap = np.vdot(self.data, other.data)
        return bool(abs(abs(overlap) - 1.0) < tolerance)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary matrix of a circuit (small qubit counts only)."""
    dimension = 1 << circuit.num_qubits
    columns = []
    for basis in range(dimension):
        data = np.zeros(dimension, dtype=complex)
        data[basis] = 1.0
        state = Statevector(circuit.num_qubits, data)
        state.apply_circuit(circuit)
        columns.append(state.data)
    return np.stack(columns, axis=1)


def circuits_equivalent(
    first: QuantumCircuit, second: QuantumCircuit, tolerance: float = 1e-8
) -> bool:
    """True when two circuits implement the same unitary up to global phase."""
    if first.num_qubits != second.num_qubits:
        return False
    unitary_first = circuit_unitary(first)
    unitary_second = circuit_unitary(second)
    product = unitary_second.conj().T @ unitary_first
    phase = product[0, 0]
    if abs(abs(phase) - 1.0) > tolerance:
        return False
    dimension = product.shape[0]
    return bool(np.allclose(product, phase * np.eye(dimension), atol=tolerance))
