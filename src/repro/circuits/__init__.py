"""Gate-level circuit substrate.

This sub-package replaces the Qiskit dependency of the original QuCLEAR
artifact: it provides a minimal but complete gate model (:class:`Gate`),
a :class:`QuantumCircuit` container with the metrics used throughout the
paper's evaluation (CNOT count, entangling depth, single-qubit count), and a
dense :class:`Statevector` simulator used by the correctness tests and the
hybrid-execution examples.
"""

from repro.circuits.gate import Gate, GATE_DEFINITIONS
from repro.circuits.circuit import CircuitBuilder, QuantumCircuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.statevector import Statevector

__all__ = [
    "Gate",
    "GATE_DEFINITIONS",
    "CircuitBuilder",
    "QuantumCircuit",
    "Statevector",
    "from_qasm",
    "to_qasm",
]
