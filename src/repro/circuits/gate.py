"""Gate primitives used by :class:`repro.circuits.QuantumCircuit`.

Only the gates actually needed by the QuCLEAR pipeline and its baselines are
defined: the Clifford generators (H, S, S†, X, Y, Z, CX, CZ, SWAP), the
parameterised rotations (RZ, RX, RY) and the combined square-root-of-X gates
(SX, SX†) used when changing measurement bases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError

#: names of gates that act on exactly one qubit
SINGLE_QUBIT_GATES = frozenset(
    {"i", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "rz", "rx", "ry"}
)

#: names of gates that act on exactly two qubits
TWO_QUBIT_GATES = frozenset({"cx", "cz", "swap", "rzz"})

#: Clifford gates (no free parameters)
CLIFFORD_GATES = frozenset(
    {"i", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "cx", "cz", "swap"}
)

#: gates that entangle two qubits (SWAP counts: it costs 3 CNOTs on hardware)
ENTANGLING_GATES = frozenset({"cx", "cz", "swap", "rzz"})

#: CNOT-equivalent cost per two-qubit gate, the weighting behind every
#: ``cx_count`` metric in the evaluation (SWAP decomposes into 3 CNOTs)
CX_EQUIVALENT_WEIGHT = {"cx": 1, "cz": 1, "rzz": 1, "swap": 3}

_INVERSE_NAME = {
    "i": "i",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "sdg",
    "sdg": "s",
    "sx": "sxdg",
    "sxdg": "sx",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
}


def _rotation_matrix(axis: str, theta: float) -> np.ndarray:
    half = theta / 2.0
    cos = math.cos(half)
    sin = math.sin(half)
    if axis == "z":
        return np.array([[np.exp(-1j * half), 0], [0, np.exp(1j * half)]], dtype=complex)
    if axis == "x":
        return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)
    if axis == "y":
        return np.array([[cos, -sin], [sin, cos]], dtype=complex)
    raise CircuitError(f"unknown rotation axis {axis!r}")


#: matrices of the fixed (non-parameterised) gates
GATE_DEFINITIONS: dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "sx": np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex) / 2,
    "sxdg": np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex) / 2,
    # Little-endian: the first listed qubit (the control) is the least
    # significant bit of the 4x4 basis ordering |q1 q0>.
    "cx": np.array(
        [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


@dataclass(frozen=True)
class Gate:
    """A single gate instance applied to specific qubits.

    Attributes
    ----------
    name:
        Lower-case gate name (``"h"``, ``"cx"``, ``"rz"``, ...).
    qubits:
        Target qubits.  For ``cx`` the first entry is the control and the
        second the target.
    params:
        Rotation angles for parameterised gates, empty otherwise.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        name = self.name
        if name in SINGLE_QUBIT_GATES:
            expected = 1
        elif name in TWO_QUBIT_GATES:
            expected = 2
        else:
            raise CircuitError(f"unsupported gate name {name!r}")
        if len(self.qubits) != expected:
            raise CircuitError(
                f"gate {name!r} expects {expected} qubit(s), got {self.qubits!r}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {name!r} has repeated qubits {self.qubits!r}")
        if name in ("rz", "rx", "ry", "rzz"):
            if len(self.params) != 1:
                raise CircuitError(f"gate {name!r} requires exactly one angle")
        elif self.params:
            raise CircuitError(f"gate {name!r} takes no parameters")

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_clifford(self) -> bool:
        return self.name in CLIFFORD_GATES

    @property
    def is_entangling(self) -> bool:
        return self.name in ENTANGLING_GATES

    @property
    def is_diagonal(self) -> bool:
        """True when the gate is diagonal in the computational basis."""
        return self.name in ("i", "z", "s", "sdg", "rz", "cz", "rzz")

    def inverse(self) -> "Gate":
        """The inverse gate."""
        if self.name in _INVERSE_NAME:
            return cached_gate(_INVERSE_NAME[self.name], self.qubits)
        if self.name in ("rz", "rx", "ry", "rzz"):
            return Gate(self.name, self.qubits, (-self.params[0],))
        raise CircuitError(f"cannot invert gate {self.name!r}")

    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix on its own qubits (little-endian)."""
        if self.name in GATE_DEFINITIONS:
            return GATE_DEFINITIONS[self.name].copy()
        if self.name in ("rz", "rx", "ry"):
            return _rotation_matrix(self.name[1], self.params[0])
        if self.name == "rzz":
            half = self.params[0] / 2.0
            return np.diag(
                [
                    np.exp(-1j * half),
                    np.exp(1j * half),
                    np.exp(1j * half),
                    np.exp(-1j * half),
                ]
            ).astype(complex)
        raise CircuitError(f"no matrix available for gate {self.name!r}")

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """A copy of the gate with its qubits translated through ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __repr__(self) -> str:
        if self.params:
            params = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({params}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


@lru_cache(maxsize=None)
def cached_gate(name: str, qubits: Tuple[int, ...]) -> Gate:
    """An interned parameterless :class:`Gate` instance.

    Gates are frozen and value-compared, so sharing instances is safe; the
    synthesis hot loops emit the same small set of ``h``/``sdg``/``cx`` gates
    over and over, and interning skips the dataclass construction +
    validation cost on every repeat.  Parameterised gates (rotations) carry
    float angles and are deliberately not interned.
    """
    return Gate(name, qubits)
