"""OpenQASM 2.0 export / import for interoperability with other toolchains.

QuCLEAR is platform independent: the optimized circuit can be executed by any
quantum software stack.  This module serialises :class:`QuantumCircuit`
objects to OpenQASM 2.0 (the lowest common denominator understood by Qiskit,
tket, Cirq importers, ...) and parses the same subset back.
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import CircuitError

_QASM_NAMES = {
    "i": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "sx": "sx",
    "sxdg": "sxdg",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
    "rz": "rz",
    "rx": "rx",
    "ry": "ry",
    "rzz": "rzz",
}
_REVERSE_NAMES = {value: key for key, value in _QASM_NAMES.items()}

_STATEMENT = re.compile(
    r"^(?P<name>[a-z]+)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<operands>.+?);$"
)
_OPERAND = re.compile(r"q\[(\d+)\]")


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2.0 program string."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        if gate.name not in _QASM_NAMES:
            raise CircuitError(f"gate {gate.name!r} has no OpenQASM 2.0 spelling")
        name = _QASM_NAMES[gate.name]
        params = f"({', '.join(repr(p) for p in gate.params)})" if gate.params else ""
        operands = ", ".join(f"q[{qubit}]" for qubit in gate.qubits)
        lines.append(f"{name}{params} {operands};")
    return "\n".join(lines) + "\n"


def from_qasm(text: str) -> QuantumCircuit:
    """Parse the OpenQASM 2.0 subset produced by :func:`to_qasm`."""
    num_qubits: int | None = None
    gates: list[Gate] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if line.startswith("qreg"):
            match = re.search(r"qreg\s+\w+\[(\d+)\];", line)
            if match is None:
                raise CircuitError(f"cannot parse register declaration {line!r}")
            num_qubits = int(match.group(1))
            continue
        if line.startswith("creg") or line.startswith("barrier") or line.startswith("measure"):
            continue
        match = _STATEMENT.match(line)
        if match is None:
            raise CircuitError(f"cannot parse OpenQASM statement {line!r}")
        qasm_name = match.group("name")
        if qasm_name not in _REVERSE_NAMES:
            raise CircuitError(f"unsupported OpenQASM gate {qasm_name!r}")
        params_text = match.group("params")
        params: tuple[float, ...] = ()
        if params_text:
            params = tuple(_evaluate_parameter(p) for p in params_text.split(","))
        qubits = tuple(int(index) for index in _OPERAND.findall(match.group("operands")))
        gates.append(Gate(_REVERSE_NAMES[qasm_name], qubits, params))
    if num_qubits is None:
        raise CircuitError("the OpenQASM program declares no quantum register")
    return QuantumCircuit(num_qubits, gates)


def _evaluate_parameter(text: str) -> float:
    """Evaluate a numeric OpenQASM parameter expression (numbers and ``pi``)."""
    cleaned = text.strip()
    if not re.fullmatch(r"[0-9eE+\-*/(). pi]*", cleaned):
        raise CircuitError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {"pi": math.pi}))
    except Exception as error:
        raise CircuitError(f"cannot evaluate parameter expression {text!r}") from error
