"""OpenQASM 2.0 export / import for interoperability with other toolchains.

QuCLEAR is platform independent: the optimized circuit can be executed by any
quantum software stack.  This module serialises :class:`QuantumCircuit`
objects to OpenQASM 2.0 (the lowest common denominator understood by Qiskit,
tket, Cirq importers, ...) and parses the same subset back.
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate, cached_gate
from repro.exceptions import CircuitError

_QASM_NAMES = {
    "i": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "sx": "sx",
    "sxdg": "sxdg",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
    "rz": "rz",
    "rx": "rx",
    "ry": "ry",
    "rzz": "rzz",
}
_REVERSE_NAMES = {value: key for key, value in _QASM_NAMES.items()}

_STATEMENT = re.compile(
    r"^(?P<name>[a-z]+)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<operands>.+?);$"
)
_OPERAND = re.compile(r"q\[(\d+)\]")


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2.0 program string."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        if gate.name not in _QASM_NAMES:
            raise CircuitError(f"gate {gate.name!r} has no OpenQASM 2.0 spelling")
        name = _QASM_NAMES[gate.name]
        params = f"({', '.join(repr(p) for p in gate.params)})" if gate.params else ""
        operands = ", ".join(f"q[{qubit}]" for qubit in gate.qubits)
        lines.append(f"{name}{params} {operands};")
    return "\n".join(lines) + "\n"


#: statement prefixes that carry no gate (skipped by the parser)
_SKIPPED_PREFIXES = ("OPENQASM", "include", "creg", "barrier", "measure")


def from_qasm(text: str) -> QuantumCircuit:
    """Parse the OpenQASM 2.0 subset produced by :func:`to_qasm`.

    The parser is on the service deserialization hot path (a cached
    ``CompilationResult`` carries its circuits as QASM text), so the common
    statement shape — ``name q[i];`` / ``name(angle) q[i], q[j];`` with plain
    float literals — is handled with string splitting and interned
    parameterless gates; the regex/expression machinery remains as the
    fallback for hand-written programs (``pi``-expressions, odd whitespace).
    """
    num_qubits: int | None = None
    gates: list[Gate] = []
    reverse_names = _REVERSE_NAMES
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if "//" in line:
            line = line.split("//")[0].strip()
            if not line:
                continue
        if line.startswith(_SKIPPED_PREFIXES):
            continue
        if line.startswith("qreg"):
            match = re.search(r"qreg\s+\w+\[(\d+)\];", line)
            if match is None:
                raise CircuitError(f"cannot parse register declaration {line!r}")
            num_qubits = int(match.group(1))
            continue
        gate = _parse_statement_fast(line, reverse_names)
        if gate is None:
            gate = _parse_statement_slow(line)
        gates.append(gate)
    if num_qubits is None:
        raise CircuitError("the OpenQASM program declares no quantum register")
    return QuantumCircuit(num_qubits, gates)


def _parse_statement_fast(line: str, reverse_names: dict) -> Gate | None:
    """Parse one canonical ``to_qasm``-shaped statement, or None to fall back."""
    if not line.endswith(";"):
        return None
    body = line[:-1]
    params: tuple[float, ...] = ()
    head, sep, operands = body.partition(" ")
    if "(" in head:
        name_text, _, params_text = head.partition("(")
        if not params_text.endswith(")"):
            return None
        try:
            params = (float(params_text[:-1]),)
        except ValueError:
            return None
    else:
        name_text = head
    name = reverse_names.get(name_text)
    if name is None or not sep:
        return None
    qubits = []
    for token in operands.split(","):
        token = token.strip()
        if not (token.startswith("q[") and token.endswith("]")):
            return None
        try:
            qubits.append(int(token[2:-1]))
        except ValueError:
            return None
    try:
        if params:
            return Gate(name, tuple(qubits), params)
        return cached_gate(name, tuple(qubits))
    except CircuitError:
        return None


def _parse_statement_slow(line: str) -> Gate:
    """The general regex/expression parser (``pi`` arithmetic, odd spacing)."""
    match = _STATEMENT.match(line)
    if match is None:
        raise CircuitError(f"cannot parse OpenQASM statement {line!r}")
    qasm_name = match.group("name")
    if qasm_name not in _REVERSE_NAMES:
        raise CircuitError(f"unsupported OpenQASM gate {qasm_name!r}")
    params_text = match.group("params")
    params: tuple[float, ...] = ()
    if params_text:
        params = tuple(_evaluate_parameter(p) for p in params_text.split(","))
    qubits = tuple(int(index) for index in _OPERAND.findall(match.group("operands")))
    return Gate(_REVERSE_NAMES[qasm_name], qubits, params)


def _evaluate_parameter(text: str) -> float:
    """Evaluate a numeric OpenQASM parameter expression (numbers and ``pi``)."""
    cleaned = text.strip()
    if not re.fullmatch(r"[0-9eE+\-*/(). pi]*", cleaned):
        raise CircuitError(f"unsupported parameter expression {text!r}")
    try:
        return float(eval(cleaned, {"__builtins__": {}}, {"pi": math.pi}))
    except Exception as error:
        raise CircuitError(f"cannot evaluate parameter expression {text!r}") from error
