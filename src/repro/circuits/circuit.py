"""The :class:`QuantumCircuit` container and its structural metrics."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from repro.circuits.gate import CX_EQUIVALENT_WEIGHT, Gate
from repro.exceptions import CircuitError


class QuantumCircuit:
    """An ordered list of gates on a fixed number of qubits.

    The class intentionally mirrors the small subset of the Qiskit
    ``QuantumCircuit`` API that the QuCLEAR pipeline needs: gate-append
    helpers, composition, inversion and the structural metrics reported in the
    paper (CNOT count, entangling depth, single-qubit gate count).
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] | None = None):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------ #
    # Basic container behaviour
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def gates(self) -> list[Gate]:
        """The live gate list — NOT a copy; treat as read-only.

        Every hot loop that reads ``circuit.gates`` used to pay an O(gates)
        list copy per access.  Mutation must go through :meth:`append` /
        :meth:`extend` (which bounds-check); callers that need an independent
        mutable list should take ``list(circuit)`` explicitly.
        """
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(num_qubits={self._num_qubits}, "
            f"gates={len(self._gates)}, cx={self.cx_count()})"
        )

    def copy(self) -> "QuantumCircuit":
        clone = QuantumCircuit(self._num_qubits)
        clone._gates = list(self._gates)
        return clone

    # ------------------------------------------------------------------ #
    # Gate appending
    # ------------------------------------------------------------------ #
    def append(self, gate: Gate) -> "QuantumCircuit":
        for qubit in gate.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise CircuitError(
                    f"gate {gate!r} addresses qubit {qubit} outside 0..{self._num_qubits - 1}"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    def i(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("i", (qubit,)))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("x", (qubit,)))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("y", (qubit,)))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("z", (qubit,)))

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("h", (qubit,)))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("s", (qubit,)))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("sdg", (qubit,)))

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("sx", (qubit,)))

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("sxdg", (qubit,)))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("rz", (qubit,), (float(theta),)))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("rx", (qubit,), (float(theta),)))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(Gate("ry", (qubit,), (float(theta),)))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(Gate("cx", (control, target)))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(Gate("cz", (control, target)))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(Gate("swap", (qubit_a, qubit_b)))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(Gate("rzz", (qubit_a, qubit_b), (float(theta),)))

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` first, then ``other``."""
        if other.num_qubits != self._num_qubits:
            raise CircuitError(
                f"cannot compose circuits on {self._num_qubits} and {other.num_qubits} qubits"
            )
        combined = self.copy()
        combined._gates.extend(other._gates)
        return combined

    def inverse(self) -> "QuantumCircuit":
        """The inverse circuit (gates reversed, each inverted)."""
        inverted = QuantumCircuit(self._num_qubits)
        inverted._gates = [gate.inverse() for gate in reversed(self._gates)]
        return inverted

    def remapped(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Translate every gate's qubits through ``mapping``."""
        target_size = num_qubits if num_qubits is not None else self._num_qubits
        remapped = QuantumCircuit(target_size)
        for gate in self._gates:
            remapped.append(gate.remapped(mapping))
        return remapped

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def count_ops(self) -> Counter:
        """Histogram of gate names."""
        return Counter(gate.name for gate in self._gates)

    def cx_count(self) -> int:
        """Number of CNOT-equivalent two-qubit gates (SWAP counts as 3)."""
        weights = CX_EQUIVALENT_WEIGHT
        total = 0
        for gate in self._gates:
            weight = weights.get(gate.name)
            if weight is not None:
                total += weight
        return total

    def two_qubit_count(self) -> int:
        """Number of two-qubit gate instances (SWAP counts once)."""
        return sum(1 for gate in self._gates if gate.num_qubits == 2)

    def single_qubit_count(self) -> int:
        """Number of single-qubit gate instances (identities excluded)."""
        return sum(1 for gate in self._gates if gate.num_qubits == 1 and gate.name != "i")

    def depth(self, entangling_only: bool = False) -> int:
        """Circuit depth; with ``entangling_only`` count only two-qubit layers."""
        levels = [0] * self._num_qubits
        for gate in self._gates:
            if entangling_only and gate.num_qubits < 2:
                continue
            start = max(levels[q] for q in gate.qubits)
            for qubit in gate.qubits:
                levels[qubit] = start + 1
        return max(levels) if levels else 0

    def entangling_depth(self) -> int:
        """Depth counting only entangling (two-qubit) gates."""
        return self.depth(entangling_only=True)

    def num_parameters(self) -> int:
        """Number of parameterised rotation gates."""
        return sum(1 for gate in self._gates if gate.params)

    def used_qubits(self) -> list[int]:
        """Sorted list of qubits touched by at least one gate."""
        touched = set()
        for gate in self._gates:
            touched.update(gate.qubits)
        return sorted(touched)

    def metrics(self) -> dict[str, int]:
        """Bundle of the metrics reported in the paper's tables."""
        return {
            "num_qubits": self._num_qubits,
            "total_gates": len(self._gates),
            "cx_count": self.cx_count(),
            "single_qubit_count": self.single_qubit_count(),
            "depth": self.depth(),
            "entangling_depth": self.entangling_depth(),
        }

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def builder(cls, num_qubits: int, peephole: bool = True) -> "CircuitBuilder":
        """A streaming builder that peephole-optimizes at gate-append time.

        With ``peephole=True`` (the default) every appended gate streams
        through the wire-indexed
        :class:`~repro.transpile.wire_optimizer.GateStreamOptimizer`, so the
        finished circuit is already a local-rewrite fixpoint — the tail is
        built *once* instead of materialized and then repeatedly rescanned.
        ``peephole=False`` gives a plain accumulating builder with the same
        interface.
        """
        return CircuitBuilder(num_qubits, peephole=peephole)

    @classmethod
    def from_gates(cls, num_qubits: int, gates: Sequence[Gate]) -> "QuantumCircuit":
        return cls(num_qubits, gates)

    @classmethod
    def from_trusted_gates(cls, num_qubits: int, gates: list[Gate]) -> "QuantumCircuit":
        """Adopt ``gates`` without per-gate bounds checks (and without copying).

        For producers that already guarantee every gate addresses qubits in
        ``0..num_qubits-1`` — the synthesis passes build circuits from gates
        they generated themselves, where re-validating each append is pure
        overhead.  Ownership of the list transfers to the circuit.
        """
        circuit = cls(num_qubits)
        circuit._gates = gates
        return circuit


class CircuitBuilder:
    """Accumulates gates into a :class:`QuantumCircuit`, optimizing en route.

    The builder is the emission-fused peephole path: synthesis code appends
    gates exactly as it would onto a circuit (the builder mirrors the
    ``append``/``extend`` sink protocol), and with ``peephole=True`` each
    gate is folded into the streaming wire-indexed optimizer immediately, so
    :meth:`build` returns a circuit that is already a peephole fixpoint.
    """

    __slots__ = ("_num_qubits", "_sink", "_gates")

    def __init__(self, num_qubits: int, peephole: bool = True):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        if peephole:
            # imported lazily: repro.transpile.peephole imports this module
            from repro.transpile.wire_optimizer import GateStreamOptimizer

            self._sink = GateStreamOptimizer(self._num_qubits)
            self._gates = None
        else:
            self._sink = None
            self._gates = []

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def optimizing(self) -> bool:
        return self._sink is not None

    @property
    def appended(self) -> int:
        """Gates fed in so far (before any peephole reduction)."""
        return self._sink.appended if self._sink is not None else len(self._gates)

    @property
    def appended_cx(self) -> int:
        """CNOT-equivalent count of the raw (pre-optimization) stream."""
        if self._sink is not None:
            return self._sink.appended_cx
        return sum(CX_EQUIVALENT_WEIGHT.get(gate.name, 0) for gate in self._gates)

    def __len__(self) -> int:
        """Gates currently surviving."""
        return len(self._sink) if self._sink is not None else len(self._gates)

    # ------------------------------------------------------------------ #
    def append(self, gate: Gate) -> "CircuitBuilder":
        for qubit in gate.qubits:
            if not 0 <= qubit < self._num_qubits:
                raise CircuitError(
                    f"gate {gate!r} addresses qubit {qubit} outside 0..{self._num_qubits - 1}"
                )
        if self._sink is not None:
            self._sink.append(gate)
        else:
            self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "CircuitBuilder":
        for gate in gates:
            self.append(gate)
        return self

    def build(self) -> QuantumCircuit:
        """The finished circuit (already a peephole fixpoint when optimizing)."""
        gates = self._sink.gates() if self._sink is not None else list(self._gates)
        return QuantumCircuit.from_trusted_gates(self._num_qubits, gates)
