"""Span-based distributed tracing for the serving stack.

One process-global :data:`TRACER` (mirroring ``repro.service.faults.REGISTRY``)
collects completed :class:`Span` records into a bounded ring buffer.  Every
serving layer — client, fleet front, server, scheduler, compile pool, cache —
opens named spans against a :class:`TraceContext` that rides the HTTP headers:

``X-Repro-Trace-Id``
    the 32-hex trace id; minted by whoever sees the request first.
``X-Repro-Trace``
    head-sampling override: ``1`` forces the trace on, ``0`` forces it off.
``X-Repro-Parent-Span``
    the caller's span id, so a worker's ``server.handle`` span stitches under
    the front's per-attempt forward span.

Sampling is decided once, at the head: an explicit trace id (or ``X-Repro-Trace:
1``) is always sampled; untraced requests are sampled at the server's
``--trace-sample`` probability.  An unsampled request carries *no* context
(``None``) and every tracing call site degrades to a no-op — tracing at the
default sample rate is safe at open-loop load-harness rates.

Spans are recorded on completion only (there is no "active span" registry), so
the ring buffer is the single source of truth for ``GET /trace/<id>`` and
``GET /traces``.
"""

from __future__ import annotations

import random
import re
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field

#: request headers (lower-cased as the server parses them)
TRACE_ID_HEADER = "x-repro-trace-id"
TRACE_FORCE_HEADER = "x-repro-trace"
PARENT_SPAN_HEADER = "x-repro-parent-span"

#: default probability that an untraced request is head-sampled
DEFAULT_SAMPLE_RATE = 0.01
#: default ring-buffer capacity, in completed spans
DEFAULT_CAPACITY = 4096

_VALID_ID = re.compile(r"^[0-9a-fA-F]{8,64}$")


def mint_trace_id() -> str:
    return uuid.uuid4().hex


def mint_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """A sampled trace: the id plus the span the next child hangs under.

    ``None`` (not a TraceContext) is the unsampled state everywhere — call
    sites never need to branch, :meth:`Tracer.span` returns a no-op handle.
    """

    trace_id: str
    span_id: "str | None" = None

    def child(self, span_id: str) -> "TraceContext":
        return TraceContext(self.trace_id, span_id)


@dataclass
class Span:
    """One completed, named span of a trace."""

    trace_id: str
    span_id: str
    parent_id: "str | None"
    name: str
    start_time: float  # epoch seconds
    duration_seconds: float
    tags: dict = field(default_factory=dict)
    error: "str | None" = None

    def to_dict(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration_seconds": self.duration_seconds,
        }
        if self.tags:
            payload["tags"] = dict(self.tags)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class _NullSpanHandle:
    """No-op stand-in returned for unsampled requests."""

    __slots__ = ()
    context: "TraceContext | None" = None

    def tag(self, key: str, value) -> "_NullSpanHandle":
        return self

    def set_error(self, message: str) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_HANDLE = _NullSpanHandle()


class SpanHandle:
    """Context manager that records one :class:`Span` on exit.

    An exception escaping the block tags the span with ``error`` (and is
    re-raised); :attr:`context` is the child context for anything this span
    calls into.
    """

    __slots__ = (
        "_tracer", "trace_id", "span_id", "parent_id", "name",
        "_tags", "_error", "_start_wall", "_start_perf",
    )

    def __init__(self, tracer: "Tracer", context: TraceContext, name: str,
                 tags: "dict | None" = None):
        self._tracer = tracer
        self.trace_id = context.trace_id
        self.parent_id = context.span_id
        self.span_id = mint_span_id()
        self.name = name
        self._tags = dict(tags) if tags else {}
        self._error: "str | None" = None
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def tag(self, key: str, value) -> "SpanHandle":
        self._tags[key] = value
        return self

    def set_error(self, message: str) -> "SpanHandle":
        self._error = str(message)
        return self

    def __enter__(self) -> "SpanHandle":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and self._error is None:
            self._error = f"{exc_type.__name__}: {exc}"
        self._tracer.record(
            self.trace_id,
            self.name,
            self._start_wall,
            time.perf_counter() - self._start_perf,
            parent_id=self.parent_id,
            span_id=self.span_id,
            tags=self._tags,
            error=self._error,
        )
        return None  # never suppress


class Tracer:
    """A thread-safe bounded ring buffer of completed spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=int(capacity))
        self._rng = random.Random()
        self.spans_recorded = 0
        self.spans_dropped = 0

    @property
    def capacity(self) -> int:
        return self._spans.maxlen or 0

    def resize(self, capacity: int) -> None:
        """Replace the ring with a new capacity, keeping the newest spans."""
        with self._lock:
            self._spans = deque(self._spans, maxlen=max(1, int(capacity)))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.spans_recorded = 0
            self.spans_dropped = 0

    # ------------------------------------------------------------------ #
    # head sampling
    # ------------------------------------------------------------------ #
    def sample_request(self, headers: "dict[str, str]",
                       sample_rate: float = DEFAULT_SAMPLE_RATE,
                       ) -> "TraceContext | None":
        """Decide, once, whether this request is traced.

        ``headers`` is the lower-cased header dict the HTTP layers parse.
        An explicit (well-formed) trace id or ``X-Repro-Trace: 1`` always
        samples; ``X-Repro-Trace: 0`` never does; otherwise the coin flip.
        """
        force = (headers.get(TRACE_FORCE_HEADER) or "").strip()
        if force == "0":
            return None
        trace_id = (headers.get(TRACE_ID_HEADER) or "").strip()
        if trace_id and _VALID_ID.match(trace_id):
            parent = (headers.get(PARENT_SPAN_HEADER) or "").strip()
            if not _VALID_ID.match(parent):
                parent = ""
            return TraceContext(trace_id.lower(), parent.lower() or None)
        if force == "1":
            return TraceContext(mint_trace_id())
        if sample_rate > 0.0 and self._rng.random() < sample_rate:
            return TraceContext(mint_trace_id())
        return None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def span(self, context: "TraceContext | None", name: str,
             tags: "dict | None" = None) -> "SpanHandle | _NullSpanHandle":
        """``with TRACER.span(ctx, "server.handle") as span: ...``"""
        if context is None:
            return _NULL_HANDLE
        return SpanHandle(self, context, name, tags)

    def record(self, trace_id: str, name: str, start_time: float,
               duration_seconds: float, *, parent_id: "str | None" = None,
               span_id: "str | None" = None, tags: "dict | None" = None,
               error: "str | None" = None) -> str:
        """Record a completed span directly (timings measured by the caller).

        Returns the span id so callers can hang children under it — e.g. the
        per-pass compile spans under ``scheduler.batch``.
        """
        span = Span(
            trace_id=trace_id,
            span_id=span_id or mint_span_id(),
            parent_id=parent_id,
            name=name,
            start_time=float(start_time),
            duration_seconds=max(0.0, float(duration_seconds)),
            tags=dict(tags) if tags else {},
            error=error,
        )
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.spans_dropped += 1
            self._spans.append(span)
            self.spans_recorded += 1
        return span.span_id

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def trace(self, trace_id: str) -> "list[dict]":
        """Every buffered span of one trace, oldest first."""
        trace_id = (trace_id or "").strip().lower()
        with self._lock:
            spans = [s for s in self._spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start_time, s.name))
        return [s.to_dict() for s in spans]

    def find(self, name: str, limit: "int | None" = None) -> "list[dict]":
        """Buffered spans by name, newest first (for the load harness)."""
        with self._lock:
            spans = [s for s in self._spans if s.name == name]
        spans.reverse()
        if limit is not None:
            spans = spans[: max(0, int(limit))]
        return [s.to_dict() for s in spans]

    def traces(self, limit: int = 20) -> "list[dict]":
        """Per-trace summaries over the ring buffer, newest first."""
        with self._lock:
            spans = list(self._spans)
        grouped: "dict[str, list[Span]]" = {}
        for span in spans:
            grouped.setdefault(span.trace_id, []).append(span)
        summaries = []
        for trace_id, members in grouped.items():
            start = min(s.start_time for s in members)
            end = max(s.start_time + s.duration_seconds for s in members)
            roots = [s for s in members if s.parent_id is None]
            root = min(roots or members, key=lambda s: s.start_time)
            summaries.append({
                "trace_id": trace_id,
                "root": root.name,
                "start_time": start,
                "duration_seconds": max(0.0, end - start),
                "spans": len(members),
                "errors": sum(1 for s in members if s.error is not None),
            })
        summaries.sort(key=lambda t: t["start_time"], reverse=True)
        return summaries[: max(0, int(limit))]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "buffered_spans": len(self._spans),
                "spans_recorded": self.spans_recorded,
                "spans_dropped": self.spans_dropped,
            }


def merge_trace_spans(span_lists: "list[list[dict]]") -> "list[dict]":
    """Stitch per-process span lists for one trace: dedupe by span id, sort.

    The fleet front merges its own buffered spans with each worker's
    ``GET /trace/<id>`` payload; a worker sharing the front's process (as
    in-process tests do) reports the same spans twice, hence the dedupe.
    """
    seen: "set[str]" = set()
    merged: "list[dict]" = []
    for spans in span_lists:
        for span in spans or []:
            span_id = span.get("span_id")
            if span_id in seen:
                continue
            seen.add(span_id)
            merged.append(span)
    merged.sort(key=lambda s: (s.get("start_time", 0.0), s.get("name", "")))
    return merged


def merge_trace_summaries(summary_lists: "list[list[dict]]",
                          limit: int = 20) -> "list[dict]":
    """Combine per-process :meth:`Tracer.traces` summaries fleet-wide.

    A trace spanning the front and a worker appears in both summary lists;
    the merged entry covers the union window and sums span/error counts.
    """
    merged: "dict[str, dict]" = {}
    for summaries in summary_lists:
        for summary in summaries or []:
            trace_id = summary.get("trace_id")
            if not trace_id:
                continue
            start = float(summary.get("start_time", 0.0))
            end = start + float(summary.get("duration_seconds", 0.0))
            existing = merged.get(trace_id)
            if existing is None:
                merged[trace_id] = {
                    "trace_id": trace_id,
                    "root": summary.get("root"),
                    "start_time": start,
                    "_end": end,
                    "spans": int(summary.get("spans", 0)),
                    "errors": int(summary.get("errors", 0)),
                }
                continue
            if start < existing["start_time"]:
                existing["start_time"] = start
                existing["root"] = summary.get("root")
            existing["_end"] = max(existing["_end"], end)
            existing["spans"] += int(summary.get("spans", 0))
            existing["errors"] += int(summary.get("errors", 0))
    combined = []
    for entry in merged.values():
        end = entry.pop("_end")
        entry["duration_seconds"] = max(0.0, end - entry["start_time"])
        combined.append(entry)
    combined.sort(key=lambda t: t["start_time"], reverse=True)
    return combined[: max(0, int(limit))]


#: the process-global tracer every serving layer records into
TRACER = Tracer()
