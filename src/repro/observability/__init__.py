"""Observability substrate: distributed tracing + Prometheus exposition.

``repro.observability`` is the per-request story the aggregate telemetry
cannot tell: every serving layer records named spans into the process-global
:data:`TRACER` ring buffer, stitched across the fleet by ``GET /trace/<id>``,
and :func:`render_prometheus` exposes the existing ``/metrics`` payloads in
the standard text format scrapers understand.
"""

from repro.observability.prometheus import (
    parse_prometheus_text,
    render_prometheus,
)
from repro.observability.tracer import (
    DEFAULT_CAPACITY,
    DEFAULT_SAMPLE_RATE,
    PARENT_SPAN_HEADER,
    TRACE_FORCE_HEADER,
    TRACE_ID_HEADER,
    TRACER,
    Span,
    SpanHandle,
    TraceContext,
    Tracer,
    merge_trace_spans,
    merge_trace_summaries,
    mint_span_id,
    mint_trace_id,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_SAMPLE_RATE",
    "PARENT_SPAN_HEADER",
    "TRACE_FORCE_HEADER",
    "TRACE_ID_HEADER",
    "TRACER",
    "Span",
    "SpanHandle",
    "TraceContext",
    "Tracer",
    "merge_trace_spans",
    "merge_trace_summaries",
    "mint_span_id",
    "mint_trace_id",
    "parse_prometheus_text",
    "render_prometheus",
]
