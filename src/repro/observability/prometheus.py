"""Prometheus text exposition for the service's JSON telemetry.

:func:`render_prometheus` turns one or more ``GET /metrics`` JSON payloads
(each with an optional label set, e.g. ``{"worker": "w0"}`` per fleet worker)
into the Prometheus text format: telemetry counters become ``counter``
families with a ``_total`` suffix, latency histograms become ``histogram``
families with cumulative ``le`` buckets rendered from the raw per-bucket
counts, and the scheduler/cache/pool stat blocks become ``gauge`` families.

:func:`parse_prometheus_text` is the strict validating parser CI and the
tests run against the rendered output: every sample must have a declared
type, no (name, labelset) may repeat, and histogram buckets must be
cumulative, monotone in ``le``, end at ``+Inf``, and agree with ``_count``.
"""

from __future__ import annotations

import math
import re

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')

#: JSON payload blocks rendered as plain gauges, keyed by metric prefix
_GAUGE_BLOCKS = ("scheduler", "cache", "pool", "tracer", "faults")


def _metric_name(raw: str) -> str:
    name = _NAME_SANITIZE.sub("_", raw)
    if not name.startswith("repro_"):
        name = "repro_" + name
    return name


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: "dict[str, str]") -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + body + "}"


class _Family:
    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        # counter/gauge: list of (labels, value)
        # histogram: list of (labels, bounds, counts, sum, count)
        self.samples: list = []


def _numeric(value) -> "float | None":
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def render_prometheus(sources: "list[tuple[dict, dict]]") -> str:
    """Render ``[(metrics_payload, labels), ...]`` to exposition text."""
    families: "dict[str, _Family]" = {}

    def family(name: str, kind: str) -> _Family:
        existing = families.get(name)
        if existing is None:
            existing = families[name] = _Family(name, kind)
        return existing

    for payload, labels in sources:
        if not isinstance(payload, dict):
            continue
        labels = {str(k): str(v) for k, v in (labels or {}).items()}
        telemetry = payload.get("telemetry") or {}
        uptime = telemetry.get("uptime_seconds")
        if uptime is not None:
            family("repro_uptime_seconds", "gauge").samples.append(
                (labels, float(uptime))
            )
        for raw, value in (telemetry.get("counters") or {}).items():
            name = _metric_name(raw)
            if not name.endswith("_total"):
                name += "_total"
            family(name, "counter").samples.append((labels, float(value)))
        for raw, stats in (telemetry.get("latency") or {}).items():
            buckets = stats.get("buckets") if isinstance(stats, dict) else None
            name = _metric_name(raw)
            if isinstance(buckets, dict) and buckets.get("counts"):
                family(name, "histogram").samples.append((
                    labels,
                    [float(b) for b in buckets.get("bounds") or []],
                    [int(c) for c in buckets["counts"]],
                    float(stats.get("sum_seconds", 0.0)),
                    int(stats.get("count", 0)),
                ))
            elif isinstance(stats, dict):
                # pre-PR-10 payload without raw buckets: summary gauges only
                family(name + "_sum", "gauge").samples.append(
                    (labels, float(stats.get("sum_seconds", 0.0)))
                )
                family(name + "_count", "gauge").samples.append(
                    (labels, float(stats.get("count", 0)))
                )
        for block in _GAUGE_BLOCKS:
            stats = payload.get(block)
            if not isinstance(stats, dict):
                continue
            for key, value in stats.items():
                number = _numeric(value)
                if number is None:
                    continue
                name = _metric_name(f"{block}_{key}")
                family(name, "gauge").samples.append((labels, number))

    lines: "list[str]" = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# HELP {name} repro service metric")
        lines.append(f"# TYPE {name} {fam.kind}")
        if fam.kind == "histogram":
            for labels, bounds, counts, total, count in fam.samples:
                cumulative = 0
                for bound, bucket_count in zip(bounds, counts):
                    cumulative += bucket_count
                    le_labels = dict(labels)
                    le_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels(le_labels)} {cumulative}"
                    )
                cumulative += sum(counts[len(bounds):])
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {cumulative}"
                )
                lines.append(f"{name}_sum{_format_labels(labels)} {repr(total)}")
                lines.append(f"{name}_count{_format_labels(labels)} {count}")
        else:
            for labels, value in fam.samples:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


def parse_prometheus_text(text: str) -> "dict[str, dict]":
    """Strictly parse exposition text; raise ``ValueError`` on any violation.

    Returns ``{family_name: {"type": ..., "samples": {labelset: value}}}``
    where ``labelset`` is a sorted tuple of ``(label, value)`` pairs and
    histogram samples keep their ``le`` label.
    """
    types: "dict[str, str]" = {}
    samples: "dict[str, dict[tuple, float]]" = {}

    def base_family(name: str) -> "str | None":
        """Resolve a sample name to its declared family, if any."""
        if name in types:
            return name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                candidate = name[: -len(suffix)]
                if types.get(candidate) == "histogram":
                    return candidate
        return None

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name, label_body, value_token = match.groups()
        family = base_family(name)
        if family is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no declared TYPE")
        labels = dict(_LABEL_PAIR.findall(label_body or ""))
        if label_body and not labels and label_body.strip():
            raise ValueError(f"line {lineno}: malformed labels: {label_body!r}")
        key = tuple(sorted(labels.items()))
        family_samples = samples.setdefault(name, {})
        if key in family_samples:
            raise ValueError(
                f"line {lineno}: duplicate sample {name!r} with labels {labels!r}"
            )
        family_samples[key] = _parse_number(value_token)

    # histogram shape checks: cumulative monotone buckets ending at +Inf == count
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(family + "_bucket", {})
        if not buckets and family + "_count" not in samples:
            continue  # declared but never sampled — fine
        grouped: "dict[tuple, list[tuple[float, float]]]" = {}
        for key, value in buckets.items():
            labels = dict(key)
            if "le" not in labels:
                raise ValueError(f"{family}_bucket sample missing 'le' label")
            le = _parse_number(labels.pop("le"))
            grouped.setdefault(tuple(sorted(labels.items())), []).append((le, value))
        counts = samples.get(family + "_count", {})
        sums = samples.get(family + "_sum", {})
        for group_key, pairs in grouped.items():
            pairs.sort(key=lambda p: p[0])
            les = [p[0] for p in pairs]
            values = [p[1] for p in pairs]
            if les[-1] != math.inf:
                raise ValueError(f"{family}: bucket series missing le=\"+Inf\"")
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"{family}: bucket counts not cumulative/monotone")
            if group_key not in counts:
                raise ValueError(f"{family}: histogram missing _count sample")
            if group_key not in sums:
                raise ValueError(f"{family}: histogram missing _sum sample")
            if values[-1] != counts[group_key]:
                raise ValueError(
                    f"{family}: le=\"+Inf\" bucket ({values[-1]}) != _count "
                    f"({counts[group_key]})"
                )

    families: "dict[str, dict]" = {}
    for family, kind in types.items():
        family_payload = {"type": kind, "samples": dict(samples.get(family, {}))}
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                family_payload[suffix.lstrip("_")] = dict(
                    samples.get(family + suffix, {})
                )
        families[family] = family_payload
    return families
