"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PauliError(ReproError):
    """Raised for malformed Pauli strings or invalid Pauli algebra."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class CliffordError(ReproError):
    """Raised when a gate outside the supported Clifford set is used."""


class SynthesisError(ReproError):
    """Raised when a circuit cannot be synthesized from its specification."""


class AbsorptionError(ReproError):
    """Raised when a Clifford tail cannot be absorbed as requested."""


class RoutingError(ReproError):
    """Raised when a circuit cannot be mapped to a coupling graph."""


class WorkloadError(ReproError):
    """Raised for invalid workload / benchmark specifications."""


class CompilerError(ReproError):
    """Raised for invalid pass-pipeline construction or execution."""
