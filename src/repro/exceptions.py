"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PauliError(ReproError):
    """Raised for malformed Pauli strings or invalid Pauli algebra."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class CliffordError(ReproError):
    """Raised when a gate outside the supported Clifford set is used."""


class SynthesisError(ReproError):
    """Raised when a circuit cannot be synthesized from its specification."""


class AbsorptionError(ReproError):
    """Raised when a Clifford tail cannot be absorbed as requested."""


class RoutingError(ReproError):
    """Raised when a circuit cannot be mapped to a coupling graph."""


class WorkloadError(ReproError):
    """Raised for invalid workload / benchmark specifications."""


class CompilerError(ReproError):
    """Raised for invalid pass-pipeline construction or execution."""


class InvalidProgramError(CompilerError):
    """Raised when a compile entry point receives an unusable program.

    Every entry point — :func:`repro.compile`, :func:`repro.compile_many`,
    and the service's ``POST /compile`` — performs the same up-front checks
    (non-empty program, at least one qubit) and raises this one class, so a
    malformed request fails with a clear message instead of whatever deep
    internal error would surface first.
    """


class ArrayBackendError(ReproError):
    """Raised for unknown, unavailable, or misused array backends.

    Covers a ``resolve_backend`` name with no registered factory, a backend
    whose import dependency (e.g. CuPy) is absent from the environment, and
    a ``REPRO_ARRAY_BACKEND`` value that names either of those.
    """


class WireFormatError(ReproError):
    """Raised for malformed or version-incompatible wire-format payloads."""


class CacheError(ReproError):
    """Raised for invalid artifact-cache keys or unusable cache state."""


class ServiceError(ReproError):
    """Raised by the service client for failed or undecodable HTTP exchanges.

    ``status`` carries the HTTP status code when one was received (``None``
    for transport-level failures).
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status
