"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PauliError(ReproError):
    """Raised for malformed Pauli strings or invalid Pauli algebra."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class CliffordError(ReproError):
    """Raised when a gate outside the supported Clifford set is used."""


class SynthesisError(ReproError):
    """Raised when a circuit cannot be synthesized from its specification."""


class AbsorptionError(ReproError):
    """Raised when a Clifford tail cannot be absorbed as requested."""


class RoutingError(ReproError):
    """Raised when a circuit cannot be mapped to a coupling graph."""


class WorkloadError(ReproError):
    """Raised for invalid workload / benchmark specifications."""


class CompilerError(ReproError):
    """Raised for invalid pass-pipeline construction or execution."""


class InvalidProgramError(CompilerError):
    """Raised when a compile entry point receives an unusable program.

    Every entry point — :func:`repro.compile`, :func:`repro.compile_many`,
    and the service's ``POST /compile`` — performs the same up-front checks
    (non-empty program, at least one qubit) and raises this one class, so a
    malformed request fails with a clear message instead of whatever deep
    internal error would surface first.
    """


class ArrayBackendError(ReproError):
    """Raised for unknown, unavailable, or misused array backends.

    Covers a ``resolve_backend`` name with no registered factory, a backend
    whose import dependency (e.g. CuPy) is absent from the environment, and
    a ``REPRO_ARRAY_BACKEND`` value that names either of those.
    """


class WireFormatError(ReproError):
    """Raised for malformed or version-incompatible wire-format payloads."""


class CacheError(ReproError):
    """Raised for invalid artifact-cache keys or unusable cache state."""


class ServiceError(ReproError):
    """Raised by the service client for failed or undecodable HTTP exchanges.

    ``status`` carries the HTTP status code when one was received (``None``
    for transport-level failures); ``retry_after`` the server's suggested
    backoff in seconds when the response carried one (load shedding and open
    circuit breakers send it so well-behaved clients pace their retries).
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class FaultInjectedError(ReproError):
    """Raised by an armed :mod:`repro.service.faults` rule of kind ``error``.

    Never raised in production configurations — a fault site only fires when
    the process was explicitly armed via ``REPRO_FAULTS`` or a
    ``POST /fault`` debug request (itself gated behind ``--enable-faults``).
    Deliberately *not* a :class:`ServiceError` subclass: injected failures
    must surface as server-side 5xx, not client-side 4xx validation errors.
    """


class DeadlineExceededError(ReproError):
    """Raised when a request's ``X-Repro-Deadline`` budget ran out.

    The serving stack checks the deadline at every queue boundary (HTTP
    dispatch, scheduler batch execution, fleet forwarding) and abandons the
    remaining work — the client has already given up, so finishing the
    compile would only burn capacity the live requests need.  Maps to HTTP
    504.
    """


class OverloadedError(ReproError):
    """Raised when a bounded service queue sheds a request instead of queuing.

    Unbounded queues turn overload into unbounded latency; the scheduler and
    server instead cap their depth and fail fast with this error (HTTP 503
    plus a ``Retry-After`` hint) so clients can back off and retry.
    ``retry_after`` is the suggested pause in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
