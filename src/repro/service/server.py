"""Stdlib-only ``asyncio`` HTTP JSON front-end for the compiler.

Endpoints (all JSON bodies/responses):

* ``POST /compile`` — one wire-format program (plus ``target`` / ``level`` /
  ``pipeline`` / ``use_cache`` / ``include_result`` options); responds with
  the artifact ``key``, a ``cache_hit`` flag, summary ``metrics``, and the
  serialized result.
* ``POST /compile_batch`` — ``{"programs": [...]}`` with shared options; the
  entries coalesce into the same scheduler window and compile as one planned
  batch.  Per-entry errors are reported per entry.
* ``POST /compile_template`` — one ``repro.parametric/v1`` program; traces
  the pipeline once into a compiled template, stores it under a
  structure-only key (``template_key``), optionally returns the template
  wire payload (``include_template``).
* ``POST /bind`` — a ``repro.parametric/v1`` bind request (template named by
  ``template_key`` or shipped inline) plus a ``params`` vector; replays the
  template skeleton **inline on the event loop** — a bind takes microseconds,
  so it never waits out the batching window.
* ``GET /result/<key>`` — fetch a cached artifact by key (404 on miss).
* ``DELETE /result/<key>`` — explicitly evict a cached artifact (404 on
  miss); counted on ``/metrics`` as ``service.results_deleted``.
* ``GET /healthz`` — liveness.
* ``GET /metrics`` — telemetry counters/histograms plus cache statistics.

The server is a single ``asyncio`` process: request handling stays on the
event loop, while compilation runs on worker threads via the
:class:`~repro.service.scheduler.BatchingScheduler`, so concurrent
``POST /compile`` requests buffer for a few milliseconds and execute as one
:func:`repro.compile_many` batch.  HTTP/1.1 keep-alive is supported (one
request at a time per connection).

Start it with ``python -m repro.service``; drive it with
:class:`repro.service.client.Client`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import threading
import time
from collections import OrderedDict
from urllib.parse import parse_qs

from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectedError,
    OverloadedError,
    ReproError,
)
from repro.observability import (
    DEFAULT_SAMPLE_RATE,
    TRACER,
    TraceContext,
    render_prometheus,
)
from repro.service import faults
from repro.service.cache import ArtifactCache
from repro.service.scheduler import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_WINDOW_SECONDS,
    BatchingScheduler,
    CompletedJob,
    execute_bind,
)
from repro.service.serialize import (
    bind_request_from_wire,
    parametric_program_from_wire,
    program_from_wire,
    result_to_wire,
    template_from_wire,
    template_to_wire,
)
from repro.service.telemetry import Telemetry

#: largest accepted request body (64 MiB — a ~100k-term wire program is ~4 MiB)
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: bounded replay store of request_id → completed POST responses, per server
DEFAULT_DEDUP_ENTRIES = 128


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error payload to the writer."""

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "error",
        headers: "dict[str, str] | None" = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, "type": kind}
        self.headers = headers


def _bad_request(error: Exception) -> _HttpError:
    return _HttpError(400, str(error), kind=type(error).__name__)


class _TextPayload:
    """A non-JSON response body (Prometheus exposition) out of ``_dispatch``."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str):
        self.body = body
        self.content_type = content_type


#: the content type Prometheus scrapers expect from a text-format endpoint
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ---------------------------------------------------------------------- #
# HTTP plumbing shared by the single-process server and the fleet front
# ---------------------------------------------------------------------- #
async def read_http_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> "tuple[str, str, str, dict[str, str], bytes] | None":
    """Read one ``(method, path, version, headers, body)`` request.

    Returns ``None`` on a clean EOF (client closed between requests);
    raises :class:`_HttpError` on malformed input or an oversized body.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, path, version = request_line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        length = -1
    if length < 0:
        raise _HttpError(400, "malformed Content-Length header")
    if length > max_body_bytes:
        raise _HttpError(
            413, f"body of {length} bytes exceeds the {max_body_bytes} cap"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, version, headers, body


def wants_keep_alive(headers: dict, version: str) -> bool:
    """HTTP/1.1 defaults to keep-alive; anything else to close."""
    default = "keep-alive" if version == "HTTP/1.1" else "close"
    return headers.get("connection", default).lower() != "close"


async def respond_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    keep_alive: bool,
    extra_headers: "dict[str, str] | None" = None,
) -> None:
    """Serialize ``payload`` and write one HTTP/1.1 JSON response."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    await respond_raw(writer, status, body, keep_alive, extra_headers)


async def respond_raw(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    keep_alive: bool,
    extra_headers: "dict[str, str] | None" = None,
    content_type: str = "application/json",
) -> None:
    """Write one HTTP/1.1 response with a pre-encoded body."""
    connection = "keep-alive" if keep_alive else "close"
    extra = ""
    if extra_headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in extra_headers.items())
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


class ServiceServer:
    """The compilation service: cache + scheduler + HTTP front-end."""

    def __init__(
        self,
        cache_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ArtifactCache | None = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_cache_bytes: int | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        pool_workers: int = 0,
        ttl_seconds: float | None = None,
        sweep_interval: float = 0.0,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        enable_faults: bool = False,
        trace_sample: float = DEFAULT_SAMPLE_RATE,
        slow_request_ms: float = 0.0,
    ):
        if cache is None and cache_dir is not None:
            cache_kwargs: dict = {}
            if max_cache_bytes is not None:
                cache_kwargs["max_bytes"] = max_cache_bytes
            if ttl_seconds is not None:
                cache_kwargs["ttl_seconds"] = ttl_seconds
            cache = ArtifactCache(cache_dir, **cache_kwargs)
        self.cache = cache
        self.host = host
        self.port = int(port)  # replaced by the bound port after start()
        self.telemetry = Telemetry()
        self.scheduler = BatchingScheduler(
            cache=self.cache,
            telemetry=self.telemetry,
            window_seconds=window_seconds,
            max_batch=max_batch,
            pool_workers=pool_workers,
            max_queue_depth=max_queue_depth,
        )
        self.max_body_bytes = int(max_body_bytes)
        #: whether ``POST /fault`` may arm the in-process fault registry;
        #: off by default — chaos tooling must opt in explicitly
        self.enable_faults = bool(enable_faults)
        #: head-sampling probability for requests without an explicit trace
        #: id / ``X-Repro-Trace`` header (spans land in the process-global
        #: :data:`repro.observability.TRACER` ring buffer)
        self.trace_sample = float(trace_sample)
        #: requests slower than this (milliseconds) emit one structured JSON
        #: line to stderr with the trace id + per-span breakdown; 0 disables
        self.slow_request_ms = float(slow_request_ms)
        self.tracer = TRACER
        #: bounded replay store: request_id → completed POST (status, payload),
        #: so a client retrying a non-idempotent POST after a lost response
        #: gets the original answer instead of duplicated work
        self._dedup: "OrderedDict[str, tuple[int, dict]]" = OrderedDict()
        self.dedup_entries = DEFAULT_DEDUP_ENTRIES
        #: background-sweep period in seconds; 0 disables the task (a TTL
        #: can still be applied by calling ``cache.sweep()`` by hand)
        self.sweep_interval = float(sweep_interval)
        self._sweep_task: "asyncio.Task | None" = None
        self._server: "asyncio.AbstractServer | None" = None
        self._connections: "set[asyncio.Task]" = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections (fills in :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.cache is not None and self.sweep_interval > 0:
            self._sweep_task = asyncio.get_running_loop().create_task(
                self._sweep_forever()
            )
        if self.scheduler.pool is not None and self.scheduler.pool.usable:
            # spawn + import in the pool workers now, not on the first batch
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.scheduler.pool.warm)

    async def _sweep_forever(self) -> None:
        """Periodic cache lifecycle: TTL expiry + index reconcile, off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.sweep_interval)
            try:
                await loop.run_in_executor(None, self.cache.sweep)
                self.telemetry.inc("service.cache_sweeps")
            except Exception:  # noqa: BLE001 — a failed sweep must not kill the loop
                self.telemetry.inc("service.cache_sweep_errors")

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweep_task
            self._sweep_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # keep-alive connections idle in readline() outlive the listener;
        # cancel them so the loop shuts down clean
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        self.scheduler.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request, or the server is closing
        finally:
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            request = await read_http_request(reader, self.max_body_bytes)
        except _HttpError as error:
            await self._respond(writer, error.status, error.payload, False)
            return False
        if request is None:
            return False
        method, path, version, headers, body = request
        keep_alive = wants_keep_alive(headers, version)

        # Per-request deadline: the client ships its remaining *budget* in
        # seconds (relative, so no clock sync needed); past it the request is
        # answered 504 and the work abandoned at the next checkpoint.
        deadline: float | None = None
        budget_text = headers.get("x-repro-deadline")
        if budget_text:
            try:
                deadline = time.monotonic() + max(0.0, float(budget_text))
            except ValueError:
                deadline = None  # a malformed budget never breaks the request

        # Replay of completed non-idempotent POSTs: a retrying client sends
        # the same X-Repro-Request-Id and gets the original response back.
        request_id = headers.get("x-repro-request-id") if method == "POST" else None
        if request_id:
            replay = self._dedup.get(request_id)
            if replay is not None:
                status, payload = replay
                payload = dict(payload)
                payload["deduplicated"] = True
                self.telemetry.inc("service.request_dedup_hits")
                await self._respond(writer, status, payload, keep_alive)
                return keep_alive

        self.telemetry.inc("service.http_requests")
        trace_ctx = self.tracer.sample_request(headers, self.trace_sample)
        if trace_ctx is not None:
            self.telemetry.inc("service.traced_requests")
        bare_path = path.split("?", 1)[0]
        started_perf = time.perf_counter()
        extra_headers: "dict[str, str] | None" = None
        with self.telemetry.timed("service.request_seconds"):
            with self.tracer.span(
                trace_ctx, "server.handle", tags={"method": method, "path": bare_path}
            ) as handle_span:
                try:
                    await faults.fire_async("server.handle")
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise DeadlineExceededError(
                                "deadline budget exhausted before dispatch"
                            )
                        status, payload = await asyncio.wait_for(
                            self._dispatch(
                                method, path, body, deadline=deadline,
                                trace=handle_span.context,
                            ),
                            timeout=remaining,
                        )
                    else:
                        status, payload = await self._dispatch(
                            method, path, body, trace=handle_span.context
                        )
                except _HttpError as error:
                    status, payload = error.status, error.payload
                    extra_headers = error.headers
                except (asyncio.TimeoutError, DeadlineExceededError) as error:
                    self.telemetry.inc("service.deadline_expired")
                    message = str(error) or "request deadline exceeded"
                    status, payload = 504, {
                        "error": message,
                        "type": "DeadlineExceededError",
                    }
                except OverloadedError as error:
                    status, payload = 503, {"error": str(error), "type": "OverloadedError"}
                    extra_headers = {"Retry-After": f"{error.retry_after:g}"}
                except FaultInjectedError as error:
                    status, payload = 500, {"error": str(error), "type": "FaultInjectedError"}
                except ReproError as error:
                    status, payload = 400, {"error": str(error), "type": type(error).__name__}
                except Exception as error:  # noqa: BLE001 — the server must not die
                    self.telemetry.inc("service.http_500")
                    status, payload = 500, {"error": str(error), "type": type(error).__name__}
                handle_span.tag("status", status)
                if status >= 400 and isinstance(payload, dict):
                    handle_span.set_error(
                        f"{payload.get('type', 'error')}: {payload.get('error', '')}"
                    )
        if status != 200:
            self.telemetry.inc(f"service.http_{status}")
        elif request_id and isinstance(payload, dict):
            self._dedup[request_id] = (status, payload)
            self._dedup.move_to_end(request_id)
            while len(self._dedup) > self.dedup_entries:
                self._dedup.popitem(last=False)
        response_headers = extra_headers
        if trace_ctx is not None:
            response_headers = dict(extra_headers or {})
            response_headers["X-Repro-Trace-Id"] = trace_ctx.trace_id
        await self._respond(writer, status, payload, keep_alive, response_headers)
        duration_ms = (time.perf_counter() - started_perf) * 1000.0
        if self.slow_request_ms > 0 and duration_ms >= self.slow_request_ms:
            self._log_slow_request(method, bare_path, status, duration_ms, trace_ctx)
        return keep_alive

    def _log_slow_request(
        self,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        trace_ctx: "TraceContext | None",
    ) -> None:
        """One structured JSON line to stderr per over-threshold request."""
        self.telemetry.inc("service.slow_requests")
        record: dict = {
            "event": "slow_request",
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "threshold_ms": self.slow_request_ms,
            "trace_id": trace_ctx.trace_id if trace_ctx is not None else None,
        }
        if trace_ctx is not None:
            record["spans"] = [
                {
                    "name": span["name"],
                    "duration_ms": round(span["duration_seconds"] * 1000.0, 3),
                }
                for span in self.tracer.trace(trace_ctx.trace_id)
            ]
        print(json.dumps(record, separators=(",", ":")), file=sys.stderr, flush=True)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        if isinstance(payload, _TextPayload):
            await respond_raw(
                writer, status, payload.body, keep_alive, extra_headers,
                content_type=payload.content_type,
            )
            return
        await respond_json(writer, status, payload, keep_alive, extra_headers)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        deadline: float | None = None,
        trace: "TraceContext | None" = None,
    ) -> tuple[int, dict]:
        path, _, query_text = path.partition("?")
        query = parse_qs(query_text) if query_text else {}
        if method == "GET":
            if path == "/healthz":
                return 200, self._healthz()
            if path == "/metrics":
                return 200, self._metrics_view(query)
            if path == "/traces":
                return await self._get_traces(query)
            if path.startswith("/trace/"):
                return await self._get_trace(path[len("/trace/"):])
            if path.startswith("/result/"):
                return self._get_result(path[len("/result/"):], trace=trace)
            raise _HttpError(404, f"unknown path {path!r}", kind="NotFound")
        if method == "POST":
            payload = self._parse_json(body)
            if path == "/compile":
                return await self._post_compile(
                    payload, deadline=deadline, trace=trace
                )
            if path == "/compile_batch":
                return await self._post_compile_batch(
                    payload, deadline=deadline, trace=trace
                )
            if path == "/compile_template":
                return await self._post_compile_template(payload)
            if path == "/bind":
                return self._post_bind(payload)
            if path == "/fault":
                return self._post_fault(payload)
            raise _HttpError(404, f"unknown path {path!r}", kind="NotFound")
        if method == "DELETE":
            if path.startswith("/result/"):
                return self._delete_result(path[len("/result/"):])
            raise _HttpError(404, f"unknown path {path!r}", kind="NotFound")
        raise _HttpError(405, f"method {method} not supported", kind="MethodNotAllowed")

    def _parse_json(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": self.telemetry.snapshot()["uptime_seconds"],
            "caching": self.cache is not None,
        }

    def _metrics(self) -> dict:
        payload = {
            "telemetry": self.telemetry.snapshot(),
            "scheduler": {
                "jobs_submitted": self.scheduler.jobs_submitted,
                "batches_flushed": self.scheduler.batches_flushed,
                "jobs_shed": self.scheduler.jobs_shed,
                "window_seconds": self.scheduler.window_seconds,
                "max_batch": self.scheduler.max_batch,
                "max_queue_depth": self.scheduler.max_queue_depth,
            },
            "tracer": self.tracer.snapshot(),
        }
        if self.scheduler.pool is not None:
            payload["pool"] = self.scheduler.pool.stats()
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload

    def _metrics_view(self, query: "dict[str, list[str]]"):
        """``GET /metrics``: JSON by default, ``?format=prometheus`` for text."""
        fmt = (query.get("format") or ["json"])[0]
        if fmt == "json":
            return self._metrics()
        if fmt == "prometheus":
            text = render_prometheus([(self._metrics(), {})])
            return _TextPayload(text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        raise _HttpError(400, f"unknown metrics format {fmt!r}", "BadFormat")

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #
    async def _get_trace(self, trace_id: str) -> tuple[int, dict]:
        await faults.fire_async("server.trace")
        trace_id = trace_id.strip().lower()
        spans = self.tracer.trace(trace_id)
        if not spans:
            raise _HttpError(
                404, f"no buffered spans for trace {trace_id!r}", "NotFound"
            )
        return 200, {"trace_id": trace_id, "spans": spans}

    async def _get_traces(self, query: "dict[str, list[str]]") -> tuple[int, dict]:
        await faults.fire_async("server.trace")
        limit_text = (query.get("limit") or ["20"])[0]
        try:
            limit = max(1, min(500, int(limit_text)))
        except ValueError:
            raise _HttpError(400, f"limit must be an integer, got {limit_text!r}") from None
        return 200, {"traces": self.tracer.traces(limit)}

    def _get_result(
        self, key: str, trace: "TraceContext | None" = None
    ) -> tuple[int, dict]:
        if self.cache is None:
            raise _HttpError(404, "the server runs without an artifact cache", "NoCache")
        with self.tracer.span(trace, "cache.read", tags={"kind": "artifact"}) as span:
            try:
                result = self.cache.get(key)
            except ReproError as error:
                raise _bad_request(error) from error
            span.tag("hit", result is not None)
        if result is None:
            raise _HttpError(404, f"no artifact stored under {key!r}", "NotFound")
        return 200, {"key": key, "result": result_to_wire(result)}

    @staticmethod
    def _compile_options(payload: dict) -> dict:
        level = payload.get("level", 3)
        if not isinstance(level, int) or isinstance(level, bool):
            raise _HttpError(400, f"level must be an integer, got {level!r}")
        pipeline = payload.get("pipeline")
        if pipeline is not None and not isinstance(pipeline, str):
            raise _HttpError(400, "pipeline must be a registered pipeline name")
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            raise _HttpError(400, "target must be a known device name")
        return {
            "level": level,
            "pipeline": pipeline,
            "target": target,
            "use_cache": bool(payload.get("use_cache", True)),
        }

    def _job_payload(self, outcome: CompletedJob, include_result: bool) -> dict:
        entry: dict = {"key": outcome.key, "cache_hit": outcome.cache_hit}
        if outcome.result is not None:
            entry["metrics"] = outcome.result.metrics()
            entry["compiler"] = outcome.result.name
            if include_result:
                entry["result"] = result_to_wire(outcome.result)
        return entry

    async def _post_compile(
        self,
        payload: dict,
        deadline: float | None = None,
        trace: "TraceContext | None" = None,
    ) -> tuple[int, dict]:
        wire_program = payload.get("program")
        if wire_program is None:
            raise _HttpError(400, "payload lacks a 'program' field")
        options = self._compile_options(payload)
        include_result = bool(payload.get("include_result", True))
        try:
            program = program_from_wire(wire_program)
        except ReproError as error:
            raise _bad_request(error) from error
        outcome = await self.scheduler.submit(
            program, deadline=deadline, trace=trace, **options
        )
        return 200, self._job_payload(outcome, include_result)

    def _post_fault(self, payload: dict) -> tuple[int, dict]:
        """Arm / inspect the in-process fault registry (chaos tooling only)."""
        if not self.enable_faults:
            raise _HttpError(
                403,
                "fault injection is disabled; start the server with "
                "--enable-faults",
                "FaultsDisabled",
            )
        try:
            if payload.get("clear"):
                faults.REGISTRY.clear()
            if "seed" in payload:
                faults.REGISTRY.reseed(int(payload["seed"]))
            if "spec" in payload:
                for rule in faults.parse_spec(str(payload["spec"])):
                    faults.REGISTRY.add(rule)
            rules = payload.get("rules", [])
            if not isinstance(rules, list):
                raise ValueError("'rules' must be a list of rule objects")
            for rule_data in rules:
                faults.REGISTRY.add(faults.FaultRule.from_dict(rule_data))
        except (ValueError, TypeError) as error:
            raise _HttpError(400, str(error), "FaultSpec") from error
        return 200, {
            "enabled": True,
            "active": [rule.to_dict() for rule in faults.REGISTRY.active()],
        }

    def _delete_result(self, key: str) -> tuple[int, dict]:
        if self.cache is None:
            raise _HttpError(404, "the server runs without an artifact cache", "NoCache")
        try:
            removed = self.cache.delete(key)
        except ReproError as error:
            raise _bad_request(error) from error
        if not removed:
            raise _HttpError(404, f"no artifact stored under {key!r}", "NotFound")
        self.telemetry.inc("service.results_deleted")
        return 200, {"key": key, "deleted": True}

    # ------------------------------------------------------------------ #
    # Parametric templates
    # ------------------------------------------------------------------ #
    async def _post_compile_template(self, payload: dict) -> tuple[int, dict]:
        wire_program = payload.get("program")
        if wire_program is None:
            raise _HttpError(400, "payload lacks a 'program' field")
        options = self._compile_options(payload)
        if options["pipeline"] is not None:
            raise _HttpError(400, "templates support the preset levels only")
        include_template = bool(payload.get("include_template", False))
        self.telemetry.inc("service.template_requests")
        try:
            program = parametric_program_from_wire(wire_program)
        except ReproError as error:
            raise _bad_request(error) from error

        key = None
        template = None
        cache_hit = False
        if self.cache is not None:
            key = self.cache.template_key_for(
                program, target=options["target"], level=options["level"]
            )
            if options["use_cache"]:
                template = self.cache.get_template(key)
                cache_hit = template is not None
        if template is None:
            # tracing runs the full pipeline once (tens of ms): off the loop
            loop = asyncio.get_running_loop()
            with self.telemetry.timed("service.template_compile_seconds"):
                template = await loop.run_in_executor(
                    None, self._compile_template_sync, program, options
                )
            if self.cache is not None and key is not None:
                self.cache.put_template(key, template)
        entry = {
            "template_key": key,
            "cache_hit": cache_hit,
            "name": template.name,
            "level": template.level,
            "num_qubits": template.num_qubits,
            "num_terms": template.num_terms,
            "num_params": template.num_params,
            "skeleton_gates": template.skeleton_gate_count,
        }
        if include_template:
            entry["template"] = template_to_wire(template)
        return 200, entry

    @staticmethod
    def _compile_template_sync(program, options: dict):
        from repro.parametric import compile_template

        return compile_template(
            program, target=options["target"], level=options["level"]
        )

    def _post_bind(self, payload: dict) -> tuple[int, dict]:
        """Bind a template — inline on the event loop, no batching window."""
        include_result = bool(payload.get("include_result", True))
        try:
            template_key, template_payload, params = bind_request_from_wire(payload)
        except ReproError as error:
            raise _bad_request(error) from error
        if template_key is not None:
            if self.cache is None:
                raise _HttpError(
                    404,
                    "the server runs without an artifact cache; ship the "
                    "template inline instead of by key",
                    "NoCache",
                )
            try:
                template = self.cache.get_template(template_key)
            except ReproError as error:
                raise _bad_request(error) from error
            if template is None:
                raise _HttpError(
                    404, f"no template stored under {template_key!r}", "NotFound"
                )
        else:
            try:
                template = template_from_wire(template_payload)
            except ReproError as error:
                raise _bad_request(error) from error
        fallbacks_before = template.fallback_binds
        result = execute_bind(template, params, self.telemetry)
        entry: dict = {
            "template_key": template_key,
            "cache_hit": template_key is not None,
            "degenerate": template.fallback_binds != fallbacks_before,
            "metrics": result.metrics(),
            "compiler": result.name,
        }
        if include_result:
            entry["result"] = result_to_wire(result)
        return 200, entry

    async def _post_compile_batch(
        self,
        payload: dict,
        deadline: float | None = None,
        trace: "TraceContext | None" = None,
    ) -> tuple[int, dict]:
        wire_programs = payload.get("programs")
        if not isinstance(wire_programs, list) or not wire_programs:
            raise _HttpError(400, "payload needs a non-empty 'programs' list")
        options = self._compile_options(payload)
        include_result = bool(payload.get("include_result", True))

        async def _one(wire_program) -> dict:
            try:
                program = program_from_wire(wire_program)
                outcome = await self.scheduler.submit(
                    program, deadline=deadline, trace=trace, **options
                )
            except ReproError as error:
                return {"error": str(error), "type": type(error).__name__}
            return self._job_payload(outcome, include_result)

        # submitted in one loop tick, so the scheduler coalesces the whole
        # batch into a single window
        entries = await asyncio.gather(*(_one(wire) for wire in wire_programs))
        return 200, {"results": list(entries)}


# ---------------------------------------------------------------------- #
# In-process server harness (tests, benchmarks, examples)
# ---------------------------------------------------------------------- #
@contextlib.contextmanager
def run_server_in_thread(server: ServiceServer, startup_timeout: float = 10.0):
    """Run ``server`` on a dedicated event-loop thread; yields it started.

    The server binds before the context body runs, so ``server.port`` is the
    real (possibly ephemeral) port.  On exit the server is closed and the
    loop thread joined.
    """
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: list[BaseException] = []

    def _runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 — reported to the caller
            startup_error.append(error)
            ready.set()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    thread = threading.Thread(target=_runner, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(startup_timeout):
        raise TimeoutError("service server failed to start in time")
    if startup_error:
        thread.join()
        raise startup_error[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(startup_timeout)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(startup_timeout)
