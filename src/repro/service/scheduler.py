"""Request coalescing: buffer concurrent submissions, compile them as one batch.

The server accepts requests one at a time, but the compiler is at its best
over *batches* — :func:`repro.compiler.plan_batch` resolves the
overhead-aware executor (serial / threads / chunked processes) from the
batch's total term count, and a shared
:class:`~repro.clifford.engine.ConjugationCache` pools tableau freezes across
programs.  :class:`BatchingScheduler` bridges the two: a submission parks an
``asyncio`` future and starts (or joins) a short collection window — a few
milliseconds, the knob is ``window_seconds`` — after which everything that
accumulated is handed to a worker thread and compiled by
:func:`execute_batch` as one planned batch.

:func:`execute_batch` is deliberately synchronous and server-free so tests
and offline tools can drive it directly.

The scheduler may also own a long-lived
:class:`~repro.compiler.pool.CompilePool` (``pool_workers=N``): its worker
processes spawn once, pre-import :mod:`repro`, keep a warm per-worker
conjugation cache, and survive across batches, so a batch big enough to
parallelize compiles on real cores instead of GIL-sharing the server
process — and without paying process spawn + import per batch, the
profitable cutoff drops from ~20k total terms to ~2.5k.  A pool that dies
mid-batch degrades that batch to in-process threads
(``service.pool_fallbacks``); ``pool_workers=0`` keeps everything
in-process.

Bind requests (:mod:`repro.parametric`) never enter the batching window:
:func:`execute_bind` replays a pre-compiled template skeleton in
microseconds, so parking one behind even a 2 ms collection window would cost
10x its own latency.  The server calls it inline on the event loop.  It groups jobs by compilation
config (target / level / pipeline), resolves each group against the
:class:`~repro.service.cache.ArtifactCache`, deduplicates identical programs
*within* the batch (32 concurrent requests for the same Hamiltonian compile
once), feeds the remaining misses through :func:`repro.compile_many`, and
stores the fresh artifacts back.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

import repro
from repro.compiler.api import validate_program
from repro.compiler.pool import CompilePool
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjectedError,
    OverloadedError,
    ReproError,
)
from repro.observability import TRACER, TraceContext
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.service import faults
from repro.service.cache import ArtifactCache
from repro.service.telemetry import Telemetry

#: default collection window, seconds ("a few ms")
DEFAULT_WINDOW_SECONDS = 0.002

#: a full batch flushes immediately instead of waiting out the window
DEFAULT_MAX_BATCH = 256

#: default cap on pending + in-flight scheduler jobs before load shedding;
#: far above any steady-state depth the load harness reaches, so it only
#: engages under genuine overload
DEFAULT_MAX_QUEUE_DEPTH = 1024


@dataclass
class CompileJob:
    """One buffered compile request."""

    program: "Sequence[PauliTerm] | SparsePauliSum"
    target: str | None = None
    level: int = 3
    pipeline: str | None = None
    use_cache: bool = True
    #: absolute ``time.monotonic()`` deadline, or ``None`` for no limit; a
    #: job still queued past its deadline is abandoned instead of compiled
    deadline: float | None = None
    future: "asyncio.Future | None" = field(default=None, repr=False)
    #: sampled trace context (``None`` = untraced); span parentage hangs the
    #: scheduler spans under the server's ``server.handle`` span
    trace: TraceContext | None = None
    #: wall/perf clocks at submission, for the ``scheduler.queue_wait`` span
    submitted_wall: float = 0.0
    submitted_perf: float = 0.0

    def config(self) -> tuple:
        """The compilation-config group this job batches with."""
        return (self.target, self.level, self.pipeline)


@dataclass
class CompletedJob:
    """What :func:`execute_batch` produces per job, in submission order."""

    key: str | None
    result: "repro.CompilationResult | None"
    cache_hit: bool = False
    error: Exception | None = None


def execute_batch(
    jobs: list[CompileJob],
    cache: ArtifactCache | None = None,
    telemetry: Telemetry | None = None,
    pool: CompilePool | None = None,
) -> list[CompletedJob]:
    """Compile a batch of jobs against the cache, as one planned batch per config.

    Per-job failures (invalid programs, unknown pipelines) land in that job's
    :attr:`CompletedJob.error` instead of failing the whole batch — one bad
    request must not poison the 31 good ones coalesced with it.

    ``pool`` is the scheduler's long-lived
    :class:`~repro.compiler.pool.CompilePool`: when the batch's total term
    count clears the warm-pool cutoff, the misses compile on real cores
    instead of GIL-sharing the server process; a dead pool degrades the batch
    to in-process threads (counted as ``service.pool_fallbacks``).
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    completed: list[CompletedJob] = [CompletedJob(None, None) for _ in jobs]

    # queue-wait spans: submission to batch execution, per traced job
    batch_start_perf = time.perf_counter()
    for job in jobs:
        if job.trace is not None and job.submitted_perf:
            TRACER.record(
                job.trace.trace_id,
                "scheduler.queue_wait",
                job.submitted_wall,
                batch_start_perf - job.submitted_perf,
                parent_id=job.trace.span_id,
            )

    groups: dict[tuple, list[int]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job.config(), []).append(index)

    for indices in groups.values():
        _execute_group(jobs, indices, completed, cache, telemetry, pool)
    return completed


def _execute_group(
    jobs: list[CompileJob],
    indices: list[int],
    completed: list[CompletedJob],
    cache: ArtifactCache | None,
    telemetry: Telemetry,
    pool: CompilePool | None = None,
) -> None:
    target = jobs[indices[0]].target
    level = jobs[indices[0]].level
    pipeline = jobs[indices[0]].pipeline

    # Key + cache phase: validate every program up front (per-job isolation —
    # cheap length/qubit checks, raised here so one malformed request cannot
    # fail the rest of the group), dedupe identical programs within the
    # batch, and resolve what the artifact store already has.
    missing: dict[str | None, list[int]] = {}
    uncached_serial = 0  # distinct anonymous (no-cache) programs
    for index in indices:
        job = jobs[index]
        key = None
        if job.deadline is not None and time.monotonic() >= job.deadline:
            completed[index] = CompletedJob(
                None,
                None,
                error=DeadlineExceededError(
                    "request deadline expired before its batch ran"
                ),
            )
            telemetry.inc("service.deadline_abandoned")
            continue
        try:
            validate_program(job.program, source="repro.service")
            if cache is not None:
                with telemetry.timed("service.key_seconds"):
                    key = cache.key_for(
                        job.program, target=target, level=level, pipeline=pipeline
                    )
        except ReproError as error:
            completed[index] = CompletedJob(None, None, error=error)
            telemetry.inc("service.invalid_requests")
            continue
        if key is not None:
            completed[index].key = key
            if job.use_cache:
                corrupt_before = cache.corrupt_artifacts
                read_wall = time.time()
                read_perf = time.perf_counter()
                with telemetry.timed("service.cache_lookup_seconds"):
                    cached = cache.get(key)
                if job.trace is not None:
                    TRACER.record(
                        job.trace.trace_id,
                        "cache.read",
                        read_wall,
                        time.perf_counter() - read_perf,
                        parent_id=job.trace.span_id,
                        tags={
                            "hit": cached is not None,
                            "quarantined": cache.corrupt_artifacts > corrupt_before,
                        },
                    )
                if cached is not None:
                    completed[index] = CompletedJob(key, cached, cache_hit=True)
                    telemetry.inc("service.cache_hits")
                    continue
            telemetry.inc("service.cache_misses")
            missing.setdefault(key, []).append(index)
        else:
            # no cache: every job compiles individually
            missing[f"__uncached_{uncached_serial}"] = [index]
            uncached_serial += 1

    if not missing:
        return

    # Deadline re-check at the compile boundary: the cache phase above can
    # take real time under a slow disk, and abandoning here is what actually
    # saves the compile capacity (the server's own 504 cannot stop work that
    # already left the event loop).
    now = time.monotonic()
    for key in list(missing):
        alive = []
        for index in missing[key]:
            job = jobs[index]
            if job.deadline is not None and now >= job.deadline:
                completed[index] = CompletedJob(
                    completed[index].key,
                    None,
                    error=DeadlineExceededError(
                        "request deadline expired before compilation started"
                    ),
                )
                telemetry.inc("service.deadline_abandoned")
            else:
                alive.append(index)
        if alive:
            missing[key] = alive
        else:
            del missing[key]
    if not missing:
        return

    # Compile phase: every distinct missing program through compile_many as
    # one planned batch (plan_batch resolves serial/threads/processes), with
    # the cache's shared conjugation cache pooling tableau freezes.
    ordered_keys = list(missing)
    programs = [jobs[missing[key][0]].program for key in ordered_keys]
    conjugation_cache = cache.conjugation_cache if cache is not None else None
    live_pool = pool if pool is not None and pool.usable else None
    pool_batches_before = live_pool.batches if live_pool is not None else 0
    pool_breaks_before = live_pool.breaks if live_pool is not None else 0
    compile_wall = time.time()
    compile_perf = time.perf_counter()
    # The scheduler.compile fault fires here, outside the compile try below:
    # that try's per-program fallback exists to isolate real program defects
    # and would otherwise swallow the injected failure.
    try:
        faults.fire("scheduler.compile")
    except FaultInjectedError as error:
        for key in ordered_keys:
            for index in missing[key]:
                completed[index] = CompletedJob(
                    completed[index].key, None, error=error
                )
                _record_batch_span(
                    jobs[index], missing, key, ordered_keys, live_pool,
                    compile_wall, time.perf_counter() - compile_perf,
                    error=f"{type(error).__name__}: {error}",
                )
        telemetry.inc("service.failed_batches")
        return
    try:
        with telemetry.timed("service.compile_seconds"):
            results = repro.compile_many(
                programs,
                target=target,
                level=level,
                pipeline=pipeline,
                conjugation_cache=conjugation_cache,
                pool=live_pool,
            )
        if live_pool is not None:
            if live_pool.batches > pool_batches_before:
                telemetry.inc("service.pool_batches")
            if live_pool.breaks > pool_breaks_before:
                telemetry.inc("service.pool_fallbacks")
    except ReproError:
        # the planned batch failed as a whole — a config-level error
        # (unknown pipeline/target) or a program defect the up-front checks
        # don't see. Retry each program alone so only the culprits fail.
        telemetry.inc("service.failed_batches")
        results = []
        for key in ordered_keys:
            try:
                results.append(
                    repro.compile(
                        jobs[missing[key][0]].program,
                        target=target,
                        level=level,
                        pipeline=pipeline,
                    )
                )
            except ReproError as error:
                results.append(error)

    compiled = 0
    compile_duration = time.perf_counter() - compile_perf
    pool_used = live_pool is not None and live_pool.batches > pool_batches_before
    for key, result in zip(ordered_keys, results):
        job_indices = missing[key]
        stored_key = completed[job_indices[0]].key
        if isinstance(result, ReproError):
            for index in job_indices:
                completed[index] = CompletedJob(stored_key, None, error=result)
                _record_batch_span(
                    jobs[index], missing, key, ordered_keys, live_pool,
                    compile_wall, compile_duration,
                    error=f"{type(result).__name__}: {result}",
                    pool_used=pool_used,
                )
            continue
        compiled += 1
        for index in job_indices:
            _record_batch_span(
                jobs[index], missing, key, ordered_keys, live_pool,
                compile_wall, compile_duration,
                result=result, pool_used=pool_used,
            )
        if cache is not None and stored_key is not None:
            # a failed store must not fail the request — the compile already
            # succeeded; the artifact is simply recomputed next time
            store_error: "str | None" = None
            store_wall = time.time()
            store_perf = time.perf_counter()
            try:
                with telemetry.timed("service.cache_store_seconds"):
                    cache.put(stored_key, result)
            except (ReproError, OSError) as error:
                telemetry.inc("service.cache_store_errors")
                store_error = f"{type(error).__name__}: {error}"
            store_duration = time.perf_counter() - store_perf
            for index in job_indices:
                job = jobs[index]
                if job.trace is not None:
                    TRACER.record(
                        job.trace.trace_id,
                        "cache.write",
                        store_wall,
                        store_duration,
                        parent_id=job.trace.span_id,
                        tags={"stored": store_error is None},
                        error=store_error,
                    )
        for index in job_indices:
            completed[index] = CompletedJob(stored_key, result, cache_hit=False)
    telemetry.inc("service.compiled_programs", compiled)


def _record_batch_span(
    job: CompileJob,
    missing: "dict[str | None, list[int]]",
    key: "str | None",
    ordered_keys: list,
    live_pool: CompilePool | None,
    start_wall: float,
    duration: float,
    *,
    result=None,
    error: "str | None" = None,
    pool_used: bool = False,
) -> None:
    """One ``scheduler.batch`` span (+ pool/per-pass children) per traced job.

    Each trace is self-contained: jobs deduplicated onto the same compiled
    program each get their own span over the shared compile phase, tagged
    with the batch size and how many peers coalesced onto this program.
    """
    if job.trace is None:
        return
    batch_span_id = TRACER.record(
        job.trace.trace_id,
        "scheduler.batch",
        start_wall,
        duration,
        parent_id=job.trace.span_id,
        tags={
            "batch_programs": len(ordered_keys),
            "dedup_jobs": len(missing.get(key) or []),
            "pool": pool_used,
        },
        error=error,
    )
    if pool_used and live_pool is not None:
        TRACER.record(
            job.trace.trace_id,
            "pool.dispatch",
            start_wall,
            duration,
            parent_id=batch_span_id,
            tags={"workers": live_pool.max_workers},
        )
    pass_timings = getattr(result, "pass_timings", None)
    if pass_timings:
        cursor = start_wall
        for pass_name, seconds in pass_timings.items():
            TRACER.record(
                job.trace.trace_id,
                f"pass.{pass_name}",
                cursor,
                float(seconds),
                parent_id=batch_span_id,
            )
            cursor += float(seconds)


def execute_bind(
    template,
    params,
    telemetry: Telemetry | None = None,
) -> "repro.CompilationResult":
    """Bind one parameter vector against a compiled template (fast path).

    Synchronous and scheduler-free by design: a bind replays the template's
    merge chains in microseconds, so it runs inline instead of joining a
    batching window.  Counts ``service.bind_requests`` /
    ``service.bind_seconds`` and, when the binding was degenerate and fell
    back to a full compile, ``service.degenerate_binds``.  Validation errors
    (wrong arity, NaN/inf) propagate as
    :class:`~repro.exceptions.InvalidProgramError`.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    telemetry.inc("service.bind_requests")
    fallbacks_before = template.fallback_binds
    with telemetry.timed("service.bind_seconds"):
        result = template.bind(params)
    if template.fallback_binds != fallbacks_before:
        telemetry.inc("service.degenerate_binds")
    return result


class BatchingScheduler:
    """Coalesce concurrent ``submit`` calls into windowed compile batches.

    Must be used from a running ``asyncio`` event loop.  The first submission
    of a window arms a flush timer (``window_seconds`` later); subsequent
    submissions pile onto the same pending list, and a full batch
    (``max_batch``) flushes immediately.  The flush hands the whole batch to
    a worker thread (the loop's default executor) running
    :func:`execute_batch`, then resolves every parked future.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        telemetry: Telemetry | None = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        pool_workers: int = 0,
        pool: CompilePool | None = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
    ):
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        #: cap on pending + in-flight jobs before :meth:`submit` sheds with
        #: :class:`~repro.exceptions.OverloadedError` (0 disables shedding)
        self.max_queue_depth = int(max_queue_depth)
        #: ``Retry-After`` hint handed to shed requests, seconds
        self.shed_retry_after = 0.1
        #: the long-lived compile pool the batches consult; ``pool_workers=0``
        #: (the default) keeps compilation in-process — the right call on a
        #: one-core box, where extra processes only add pickling
        self.pool = pool if pool is not None else (
            CompilePool(pool_workers) if pool_workers else None
        )
        self._pending: list[CompileJob] = []
        self._in_flight = 0
        self._flush_handle: "asyncio.TimerHandle | None" = None
        self.batches_flushed = 0
        self.jobs_submitted = 0
        self.jobs_shed = 0

    def close(self) -> None:
        """Shut down the owned compile pool (idempotent)."""
        if self.pool is not None:
            self.pool.shutdown()

    # ------------------------------------------------------------------ #
    async def submit(
        self,
        program: "Sequence[PauliTerm] | SparsePauliSum",
        target: str | None = None,
        level: int = 3,
        pipeline: str | None = None,
        use_cache: bool = True,
        deadline: float | None = None,
        trace: TraceContext | None = None,
    ) -> CompletedJob:
        """Queue one compile request; resolves when its batch completes.

        ``deadline`` is an absolute ``time.monotonic()`` timestamp: a job
        still queued when it passes is abandoned with
        :class:`~repro.exceptions.DeadlineExceededError` instead of compiled.
        Sheds immediately with :class:`~repro.exceptions.OverloadedError`
        when pending + in-flight depth is at ``max_queue_depth``.
        """
        loop = asyncio.get_running_loop()
        depth = len(self._pending) + self._in_flight
        if self.max_queue_depth and depth >= self.max_queue_depth:
            self.jobs_shed += 1
            self.telemetry.inc("service.shed_requests")
            raise OverloadedError(
                f"scheduler queue full ({depth} jobs >= "
                f"max_queue_depth={self.max_queue_depth})",
                retry_after=self.shed_retry_after,
            )
        job = CompileJob(
            program=program,
            target=target,
            level=level,
            pipeline=pipeline,
            use_cache=use_cache,
            deadline=deadline,
            future=loop.create_future(),
            trace=trace,
            submitted_wall=time.time(),
            submitted_perf=time.perf_counter(),
        )
        self._pending.append(job)
        self.jobs_submitted += 1
        if len(self._pending) >= self.max_batch:
            self._flush(loop)
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.window_seconds, self._flush, loop
            )
        completed: CompletedJob = await job.future
        if completed.error is not None:
            raise completed.error
        return completed

    def _flush(self, loop: "asyncio.AbstractEventLoop") -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._in_flight += len(batch)
        self.batches_flushed += 1
        self.telemetry.inc("service.batches")
        self.telemetry.observe("service.batch_size", len(batch))
        loop.create_task(self._run_batch(loop, batch))

    async def _run_batch(
        self, loop: "asyncio.AbstractEventLoop", batch: list[CompileJob]
    ) -> None:
        try:
            completed = await loop.run_in_executor(
                None, execute_batch, batch, self.cache, self.telemetry, self.pool
            )
        except BaseException as error:  # defensive: execute_batch traps per-job
            for job in batch:
                if not job.future.done():
                    job.future.set_exception(error)
            return
        finally:
            self._in_flight -= len(batch)
        for job, outcome in zip(batch, completed):
            if not job.future.done():
                job.future.set_result(outcome)
