"""``python -m repro.service`` — run the compilation service.

Example::

    PYTHONPATH=src python -m repro.service --port 8765 --cache-dir /var/cache/repro

``--workers N`` (N >= 1) starts a fleet instead: N worker processes sharing
one artifact-cache directory behind a consistent-hash sharding front
(:mod:`repro.service.fleet`); every other flag is forwarded to the workers.

The server prints one ``repro.service listening on http://host:port`` line
once it is accepting connections (machine-parsable: the smoke test reads the
ephemeral port from it when started with ``--port 0``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import sys

from repro.observability import DEFAULT_CAPACITY, DEFAULT_SAMPLE_RATE, TRACER
from repro.service.cache import DEFAULT_MAX_BYTES, DEFAULT_MAX_TEMPLATE_BYTES
from repro.service.scheduler import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_WINDOW_SECONDS,
)

DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-service")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8765, help="TCP port; 0 picks an ephemeral one"
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="artifact cache directory (REPRO_CACHE_DIR env; default %(default)s); "
        "'none' disables caching",
    )
    parser.add_argument(
        "--max-cache-mb",
        type=float,
        default=DEFAULT_MAX_BYTES / (1024 * 1024),
        help="disk budget of the artifact cache in MiB (default %(default)s)",
    )
    parser.add_argument(
        "--max-template-mb",
        type=float,
        default=DEFAULT_MAX_TEMPLATE_BYTES / (1024 * 1024),
        help="disk budget of the template store in MiB (default %(default)s)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=DEFAULT_WINDOW_SECONDS * 1000.0,
        help="request-coalescing window in milliseconds (default %(default)s)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="flush a window early once this many requests buffered",
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=0,
        help="size of the long-lived compile process pool each server keeps "
        "warm (0 disables it — compilation stays on in-process threads)",
    )
    parser.add_argument(
        "--ttl-seconds",
        type=float,
        default=0.0,
        help="expire cached artifacts/templates idle for this long "
        "(0 disables TTL expiry)",
    )
    parser.add_argument(
        "--sweep-interval",
        type=float,
        default=60.0,
        help="seconds between background cache-lifecycle sweeps "
        "(0 disables the sweep task; default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="run a fleet of this many worker processes behind a "
        "consistent-hash sharding front (0 = single-process server)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=DEFAULT_MAX_QUEUE_DEPTH,
        help="shed compile requests (503 + Retry-After) once this many are "
        "pending or in flight on the scheduler (0 disables shedding; "
        "default %(default)s)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a draining fleet restart waits for a worker's "
        "in-flight requests before terminating it anyway "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive upstream failures before a fleet worker's circuit "
        "breaker opens (0 disables the breaker; default %(default)s)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=2.0,
        help="seconds an open circuit breaker sheds before sending a "
        "half-open probe (default %(default)s)",
    )
    parser.add_argument(
        "--enable-faults",
        action="store_true",
        help="allow POST /fault to arm the fault-injection registry "
        "(chaos testing only; never enable in production)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=DEFAULT_SAMPLE_RATE,
        help="fraction of untagged requests to head-sample into the trace "
        "ring (X-Repro-Trace: 1 always forces a trace; default %(default)s)",
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=0.0,
        help="log a structured slow-request line to stderr (trace id + "
        "per-span breakdown) for requests slower than this many "
        "milliseconds (0 disables; default %(default)s)",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=DEFAULT_CAPACITY,
        help="completed spans retained in the process-local trace ring "
        "buffer (default %(default)s)",
    )
    return parser


async def _serve(server) -> None:
    await server.start()
    print(f"repro.service listening on {server.address}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def _fleet_worker_args(args: argparse.Namespace) -> "list[str]":
    """The per-worker CLI flags a fleet forwards (cache dir rides separately)."""
    return [
        "--max-cache-mb", str(args.max_cache_mb),
        "--max-template-mb", str(args.max_template_mb),
        "--window-ms", str(args.window_ms),
        "--max-batch", str(args.max_batch),
        "--pool-workers", str(args.pool_workers),
        "--ttl-seconds", str(args.ttl_seconds),
        "--sweep-interval", str(args.sweep_interval),
        "--max-queue-depth", str(args.max_queue_depth),
        "--trace-sample", str(args.trace_sample),
        "--slow-request-ms", str(args.slow_request_ms),
        "--trace-buffer", str(args.trace_buffer),
    ]


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    cache_dir = None if args.cache_dir.lower() == "none" else os.path.expanduser(args.cache_dir)
    if args.trace_buffer > 0 and args.trace_buffer != TRACER.capacity:
        TRACER.resize(args.trace_buffer)
    if args.workers > 0:
        from repro.service.fleet import FleetFront

        server = FleetFront(
            workers=args.workers,
            cache_dir=cache_dir,
            host=args.host,
            port=args.port,
            worker_args=_fleet_worker_args(args),
            drain_timeout=args.drain_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            enable_faults=args.enable_faults,
            trace_sample=args.trace_sample,
            slow_request_ms=args.slow_request_ms,
        )
    else:
        from repro.service.cache import ArtifactCache
        from repro.service.server import ServiceServer

        cache = None
        if cache_dir is not None:
            cache = ArtifactCache(
                cache_dir,
                max_bytes=int(args.max_cache_mb * 1024 * 1024),
                max_template_bytes=int(args.max_template_mb * 1024 * 1024),
                ttl_seconds=args.ttl_seconds if args.ttl_seconds > 0 else None,
            )
        server = ServiceServer(
            cache=cache,
            host=args.host,
            port=args.port,
            window_seconds=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            pool_workers=args.pool_workers,
            sweep_interval=args.sweep_interval,
            max_queue_depth=args.max_queue_depth,
            enable_faults=args.enable_faults,
            trace_sample=args.trace_sample,
            slow_request_ms=args.slow_request_ms,
        )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(server))
    return 0


if __name__ == "__main__":
    sys.exit(main())
