"""``python -m repro.service`` — run the compilation service.

Example::

    PYTHONPATH=src python -m repro.service --port 8765 --cache-dir /var/cache/repro

The server prints one ``repro.service listening on http://host:port`` line
once it is accepting connections (machine-parsable: the smoke test reads the
ephemeral port from it when started with ``--port 0``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import sys

from repro.service.cache import DEFAULT_MAX_BYTES
from repro.service.scheduler import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_SECONDS
from repro.service.server import ServiceServer

DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro-service")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8765, help="TCP port; 0 picks an ephemeral one"
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR),
        help="artifact cache directory (REPRO_CACHE_DIR env; default %(default)s); "
        "'none' disables caching",
    )
    parser.add_argument(
        "--max-cache-mb",
        type=float,
        default=DEFAULT_MAX_BYTES / (1024 * 1024),
        help="disk budget of the artifact cache in MiB (default %(default)s)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=DEFAULT_WINDOW_SECONDS * 1000.0,
        help="request-coalescing window in milliseconds (default %(default)s)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="flush a window early once this many requests buffered",
    )
    return parser


async def _serve(server: ServiceServer) -> None:
    await server.start()
    print(f"repro.service listening on {server.address}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cache_dir = None if args.cache_dir.lower() == "none" else os.path.expanduser(args.cache_dir)
    server = ServiceServer(
        cache_dir=cache_dir,
        host=args.host,
        port=args.port,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_cache_bytes=int(args.max_cache_mb * 1024 * 1024),
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(server))
    return 0


if __name__ == "__main__":
    sys.exit(main())
