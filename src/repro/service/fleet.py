"""Horizontal scale-out: a sharding front over N service worker processes.

One :class:`ServiceServer` is a single Python process — the GIL bounds how
much synthesis it can push even with the compile pool, and one event loop
bounds how many connections it can juggle.  :class:`FleetFront` removes that
ceiling the boring way: it spawns ``N`` ordinary ``python -m repro.service``
worker processes that all share **one** :class:`~repro.service.cache.ArtifactCache`
directory (the cache's atomic-write/advisory-index design is exactly what
makes this safe), and fronts them with a consistent-hash router so the same
artifact key always lands on the same worker and its warm in-memory LRU.

Routing (:class:`HashRing`, SHA-256 with virtual nodes) hashes on the
*artifact key* of each request, not the client connection:

* ``GET``/``DELETE /result/<key>`` — the key itself;
* ``POST /bind`` — the ``template_key`` (inline templates hash the body), so
  repeat binds of one ansatz hit the worker holding the deserialized
  template;
* ``POST /compile`` / ``/compile_batch`` / ``/compile_template`` — a digest
  of the request body, so identical requests dedupe onto one warm worker;
* ``GET /healthz`` — aggregated across every worker (``ok`` iff all are);
* ``GET /metrics`` — per-worker payloads plus a fleet rollup
  (:func:`~repro.service.telemetry.merge_snapshots`);
* ``POST /fleet/restart`` — a rolling **draining** restart: each worker in
  turn stops receiving new requests, finishes its in-flight ones, restarts,
  and re-joins under the same ring slot (virtual nodes are keyed by slot
  name, so a restarted worker inherits exactly its old key ranges and the
  shared disk cache re-warms its memory layer).

The ring is slot-name keyed and the slots never move, so scaling the warm
path is purely additive: worker death costs only the requests in flight on
it (the front respawns it on the same slot and retries once).

Start a fleet with ``python -m repro.service --workers N``; everything a
:class:`~repro.service.client.Client` can do against a single server works
unchanged against the front.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import queue
import re
import subprocess
import sys
import threading
import time
from bisect import bisect_right
from collections import deque
from pathlib import Path
from urllib.parse import parse_qs

from repro.exceptions import ServiceError
from repro.observability import (
    DEFAULT_SAMPLE_RATE,
    TRACER,
    TraceContext,
    merge_trace_spans,
    merge_trace_summaries,
    mint_span_id,
    render_prometheus,
)
from repro.service import faults
from repro.service.server import (
    DEFAULT_MAX_BODY_BYTES,
    PROMETHEUS_CONTENT_TYPE,
    _HttpError,
    read_http_request,
    respond_json,
    respond_raw,
    wants_keep_alive,
)
from repro.service.telemetry import Telemetry, merge_snapshots

#: default number of virtual nodes per worker slot — enough that two slots
#: split the key space within a few percent of evenly
DEFAULT_VNODES = 64

#: the machine-parsable startup line every worker prints
_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: captured worker output lines kept per worker for failure diagnostics
_OUTPUT_TAIL_LINES = 200


class CircuitBreaker:
    """Per-worker circuit breaker: fail fast instead of queueing on a corpse.

    Closed (normal) → open after ``threshold`` *consecutive* forward
    failures; open sheds instantly for ``cooldown`` seconds; then one
    half-open probe is let through — success re-closes the breaker, failure
    re-opens it for another cooldown.  Methods return event names
    (``"trip"`` / ``"probe"`` / ``"reset"``) so the front can count them
    into its telemetry.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 2.0):
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def allow(self) -> "tuple[bool, str | None]":
        """Whether a request may go upstream, plus a telemetry event."""
        if self.threshold <= 0 or self.state == "closed":
            return True, None
        if self.state == "open":
            if time.monotonic() - self._opened_at >= self.cooldown:
                self.state = "half-open"
                self._probe_in_flight = True
                return True, "probe"
            return False, None
        # half-open: exactly one probe may be outstanding
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True, "probe"
        return False, None

    def release_probe(self) -> None:
        """Free the half-open probe slot without a verdict (aborted forward)."""
        self._probe_in_flight = False

    def record_success(self) -> "str | None":
        event = "reset" if self.state != "closed" else None
        self.state = "closed"
        self.failures = 0
        self._probe_in_flight = False
        return event

    def record_failure(self) -> "str | None":
        self.failures += 1
        tripping = self.state == "half-open" or (
            self.state == "closed"
            and self.threshold > 0
            and self.failures >= self.threshold
        )
        self._probe_in_flight = False
        if tripping:
            self.state = "open"
            self._opened_at = time.monotonic()
            return "trip"
        return None

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown,
        }


class HashRing:
    """Consistent hashing over named slots (SHA-256, virtual nodes).

    Points are derived from **slot names** ("w0", "w1", ...), never from
    worker addresses or pids — a worker respawned into its slot keeps the
    exact key ranges it served before, which is what makes draining restarts
    invisible to cache locality.
    """

    def __init__(self, slots: "list[str]", vnodes: int = DEFAULT_VNODES):
        if not slots:
            raise ServiceError("a HashRing needs at least one slot")
        self.vnodes = int(vnodes)
        self._points: "list[tuple[int, str]]" = []
        for slot in slots:
            for replica in range(self.vnodes):
                digest = hashlib.sha256(f"{slot}#{replica}".encode()).digest()
                self._points.append((int.from_bytes(digest[:8], "big"), slot))
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def lookup(self, key: str) -> str:
        """The slot owning ``key`` (first point clockwise of its hash)."""
        digest = hashlib.sha256(key.encode()).digest()
        value = int.from_bytes(digest[:8], "big")
        index = bisect_right(self._hashes, value) % len(self._points)
        return self._points[index][1]


class WorkerHandle:
    """One spawned ``python -m repro.service`` process plus its plumbing."""

    def __init__(self, slot: str):
        self.slot = slot
        self.process: "subprocess.Popen | None" = None
        self.host = ""
        self.port = 0
        self.restarts = 0
        self.in_flight = 0
        #: cleared while the worker is draining/restarting; requests wait
        self.available = asyncio.Event()
        #: serializes respawn/restart so two coroutines seeing the same dead
        #: process cannot double-spawn it
        self.lock = asyncio.Lock()
        #: trips open after consecutive forward failures; front-configurable
        self.breaker = CircuitBreaker()
        #: tail of the worker's combined stdout+stderr, for error messages
        self.output_tail: "deque[str]" = deque(maxlen=_OUTPUT_TAIL_LINES)
        #: idle keep-alive connections to this worker, reused across requests
        self.idle: "list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]" = []

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def close_idle(self) -> None:
        while self.idle:
            _, writer = self.idle.pop()
            with contextlib.suppress(Exception):
                writer.close()


def _worker_environment() -> dict:
    """The subprocess env, with this repro's ``src`` on ``PYTHONPATH``."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


class FleetFront:
    """The fleet supervisor + consistent-hash HTTP front.

    Duck-types the :class:`~repro.service.server.ServiceServer` lifecycle
    (``start`` / ``aclose`` / ``port`` / ``address``), so
    :func:`~repro.service.server.run_server_in_thread` runs a fleet too.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).
    cache_dir:
        Shared artifact-cache directory handed to every worker; ``None``
        runs the workers cacheless (sharding then only buys CPU parallelism).
    worker_args:
        Extra ``python -m repro.service`` CLI arguments forwarded verbatim
        to every worker (``--window-ms``, ``--pool-workers``, ...).
    """

    def __init__(
        self,
        workers: int,
        cache_dir: "str | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_args: "list[str] | None" = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        vnodes: int = DEFAULT_VNODES,
        startup_timeout: float = 60.0,
        drain_timeout: float = 10.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 2.0,
        enable_faults: bool = False,
        trace_sample: float = DEFAULT_SAMPLE_RATE,
        slow_request_ms: float = 0.0,
    ):
        self.num_workers = int(workers)
        if self.num_workers < 1:
            raise ServiceError(f"a fleet needs >= 1 worker, got {self.num_workers}")
        self.cache_dir = cache_dir
        self.host = host
        self.port = int(port)  # replaced by the bound port after start()
        self.worker_args = list(worker_args or [])
        self.max_body_bytes = int(max_body_bytes)
        self.startup_timeout = float(startup_timeout)
        self.drain_timeout = float(drain_timeout)
        #: whether ``POST /fault`` may arm faults — in the front itself
        #: (``fleet.*`` sites) and, forwarded, in the workers
        self.enable_faults = bool(enable_faults)
        #: head-sampling probability for untraced requests; the front's
        #: decision is authoritative — forwards carry explicit trace headers
        #: (on or off), so workers never sample independently
        self.trace_sample = float(trace_sample)
        #: requests slower than this (ms) log one JSON line to stderr
        self.slow_request_ms = float(slow_request_ms)
        self.tracer = TRACER
        self.telemetry = Telemetry()
        self.workers = {f"w{i}": WorkerHandle(f"w{i}") for i in range(self.num_workers)}
        for handle in self.workers.values():
            handle.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        self.ring = HashRing(sorted(self.workers), vnodes=vnodes)
        self._server: "asyncio.AbstractServer | None" = None
        self._connections: "set[asyncio.Task]" = set()
        self._restart_lock = asyncio.Lock()

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_process(self) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--cache-dir",
            self.cache_dir if self.cache_dir is not None else "none",
            *(["--enable-faults"] if self.enable_faults else []),
            *self.worker_args,
        ]
        return subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_worker_environment(),
        )

    @staticmethod
    def _pump_output(
        process: subprocess.Popen,
        lines: "queue.Queue[str | None]",
        tail: "deque[str]",
    ) -> None:
        """Read the worker's pipe for its whole life on a daemon thread.

        Every line lands in ``tail`` (bounded, for diagnostics) and — until
        startup finishes consuming them — in the ``lines`` queue.  ``None``
        marks EOF (the process exited).  The single long-lived reader both
        feeds :meth:`_read_listen_line` and keeps the pipe from filling up
        after startup.
        """

        def _run() -> None:
            with contextlib.suppress(Exception):
                for line in process.stdout:  # type: ignore[union-attr]
                    tail.append(line)
                    # nobody drains the queue after startup; drop rather than
                    # grow without bound under a chatty worker
                    with contextlib.suppress(queue.Full):
                        lines.put_nowait(line)
            with contextlib.suppress(queue.Full):
                lines.put_nowait(None)

        threading.Thread(target=_run, daemon=True, name="repro-fleet-pump").start()

    @staticmethod
    def _read_listen_line(
        process: subprocess.Popen,
        lines: "queue.Queue[str | None]",
        tail: "deque[str]",
        timeout: float,
    ) -> "tuple[str, int]":
        """Wait for the worker's listen line; returns (host, port).

        Polls the pump thread's queue with a short timeout (no busy spin —
        ``Queue.get`` blocks) and checks the wall deadline between polls, so
        a worker that hangs *without* printing anything still times out.  A
        failure message includes the worker's captured output, stderr
        included (the workers run with ``stderr=STDOUT``).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                process.terminate()
                captured = "".join(tail).strip() or "<no output>"
                raise ServiceError(
                    f"fleet worker failed to report its port within {timeout:g}s; "
                    f"captured output:\n{captured}"
                )
            try:
                line = lines.get(timeout=min(remaining, 0.05))
            except queue.Empty:
                continue
            if line is None:
                with contextlib.suppress(Exception):
                    process.wait(timeout=5)
                captured = "".join(tail).strip() or "<no output>"
                raise ServiceError(
                    f"fleet worker exited during startup "
                    f"(code {process.returncode}); captured output:\n{captured}"
                )
            match = _LISTEN_RE.search(line)
            if match:
                return match.group(1), int(match.group(2))

    async def _start_worker(self, handle: WorkerHandle) -> None:
        loop = asyncio.get_running_loop()
        process = self._spawn_process()
        tail: "deque[str]" = deque(maxlen=_OUTPUT_TAIL_LINES)
        lines: "queue.Queue[str | None]" = queue.Queue(maxsize=1000)
        self._pump_output(process, lines, tail)
        try:
            host, port = await loop.run_in_executor(
                None, self._read_listen_line, process, lines, tail,
                self.startup_timeout,
            )
        except ServiceError:
            with contextlib.suppress(Exception):
                process.kill()
            raise
        handle.process = process
        handle.output_tail = tail
        handle.host, handle.port = host, port
        handle.available.set()

    async def _respawn_worker(self, handle: WorkerHandle) -> None:
        """Replace a dead worker in place (same slot, so same key ranges).

        Serialized per handle: concurrent forwards that all see the same dead
        process queue on the lock, and whoever enters second finds the worker
        alive again and skips the spawn.
        """
        async with handle.lock:
            if handle.alive and handle.available.is_set():
                return
            handle.available.clear()
            handle.close_idle()
            if handle.process is not None:
                with contextlib.suppress(Exception):
                    handle.process.kill()
            await self._start_worker(handle)
            handle.restarts += 1
            self.telemetry.inc("fleet.worker_respawns")

    async def restart_worker(self, handle: WorkerHandle) -> None:
        """Draining restart: stop new traffic, let in-flight finish, respawn.

        The drain wait is bounded by ``drain_timeout``: a request stuck on
        the worker cannot wedge the restart — the worker is terminated
        anyway, and the stuck caller's connection dies with it, surfacing as
        a clean error on the caller (never a hang).
        """
        handle.available.clear()
        deadline = time.monotonic() + self.drain_timeout
        while handle.in_flight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if handle.in_flight > 0:
            self.telemetry.inc("fleet.drain_timeouts")
        async with handle.lock:
            handle.close_idle()
            if handle.process is not None:
                handle.process.terminate()
                loop = asyncio.get_running_loop()
                with contextlib.suppress(Exception):
                    await loop.run_in_executor(None, handle.process.wait, 10)
            await self._start_worker(handle)
            handle.restarts += 1
            self.telemetry.inc("fleet.worker_restarts")

    # ------------------------------------------------------------------ #
    # Front lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn the workers (concurrently), then bind the front listener."""
        await asyncio.gather(
            *(self._start_worker(handle) for handle in self.workers.values())
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for handle in self.workers.values():
            handle.available.clear()
            handle.close_idle()
            if handle.process is not None:
                with contextlib.suppress(Exception):
                    handle.process.terminate()
        loop = asyncio.get_running_loop()
        for handle in self.workers.values():
            if handle.process is not None:
                with contextlib.suppress(Exception):
                    await loop.run_in_executor(None, handle.process.wait, 10)

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_http_request(reader, self.max_body_bytes)
                except _HttpError as error:
                    await respond_json(writer, error.status, error.payload, False)
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                keep_alive = wants_keep_alive(headers, version)
                self.telemetry.inc("fleet.http_requests")
                trace_ctx = self.tracer.sample_request(headers, self.trace_sample)
                if trace_ctx is not None:
                    self.telemetry.inc("fleet.traced_requests")
                started_perf = time.perf_counter()
                extra_headers = None
                content_type = "application/json"
                try:
                    result = await self._dispatch(
                        method, path, body, headers, trace=trace_ctx
                    )
                    if len(result) == 3:
                        status, payload, content_type = result
                    else:
                        status, payload = result
                except _HttpError as error:
                    status, payload = error.status, json.dumps(
                        error.payload, separators=(",", ":")
                    ).encode()
                    extra_headers = error.headers
                except Exception as error:  # noqa: BLE001 — the front must not die
                    self.telemetry.inc("fleet.http_500")
                    status, payload = 500, json.dumps(
                        {"error": str(error), "type": type(error).__name__},
                        separators=(",", ":"),
                    ).encode()
                if trace_ctx is not None:
                    extra_headers = dict(extra_headers or {})
                    extra_headers["X-Repro-Trace-Id"] = trace_ctx.trace_id
                await respond_raw(
                    writer, status, payload, keep_alive, extra_headers,
                    content_type=content_type,
                )
                duration_ms = (time.perf_counter() - started_perf) * 1000.0
                if self.slow_request_ms > 0 and duration_ms >= self.slow_request_ms:
                    self._log_slow_request(
                        method, path.split("?", 1)[0], status, duration_ms, trace_ctx
                    )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: "dict[str, str] | None" = None,
        trace: "TraceContext | None" = None,
    ) -> "tuple[int, bytes]":
        headers = headers or {}
        bare, _, query_text = path.partition("?")
        query = parse_qs(query_text) if query_text else {}
        if method == "GET" and bare == "/healthz":
            return await self._fleet_healthz()
        if method == "GET" and bare == "/metrics":
            return await self._fleet_metrics((query.get("format") or ["json"])[0])
        if method == "GET" and bare == "/traces":
            return await self._fleet_traces(query)
        if method == "GET" and bare.startswith("/trace/"):
            return await self._fleet_trace(bare[len("/trace/"):])
        if method == "POST" and bare == "/fleet/restart":
            return await self._fleet_restart()
        if method == "POST" and bare == "/fault":
            return await self._fleet_fault(body)
        deadline = None
        budget_text = headers.get("x-repro-deadline")
        if budget_text:
            try:
                deadline = time.monotonic() + max(0.0, float(budget_text))
            except ValueError:
                deadline = None
        shard = self._shard_key(method, bare, body)
        slot = self.ring.lookup(shard)
        handle = self.workers[slot]
        with self.tracer.span(
            trace, "fleet.forward", tags={"path": bare, "worker": slot}
        ) as forward_span:
            return await self._forward(
                handle,
                method,
                path,
                body,
                deadline=deadline,
                request_id=headers.get("x-repro-request-id"),
                trace=forward_span.context,
                span=forward_span,
            )

    def _shard_key(self, method: str, path: str, body: bytes) -> str:
        """The affinity key a request shards on (see the module docstring)."""
        if path.startswith("/result/"):
            return path[len("/result/"):]
        if path == "/bind" and body:
            # repeat binds of one template must land on the worker holding
            # the deserialized template in memory
            try:
                payload = json.loads(body)
                key = payload.get("template_key")
                if isinstance(key, str) and key:
                    return key
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                pass
        digest = hashlib.sha256()
        digest.update(method.encode())
        digest.update(path.encode())
        digest.update(body)
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Proxying
    # ------------------------------------------------------------------ #
    async def _forward(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes,
        deadline: "float | None" = None,
        request_id: "str | None" = None,
        trace: "TraceContext | None" = None,
        span=None,
    ) -> "tuple[int, bytes]":
        """Proxy one request to ``handle``'s worker over a pooled connection.

        A stale pooled connection (worker restarted since last use) retries
        once on a fresh one; a dead worker is respawned into its slot and
        the request retried once more — a request that died *with* a killed
        worker is re-sent to its respawned replacement instead of failing.
        The worker's circuit breaker sheds instantly (503) while open, and
        ``deadline`` is re-budgeted into the forwarded ``X-Repro-Deadline``
        so the worker sees only the time the client has left.

        ``trace``/``span`` annotate a sampled request's ``fleet.forward``
        span: each upstream attempt records its own ``fleet.attempt`` child
        (error-tagged on failure), and breaker events land as tags.
        """
        allowed, event = handle.breaker.allow()
        if event == "probe":
            self.telemetry.inc("fleet.breaker_probes")
            if span is not None:
                span.tag("breaker", "probe")
        if not allowed:
            self.telemetry.inc("fleet.breaker_shed")
            if span is not None:
                span.tag("breaker", "open")
            raise _HttpError(
                503,
                f"fleet worker {handle.slot} circuit breaker is open",
                "CircuitOpen",
                headers={"Retry-After": f"{handle.breaker.cooldown:g}"},
            )
        verdict_recorded = False
        try:
            await faults.fire_async("fleet.upstream")
            try:
                await asyncio.wait_for(handle.available.wait(), self.startup_timeout)
            except asyncio.TimeoutError:
                raise _HttpError(
                    500,
                    f"fleet worker {handle.slot} did not become available",
                    "FleetError",
                ) from None
            handle.in_flight += 1
            try:
                for attempt in range(3):
                    if deadline is not None and time.monotonic() >= deadline:
                        raise _HttpError(
                            504,
                            "request deadline exceeded at the fleet front",
                            "DeadlineExceededError",
                        )
                    fresh = attempt > 0 or not handle.idle
                    attempt_error: "str | None" = None
                    attempt_id = mint_span_id() if trace is not None else None
                    attempt_wall = time.time()
                    attempt_perf = time.perf_counter()
                    attempt_ctx = (
                        TraceContext(trace.trace_id, attempt_id)
                        if trace is not None
                        else None
                    )
                    try:
                        if handle.idle:
                            reader, writer = handle.idle.pop()
                        else:
                            reader, writer = await asyncio.open_connection(
                                handle.host, handle.port
                            )
                    except OSError as error:
                        reader = writer = None
                        attempt_error = f"{type(error).__name__}: {error}"
                    if writer is not None:
                        try:
                            status, payload = await self._exchange(
                                reader, writer, method, path, body,
                                deadline=deadline, request_id=request_id,
                                trace_ctx=attempt_ctx,
                            )
                        except (OSError, asyncio.IncompleteReadError, _HttpError) as error:
                            attempt_error = f"{type(error).__name__}: {error}"
                            with contextlib.suppress(Exception):
                                writer.close()
                        else:
                            handle.idle.append((reader, writer))
                            verdict_recorded = True
                            if handle.breaker.record_success() == "reset":
                                self.telemetry.inc("fleet.breaker_resets")
                                if span is not None:
                                    span.tag("breaker", "reset")
                            if trace is not None:
                                self.tracer.record(
                                    trace.trace_id,
                                    "fleet.attempt",
                                    attempt_wall,
                                    time.perf_counter() - attempt_perf,
                                    parent_id=trace.span_id,
                                    span_id=attempt_id,
                                    tags={
                                        "attempt": attempt,
                                        "worker": handle.slot,
                                        "status": status,
                                    },
                                )
                                span.tag("attempts", attempt + 1)
                            return status, payload
                    if trace is not None:
                        self.tracer.record(
                            trace.trace_id,
                            "fleet.attempt",
                            attempt_wall,
                            time.perf_counter() - attempt_perf,
                            parent_id=trace.span_id,
                            span_id=attempt_id,
                            tags={"attempt": attempt, "worker": handle.slot},
                            error=attempt_error or "forward attempt failed",
                        )
                    if attempt > 0:
                        self.telemetry.inc("fleet.forward_retries")
                    # a fresh connection failed too: the worker process is gone
                    if fresh and not await self._confirm_alive(handle):
                        self.telemetry.inc("fleet.worker_deaths")
                        await self._respawn_worker(handle)
                verdict_recorded = True
                if span is not None:
                    span.tag("attempts", 3)
                if handle.breaker.record_failure() == "trip":
                    self.telemetry.inc("fleet.breaker_trips")
                    if span is not None:
                        span.tag("breaker", "trip")
                raise _HttpError(
                    500,
                    f"fleet worker {handle.slot} kept failing at {handle.address}",
                    "FleetError",
                )
            finally:
                handle.in_flight -= 1
        finally:
            # a forward that exited without a success/failure verdict (an
            # expired deadline, an availability timeout) must not leave the
            # half-open probe slot claimed forever
            if not verdict_recorded:
                handle.breaker.release_probe()

    async def _confirm_alive(self, handle: WorkerHandle) -> bool:
        """Whether a worker whose fresh connection just failed really lives.

        A dying worker closes its sockets an instant *before* it becomes
        reapable, so a single ``poll()`` here races the kernel: the connect
        already failed but the process does not read as dead yet, and the
        respawn-and-resend path would be skipped.  Re-poll briefly before
        trusting a live verdict.
        """
        for _ in range(5):
            if not handle.alive:
                return False
            await asyncio.sleep(0.02)
        return handle.alive

    async def _exchange(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        deadline: "float | None" = None,
        request_id: "str | None" = None,
        trace_ctx: "TraceContext | None" = None,
    ) -> "tuple[int, bytes]":
        """One request/response over an (already open) worker connection."""
        extra = ""
        if deadline is not None:
            remaining = deadline - time.monotonic()
            extra += f"X-Repro-Deadline: {max(0.0, remaining):g}\r\n"
        if request_id:
            extra += f"X-Repro-Request-Id: {request_id}\r\n"
        if trace_ctx is not None:
            # the front's sampling decision is authoritative for the worker
            extra += f"X-Repro-Trace-Id: {trace_ctx.trace_id}\r\n"
            extra += "X-Repro-Trace: 1\r\n"
            if trace_ctx.span_id:
                extra += f"X-Repro-Parent-Span: {trace_ctx.span_id}\r\n"
        else:
            extra += "X-Repro-Trace: 0\r\n"
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise _HttpError(500, "fleet worker sent a malformed response") from None
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await reader.readexactly(length) if length else b""
        return status, payload

    async def _worker_get_json(self, handle: WorkerHandle, path: str) -> dict:
        status, payload = await self._forward(handle, "GET", path, b"")
        if status != 200:
            raise _HttpError(500, f"worker {handle.slot} {path} returned {status}")
        return json.loads(payload)

    # ------------------------------------------------------------------ #
    # Fleet endpoints
    # ------------------------------------------------------------------ #
    def _encode(self, status: int, payload: dict) -> "tuple[int, bytes]":
        return status, json.dumps(payload, separators=(",", ":")).encode()

    async def _fleet_healthz(self) -> "tuple[int, bytes]":
        """Aggregate liveness: ``ok`` iff every worker's /healthz is."""

        async def _one(handle: WorkerHandle) -> dict:
            try:
                health = await self._worker_get_json(handle, "/healthz")
            except Exception as error:  # noqa: BLE001 — report, don't crash
                return {"slot": handle.slot, "status": "dead", "error": str(error)}
            health["slot"] = handle.slot
            health["address"] = handle.address
            return health

        reports = await asyncio.gather(
            *(_one(handle) for handle in self.workers.values())
        )
        all_ok = all(report.get("status") == "ok" for report in reports)
        return self._encode(
            200 if all_ok else 500,
            {
                "status": "ok" if all_ok else "degraded",
                "fleet": True,
                "workers": len(reports),
                "worker_health": list(reports),
            },
        )

    async def _fleet_metrics(self, fmt: str = "json") -> "tuple[int, bytes]":
        """Per-worker metrics plus a fleet-wide telemetry rollup.

        ``fmt="prometheus"`` renders every worker's payload with a
        ``worker="wN"`` label (plus the front's own telemetry as
        ``worker="front"``) in text exposition format.
        """
        if fmt not in ("json", "prometheus"):
            raise _HttpError(400, f"unknown metrics format {fmt!r}", "BadFormat")

        async def _one(handle: WorkerHandle) -> "dict | None":
            try:
                metrics = await self._worker_get_json(handle, "/metrics")
            except Exception:  # noqa: BLE001 — a dead worker just drops out
                return None
            metrics["slot"] = handle.slot
            metrics["restarts"] = handle.restarts
            metrics["breaker"] = handle.breaker.stats()
            return metrics

        per_worker = [
            metrics
            for metrics in await asyncio.gather(
                *(_one(handle) for handle in self.workers.values())
            )
            if metrics is not None
        ]
        if fmt == "prometheus":
            sources = [
                (metrics, {"worker": metrics["slot"]}) for metrics in per_worker
            ]
            sources.append(
                ({"telemetry": self.telemetry.snapshot()}, {"worker": "front"})
            )
            text = render_prometheus(sources)
            return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
        scheduler = {
            "jobs_submitted": sum(m["scheduler"]["jobs_submitted"] for m in per_worker),
            "batches_flushed": sum(m["scheduler"]["batches_flushed"] for m in per_worker),
        }
        payload = {
            "fleet": self.telemetry.snapshot(),
            "workers": len(self.workers),
            "telemetry": merge_snapshots([m["telemetry"] for m in per_worker]),
            "scheduler": scheduler,
            "tracer": self.tracer.snapshot(),
            "per_worker": per_worker,
        }
        caches = [m["cache"] for m in per_worker if "cache" in m]
        if caches:
            # disk-level numbers are views of the one shared directory (take
            # the first); process-local counters sum across workers
            rollup = dict(caches[0])
            for name in (
                "hits", "misses", "memory_hits", "disk_hits", "evictions",
                "deletes", "index_drift", "corrupt_artifacts", "read_errors",
                "template_hits", "template_misses",
                "template_evictions", "sweeps", "expired",
            ):
                rollup[name] = sum(int(cache.get(name, 0)) for cache in caches)
            payload["cache"] = rollup
        pools = [m["pool"] for m in per_worker if "pool" in m]
        if pools:
            payload["pool"] = {
                "max_workers": sum(int(pool.get("max_workers", 0)) for pool in pools),
                "alive": all(bool(pool.get("alive")) for pool in pools),
                "batches": sum(int(pool.get("batches", 0)) for pool in pools),
                "programs": sum(int(pool.get("programs", 0)) for pool in pools),
                "restarts": sum(int(pool.get("restarts", 0)) for pool in pools),
                "breaks": sum(int(pool.get("breaks", 0)) for pool in pools),
            }
        return self._encode(200, payload)

    async def _fleet_trace(self, trace_id: str) -> "tuple[int, bytes]":
        """Stitch one trace: the front's own spans + every worker's.

        Workers without spans for the id (404s, dead workers) just drop out;
        a 404 from the front means *nobody* buffered the trace.
        """
        await faults.fire_async("fleet.trace")
        trace_id = trace_id.strip().lower()

        async def _one(handle: WorkerHandle) -> "list[dict]":
            try:
                status, payload = await self._forward(
                    handle, "GET", f"/trace/{trace_id}", b""
                )
                if status != 200:
                    return []
                return json.loads(payload).get("spans", [])
            except Exception:  # noqa: BLE001 — a missing worker trace is not fatal
                return []

        worker_spans = await asyncio.gather(
            *(_one(handle) for handle in self.workers.values())
        )
        merged = merge_trace_spans([self.tracer.trace(trace_id), *worker_spans])
        if not merged:
            raise _HttpError(
                404, f"no buffered spans for trace {trace_id!r}", "NotFound"
            )
        return self._encode(
            200,
            {
                "trace_id": trace_id,
                "spans": merged,
                "stitched": True,
                "workers": len(self.workers),
            },
        )

    async def _fleet_traces(self, query: "dict[str, list[str]]") -> "tuple[int, bytes]":
        """Merged recent-trace summaries across the front and every worker."""
        await faults.fire_async("fleet.trace")
        limit_text = (query.get("limit") or ["20"])[0]
        try:
            limit = max(1, min(500, int(limit_text)))
        except ValueError:
            raise _HttpError(
                400, f"limit must be an integer, got {limit_text!r}"
            ) from None

        async def _one(handle: WorkerHandle) -> "list[dict]":
            try:
                payload = await self._worker_get_json(
                    handle, f"/traces?limit={limit}"
                )
                return payload.get("traces", [])
            except Exception:  # noqa: BLE001 — a dead worker just drops out
                return []

        worker_summaries = await asyncio.gather(
            *(_one(handle) for handle in self.workers.values())
        )
        merged = merge_trace_summaries(
            [self.tracer.traces(limit), *worker_summaries], limit=limit
        )
        return self._encode(200, {"traces": merged})

    def _log_slow_request(
        self,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        trace_ctx: "TraceContext | None",
    ) -> None:
        """One structured JSON line to stderr per over-threshold request."""
        self.telemetry.inc("fleet.slow_requests")
        record: dict = {
            "event": "slow_request",
            "source": "fleet-front",
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "threshold_ms": self.slow_request_ms,
            "trace_id": trace_ctx.trace_id if trace_ctx is not None else None,
        }
        if trace_ctx is not None:
            record["spans"] = [
                {
                    "name": span["name"],
                    "duration_ms": round(span["duration_seconds"] * 1000.0, 3),
                }
                for span in self.tracer.trace(trace_ctx.trace_id)
            ]
        print(json.dumps(record, separators=(",", ":")), file=sys.stderr, flush=True)

    async def _fleet_restart(self) -> "tuple[int, bytes]":
        """Rolling draining restart of every worker, one at a time."""
        async with self._restart_lock:
            restarted = []
            for slot in sorted(self.workers):
                await self.restart_worker(self.workers[slot])
                restarted.append(slot)
        return self._encode(200, {"restarted": restarted})

    async def _fleet_fault(self, body: bytes) -> "tuple[int, bytes]":
        """Arm faults across the fleet (chaos tooling; needs ``--enable-faults``).

        ``fleet.*`` sites arm the front's own registry; everything else is
        forwarded to the workers — to every worker, or to one slot when the
        rule carries a ``"worker"`` field.  ``clear`` / ``seed`` apply to the
        front and broadcast to every worker.
        """
        if not self.enable_faults:
            raise _HttpError(
                403,
                "fault injection is disabled; start the fleet with "
                "--enable-faults",
                "FaultsDisabled",
            )
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("fault payload must be a JSON object")
            rules: "list[faults.FaultRule]" = []
            if "spec" in payload:
                rules.extend(faults.parse_spec(str(payload["spec"])))
            raw_rules = payload.get("rules", [])
            if not isinstance(raw_rules, list):
                raise ValueError("'rules' must be a list of rule objects")
            for rule_data in raw_rules:
                rules.extend([faults.FaultRule.from_dict(rule_data)])
        except (ValueError, TypeError, UnicodeDecodeError) as error:
            raise _HttpError(400, str(error), "FaultSpec") from error

        clear = bool(payload.get("clear"))
        seed = payload.get("seed")
        if clear:
            faults.REGISTRY.clear()
        if seed is not None:
            faults.REGISTRY.reseed(int(seed))

        # split front-local vs worker rules; unknown worker slots are a 400
        per_worker: "dict[str, list[dict]]" = {slot: [] for slot in self.workers}
        for rule in rules:
            if rule.site.startswith("fleet."):
                faults.REGISTRY.add(rule)
                continue
            targets = [rule.worker] if rule.worker else sorted(self.workers)
            for slot in targets:
                if slot not in self.workers:
                    raise _HttpError(
                        400, f"unknown fleet worker slot {slot!r}", "FaultSpec"
                    )
                data = rule.to_dict()
                data.pop("worker", None)
                per_worker[slot].append(data)

        worker_reports: "dict[str, object]" = {}
        for slot in sorted(self.workers):
            worker_payload: dict = {}
            if clear:
                worker_payload["clear"] = True
            if seed is not None:
                worker_payload["seed"] = int(seed)
            if per_worker[slot]:
                worker_payload["rules"] = per_worker[slot]
            if not worker_payload:
                continue
            handle = self.workers[slot]
            encoded = json.dumps(worker_payload, separators=(",", ":")).encode()
            try:
                status, response = await self._forward(
                    handle, "POST", "/fault", encoded
                )
                worker_reports[slot] = {
                    "status": status,
                    "active": json.loads(response).get("active", []),
                }
            except Exception as error:  # noqa: BLE001 — report, don't crash
                worker_reports[slot] = {"error": str(error)}
        return self._encode(
            200,
            {
                "enabled": True,
                "front": [rule.to_dict() for rule in faults.REGISTRY.active()],
                "workers": worker_reports,
            },
        )

    def stats(self) -> dict:
        """JSON-safe supervisor counters (for tests; the front has no loop)."""
        return {
            "workers": {
                slot: {
                    "address": handle.address,
                    "alive": handle.alive,
                    "restarts": handle.restarts,
                    "in_flight": handle.in_flight,
                    "idle_connections": len(handle.idle),
                    "breaker": handle.breaker.stats(),
                }
                for slot, handle in sorted(self.workers.items())
            },
            "telemetry": self.telemetry.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"FleetFront(workers={self.num_workers}, address={self.address!r})"
        )
