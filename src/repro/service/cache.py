"""Disk-backed content-addressed store of compiled artifacts.

The cache key is a canonical SHA-256 over everything that determines a
compilation's output: the program's **packed** words / phases / coefficient
bytes (the exact store the compiler consumes, so a term list and the
equivalent :class:`~repro.paulis.sum.SparsePauliSum` share one artifact), a
target fingerprint (name, qubit count, coupling edges, basis gates), and the
level / registered-pipeline spec.  Values are wire-serialized
:class:`~repro.compiler.result.CompilationResult` payloads
(:mod:`repro.service.serialize`), one JSON file per key.

Layering (fastest first):

1. an in-memory LRU of deserialized results — a warm hit costs a dict
   lookup, which is what lets a repeat request come back orders of magnitude
   faster than the cold compile;
2. the disk store — survives process restarts and is shared by concurrent
   processes: every object and index write goes through a temp file plus
   :func:`os.replace` (atomic on POSIX and Windows), so readers never see a
   torn file, and the LRU size cap evicts by file mtime (touched on every
   disk hit);
3. in front of the existing in-memory
   :class:`~repro.clifford.engine.ConjugationCache`: the cache owns one and
   the service threads it through every ``compile_many`` call, so even cache
   *misses* pool their tableau freezes.

``index.json`` is an advisory snapshot (key → size / stored-at) rebuilt from
the object directory on every write; the object files themselves are the
source of truth, so two processes racing on the index can only lose a
snapshot update, never an artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.clifford.engine import ConjugationCache
from repro.compiler.api import validate_program
from repro.compiler.result import CompilationResult
from repro.compiler.target import Target, as_target
from repro.exceptions import CacheError, FaultInjectedError, ReproError
from repro.paulis.packed import PackedPauliTable
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.service import faults
from repro.service.serialize import (
    result_from_wire,
    result_to_wire,
    template_from_wire,
    template_to_wire,
)
from repro.transpile.coupling import CouplingMap

#: default disk budget for one cache directory
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: default disk budget of the ``templates/`` store — separate from the
#: result budget because one template serves every binding of an ansatz,
#: but no longer exempt: an abandoned ansatz must not pin disk forever
DEFAULT_MAX_TEMPLATE_BYTES = 64 * 1024 * 1024

#: default number of deserialized results kept in the in-memory layer
DEFAULT_MEMORY_ENTRIES = 128

#: most corrupt files kept in ``<cache>/quarantine/`` — oldest pruned beyond
#: this, so a rotting disk cannot fill the volume with evidence
DEFAULT_MAX_QUARANTINE = 32


def target_fingerprint(target: Target | CouplingMap | str | None) -> str:
    """A canonical, content-based description of a compilation target.

    Two targets with the same connectivity and basis gates fingerprint
    identically even if constructed separately; ``None`` (all-to-all) has its
    own stable token.
    """
    device = as_target(target)
    if device is None:
        return "target:none"
    edges = (
        "full"
        if device.coupling is None
        else ";".join(
            f"{a}-{b}"
            for a, b in sorted((min(a, b), max(a, b)) for a, b in device.coupling.edges)
        )
    )
    gates = ",".join(sorted(device.basis_gates))
    return f"target:{device.name}:{device.num_qubits}:{edges}:{gates}"


def pipeline_fingerprint(level: int, pipeline: str | None) -> str:
    """The level / registered-pipeline-name part of the cache key.

    Only registry *names* (and preset levels) are accepted: an ad-hoc
    :class:`~repro.compiler.pipeline.Pipeline` object can carry arbitrary
    pass flags that a name-based fingerprint cannot see, and a content hash
    that silently collides across configurations would serve wrong artifacts.
    """
    if pipeline is None:
        return f"level:{int(level)}"
    if isinstance(pipeline, str):
        return f"pipeline:{pipeline}"
    raise CacheError(
        "artifact caching needs a reproducible pipeline spec: pass a preset "
        f"level or a registered pipeline name, not {type(pipeline).__name__}"
    )


def cache_key(
    program: Sequence[PauliTerm] | SparsePauliSum,
    target: Target | CouplingMap | str | None = None,
    level: int = 3,
    pipeline: str | None = None,
) -> str:
    """Canonical SHA-256 key of one compile request (hex digest)."""
    validate_program(program, source="repro.service.cache")
    if isinstance(program, SparsePauliSum):
        table = program.packed_table
        coefficients = program.coefficient_vector()
    else:
        table = PackedPauliTable.from_paulis(term.pauli for term in program)
        coefficients = np.array([term.coefficient for term in program], dtype=float)
    digest = hashlib.sha256()
    digest.update(f"repro-artifact/v1:{table.num_qubits}:{table.num_rows}".encode())
    # hash host bytes so the key is independent of the array backend the
    # table happens to live on — a numpy and a cupy view of one program must
    # resolve to the same artifact
    be = table.backend
    digest.update(np.ascontiguousarray(be.to_numpy(table.x_words), dtype="<u8").tobytes())
    digest.update(np.ascontiguousarray(be.to_numpy(table.z_words), dtype="<u8").tobytes())
    digest.update(np.ascontiguousarray(be.to_numpy(table.phases) % 4, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(coefficients, dtype="<f8").tobytes())
    digest.update(target_fingerprint(target).encode())
    digest.update(b"|")
    digest.update(pipeline_fingerprint(level, pipeline).encode())
    return digest.hexdigest()


def template_cache_key(
    program,
    target: Target | CouplingMap | str | None = None,
    level: int = 3,
) -> str:
    """Canonical SHA-256 key of one compiled template (hex digest).

    Keys on the ansatz *structure* alone — packed words, phases, slot
    assignments, scales and arity, never a concrete angle — so every binding
    of one ansatz resolves to the same template artifact.
    """
    from repro.parametric.program import ParametricProgram

    if not isinstance(program, ParametricProgram):
        raise CacheError(
            f"template keys are derived from a ParametricProgram, got "
            f"{type(program).__name__}"
        )
    table = program.table
    digest = hashlib.sha256()
    digest.update(
        f"repro-template/v1:{table.num_qubits}:{table.num_rows}:"
        f"{program.num_params}".encode()
    )
    be = table.backend
    digest.update(np.ascontiguousarray(be.to_numpy(table.x_words), dtype="<u8").tobytes())
    digest.update(np.ascontiguousarray(be.to_numpy(table.z_words), dtype="<u8").tobytes())
    digest.update(np.ascontiguousarray(be.to_numpy(table.phases) % 4, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(program.slots, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(program.scales, dtype="<f8").tobytes())
    digest.update(target_fingerprint(target).encode())
    digest.update(b"|")
    digest.update(pipeline_fingerprint(level, None).encode())
    return digest.hexdigest()


class ArtifactCache:
    """Persistent content-addressed cache of :class:`CompilationResult`.

    Parameters
    ----------
    cache_dir:
        Directory shared by every process using this cache; created on
        demand.
    max_bytes:
        Disk budget; least-recently-used artifacts (by file mtime, touched
        on every disk hit) are evicted after a write pushes the total over.
    memory_entries:
        Size of the in-memory LRU of deserialized results (0 disables it).
    max_template_bytes:
        Disk budget of the ``templates/`` store; evicted mtime-LRU like the
        result objects (template mtimes are touched on every disk hit).
    ttl_seconds:
        Optional idle time-to-live: :meth:`sweep` removes artifacts and
        templates whose file mtime is older than this.  ``None`` (default)
        disables expiry; the server runs the sweep on a background task.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        max_template_bytes: int = DEFAULT_MAX_TEMPLATE_BYTES,
        ttl_seconds: float | None = None,
    ):
        self.cache_dir = Path(cache_dir)
        self.objects_dir = self.cache_dir / "objects"
        #: compiled templates live beside the result objects under their own
        #: (larger-grained) budget: one template serves every binding of an
        #: ansatz, so they never compete with single results for space — but
        #: the store is bounded and TTL-swept like everything else
        self.templates_dir = self.cache_dir / "templates"
        #: corrupt / incompatible artifacts are moved here (bounded count)
        #: instead of silently unlinked, so operators can diagnose disk rot
        self.quarantine_dir = self.cache_dir / "quarantine"
        self.max_quarantine = DEFAULT_MAX_QUARANTINE
        self.index_path = self.cache_dir / "index.json"
        self.max_bytes = int(max_bytes)
        self.max_template_bytes = int(max_template_bytes)
        self.ttl_seconds = None if ttl_seconds is None else float(ttl_seconds)
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise CacheError(
                f"ttl_seconds must be positive or None, got {self.ttl_seconds}"
            )
        self.memory_entries = int(memory_entries)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.templates_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, CompilationResult] = OrderedDict()
        self._template_memory: OrderedDict[str, object] = OrderedDict()
        #: the in-memory conjugation cache this store layers in front of;
        #: the service threads it through every compile_many call
        self.conjugation_cache = ConjugationCache()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.evictions = 0
        self.deletes = 0
        self.template_hits = 0
        self.template_misses = 0
        self.template_evictions = 0
        #: lifecycle counters: completed :meth:`sweep` passes and the total
        #: artifacts + templates they expired under ``ttl_seconds``
        self.sweeps = 0
        self.expired = 0
        #: cumulative count of index.json entries found pointing at missing
        #: artifact files (external deletion, a lost eviction race, a pruned
        #: volume) — repaired on detection, surfaced on ``/metrics``
        self.index_drift = 0
        #: cumulative corrupt or incompatible artifacts hit by get()/
        #: get_template() — each is quarantined, counted, and degraded to a
        #: miss; surfaced on ``/metrics`` so operators can see disk rot
        self.corrupt_artifacts = 0
        #: injected or real read failures degraded to a miss
        self.read_errors = 0
        self.reconcile_index()

    # ------------------------------------------------------------------ #
    key_for = staticmethod(cache_key)
    template_key_for = staticmethod(template_cache_key)

    def _object_path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed artifact key {key!r}")
        return self.objects_dir / f"{key}.json"

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> CompilationResult | None:
        """The cached result for ``key``, or ``None`` on a miss.

        Memory first; a disk hit is deserialized, promoted into the memory
        layer, and its file mtime refreshed so LRU eviction sees the use.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                self.memory_hits += 1
                return cached
        path = self._object_path(key)
        try:
            faults.fire("cache.read")
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, FaultInjectedError):
            # a torn write is impossible (os.replace), but a failing disk or
            # concurrent eviction mid-read degrades to a miss
            with self._lock:
                self.misses += 1
                self.read_errors += 1
            return None
        raw = faults.corrupt_bytes("cache.read", raw)
        try:
            payload = json.loads(raw)
            result = result_from_wire(payload)
        except (ValueError, ReproError):
            # corrupt or incompatible artifact (undecodable bytes, a
            # wire-format mismatch, or a structurally valid payload whose
            # contents fail reconstruction): quarantine it and recompile
            self._quarantine(path)
            with self._lock:
                self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.hits += 1
            self.disk_hits += 1
            self._remember(key, result)
        return result

    def put(self, key: str, result: CompilationResult) -> None:
        """Store ``result`` under ``key`` (atomic write + LRU eviction)."""
        faults.fire("cache.write")
        payload = result_to_wire(result)
        encoded = json.dumps(payload, separators=(",", ":"))
        path = self._object_path(key)
        self._atomic_write(path, encoded)
        with self._lock:
            self._remember(key, result)
        # one directory scan feeds both eviction and the index snapshot
        entries = self._evict_over_budget(self._scan_objects())
        self._write_index(entries)

    def delete(self, key: str) -> bool:
        """Explicitly remove the artifact under ``key`` from every layer.

        Returns whether anything was removed (memory or disk); the index
        snapshot is refreshed so the advisory view drops the entry too.
        """
        path = self._object_path(key)
        with self._lock:
            in_memory = self._memory.pop(key, None) is not None
        try:
            path.unlink()
            on_disk = True
        except FileNotFoundError:
            on_disk = False
        except OSError:
            on_disk = False
        removed = in_memory or on_disk
        if removed:
            with self._lock:
                self.deletes += 1
            if on_disk:
                self._write_index()
        return removed

    # ------------------------------------------------------------------ #
    # Compiled templates (repro.parametric)
    # ------------------------------------------------------------------ #
    def _template_path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CacheError(f"malformed template key {key!r}")
        return self.templates_dir / f"{key}.json"

    def get_template(self, key: str):
        """The cached :class:`CompiledTemplate` for ``key``, or ``None``.

        Memory first, then disk — a disk hit pays one wire deserialization
        and is promoted, so repeat binds against a restarted service go back
        to dict-lookup cost.  The in-memory object is shared across requests
        (templates are value-immutable; only their bind counters move).
        """
        with self._lock:
            cached = self._template_memory.get(key)
            if cached is not None:
                self._template_memory.move_to_end(key)
                self.template_hits += 1
                return cached
        path = self._template_path(key)
        try:
            faults.fire("cache.read")
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            with self._lock:
                self.template_misses += 1
            return None
        except (OSError, FaultInjectedError):
            with self._lock:
                self.template_misses += 1
                self.read_errors += 1
            return None
        raw = faults.corrupt_bytes("cache.read", raw)
        try:
            payload = json.loads(raw)
            template = template_from_wire(payload)
        except (ValueError, ReproError):
            # corrupt or incompatible template: quarantine it and re-trace
            self._quarantine(path)
            with self._lock:
                self.template_misses += 1
            return None
        try:
            os.utime(path)  # keep live templates fresh for LRU/TTL
        except OSError:
            pass
        with self._lock:
            self.template_hits += 1
            self._remember_template(key, template)
        return template

    def put_template(self, key: str, template) -> None:
        """Store a compiled template under ``key`` (atomic write + LRU)."""
        faults.fire("cache.write")
        encoded = json.dumps(template_to_wire(template), separators=(",", ":"))
        self._atomic_write(self._template_path(key), encoded)
        with self._lock:
            self._remember_template(key, template)
        self._evict_templates_over_budget()

    def _evict_templates_over_budget(self) -> None:
        """Evict oldest-mtime templates until the template store fits."""
        entries = self._scan_templates()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_template_bytes:
            return
        for mtime, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            with self._lock:
                self._template_memory.pop(path.stem, None)
                self.template_evictions += 1
            total -= size
            if total <= self.max_template_bytes:
                break

    def _remember_template(self, key: str, template) -> None:
        if self.memory_entries <= 0:
            return
        self._template_memory[key] = template
        self._template_memory.move_to_end(key)
        while len(self._template_memory) > self.memory_entries:
            self._template_memory.popitem(last=False)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt artifact into ``quarantine/`` instead of deleting.

        Keeps at most ``max_quarantine`` files (oldest-mtime pruned), counts
        the event into ``corrupt_artifacts``, and never raises — quarantine
        is best-effort bookkeeping on an already-degraded read path.
        """
        with self._lock:
            self.corrupt_artifacts += 1
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return
        held = self._scan_dir(self.quarantine_dir)
        if len(held) > self.max_quarantine:
            for _, _, old in sorted(held)[: len(held) - self.max_quarantine]:
                try:
                    old.unlink()
                except OSError:
                    continue

    def quarantine_entries(self) -> int:
        """Number of files currently held in ``quarantine/``."""
        return len(self._scan_dir(self.quarantine_dir))

    def forget_memory(self) -> None:
        """Drop the in-memory layers (disk untouched) — restart simulation."""
        with self._lock:
            self._memory.clear()
            self._template_memory.clear()

    # ------------------------------------------------------------------ #
    def _remember(self, key: str, result: CompilationResult) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _scan_objects(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every committed artifact file."""
        return self._scan_dir(self.objects_dir)

    def _scan_templates(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every committed template file."""
        return self._scan_dir(self.templates_dir)

    @staticmethod
    def _scan_dir(directory: Path) -> list[tuple[float, int, Path]]:
        entries = []
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        for name in names:
            if name.startswith(".tmp-") or not name.endswith(".json"):
                continue
            path = directory / name
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _evict_over_budget(
        self, entries: list[tuple[float, int, Path]]
    ) -> list[tuple[float, int, Path]]:
        """Evict oldest-mtime artifacts until under budget; returns survivors."""
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return entries
        survivors = list(entries)
        for entry in sorted(entries):
            _, size, path = entry
            try:
                path.unlink()
            except OSError:
                continue
            survivors.remove(entry)
            key = path.stem
            with self._lock:
                self._memory.pop(key, None)
                self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break
        return survivors

    def _write_index(self, entries: "list[tuple[float, int, Path]] | None" = None) -> None:
        """Refresh the advisory ``index.json`` snapshot from the object dir."""
        if entries is None:
            entries = self._scan_objects()
        index = {
            "schema": "repro-artifact-index/v1",
            "written": time.time(),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "artifacts": {
                path.stem: {"bytes": size, "mtime": mtime}
                for mtime, size, path in sorted(entries)
            },
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, prefix=".tmp-index-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(index, handle, indent=2, sort_keys=True)
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def sweep(self, now: float | None = None) -> dict:
        """One lifecycle pass: expire idle artifacts/templates, repair drift.

        With ``ttl_seconds`` set, removes every artifact and template whose
        file mtime is older than ``now - ttl_seconds`` (mtimes are touched on
        each disk hit, so this is an *idle* TTL, not an age cap), then
        reconciles the advisory index.  With no TTL it is just a reconcile
        pass.  Safe to race with other processes on the same directory —
        losing an unlink means someone else expired the file first.

        Returns a JSON-safe summary of what this pass did; the server runs it
        on a background task and exposes the cumulative ``sweeps`` /
        ``expired`` counters on ``/metrics``.
        """
        if now is None:
            now = time.time()
        faults.fire("cache.sweep")
        expired_objects = 0
        expired_templates = 0
        if self.ttl_seconds is not None:
            deadline = now - self.ttl_seconds
            for mtime, _, path in self._scan_objects():
                if mtime >= deadline:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                expired_objects += 1
                with self._lock:
                    self._memory.pop(path.stem, None)
            for mtime, _, path in self._scan_templates():
                if mtime >= deadline:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                expired_templates += 1
                with self._lock:
                    self._template_memory.pop(path.stem, None)
            if expired_objects:
                self._write_index()
        drift = self.reconcile_index()
        with self._lock:
            self.sweeps += 1
            self.expired += expired_objects + expired_templates
        return {
            "expired_objects": expired_objects,
            "expired_templates": expired_templates,
            "index_drift": drift,
            "ttl_seconds": self.ttl_seconds,
        }

    def reconcile_index(self) -> int:
        """Detect and repair advisory-index entries whose artifact is gone.

        The object files are the source of truth; an ``index.json`` entry
        with no backing file means something outside the cache's own write
        path removed the artifact (operator cleanup, a shared-volume prune,
        a lost eviction race).  Every drifted entry is counted into
        ``index_drift``, dropped from the memory layer, and the snapshot is
        rewritten from a fresh directory scan.  Returns the drift found by
        *this* call; run automatically at construction and on every
        :meth:`stats` read (so ``/metrics`` always reports a repaired view).
        """
        try:
            with open(self.index_path) as handle:
                index = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return 0
        listed = index.get("artifacts") if isinstance(index, dict) else None
        if not isinstance(listed, dict) or not listed:
            return 0
        entries = self._scan_objects()
        present = {path.stem for _, _, path in entries}
        drifted = set(listed) - present
        if not drifted:
            return 0
        with self._lock:
            self.index_drift += len(drifted)
            for key in drifted:
                self._memory.pop(key, None)
        self._write_index(entries)
        return len(drifted)

    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self._object_path(key).exists()

    def __len__(self) -> int:
        return len(self._scan_objects())

    def stats(self) -> dict:
        self.reconcile_index()
        entries = self._scan_objects()
        template_entries = self._scan_templates()
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "deletes": self.deletes,
                "index_drift": self.index_drift,
                "corrupt_artifacts": self.corrupt_artifacts,
                "read_errors": self.read_errors,
                "quarantine_entries": self.quarantine_entries(),
                "template_hits": self.template_hits,
                "template_misses": self.template_misses,
                "template_evictions": self.template_evictions,
                "sweeps": self.sweeps,
                "expired": self.expired,
                "ttl_seconds": self.ttl_seconds,
                "memory_entries": len(self._memory),
                "template_memory_entries": len(self._template_memory),
                "template_disk_entries": len(template_entries),
                "template_disk_bytes": sum(size for _, size, _ in template_entries),
                "max_template_bytes": self.max_template_bytes,
                "disk_entries": len(entries),
                "disk_bytes": sum(size for _, size, _ in entries),
                "max_bytes": self.max_bytes,
                "conjugation_cache": self.conjugation_cache.stats(),
            }

    def _list_templates(self) -> list[str]:
        try:
            names = os.listdir(self.templates_dir)
        except OSError:
            return []
        return [
            name
            for name in names
            if name.endswith(".json") and not name.startswith(".tmp-")
        ]

    def __repr__(self) -> str:
        return (
            f"ArtifactCache(dir={str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
