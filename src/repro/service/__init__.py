"""Compilation-as-a-service: wire serialization, artifact cache, HTTP front-end.

The compiler made the compile path fast (bit-packed conjugation, table-native
extraction, streaming peephole, overhead-aware batching); this sub-package is
the serving substrate on top of it:

* :mod:`repro.service.serialize` — a compact versioned wire format.
  Programs round-trip through their packed ``uint64`` words (base64 of the
  raw word matrix plus the coefficient vector, no per-term repacking),
  circuits through the OpenQASM path, and whole
  :class:`~repro.compiler.result.CompilationResult` objects through
  :func:`result_to_wire` / :func:`result_from_wire` — tableau, metadata and
  pass timings bit-exact.
* :mod:`repro.service.cache` — :class:`ArtifactCache`, a disk-backed
  content-addressed store of compiled results (canonical program/target/
  pipeline hash → serialized result) with an in-memory first layer, an index
  file, an LRU size cap, and atomic writes so concurrent processes can share
  one cache directory.
* :mod:`repro.service.scheduler` — :class:`BatchingScheduler`, a request
  coalescer that buffers concurrent submissions for a few milliseconds and
  feeds them through :func:`repro.compile_many` as one planned batch.
* :mod:`repro.service.server` / ``python -m repro.service`` — a stdlib-only
  ``asyncio`` HTTP JSON API (``POST /compile``, ``POST /compile_batch``,
  ``POST /compile_template``, ``POST /bind``, ``GET /result/<key>``,
  ``DELETE /result/<key>``, ``GET /healthz``, ``GET /metrics``).  Bind
  requests replay a pre-compiled :mod:`repro.parametric` template inline on
  the event loop — microseconds per request, never the batching window.
* :mod:`repro.service.client` — the thin synchronous :class:`Client` used by
  the examples, the smoke test, and the benchmark.
* :mod:`repro.service.fleet` / ``python -m repro.service --workers N`` —
  :class:`FleetFront`, a consistent-hash sharding front over N worker
  processes sharing one cache directory: warm-LRU affinity per artifact key,
  aggregated ``/healthz``, rolled-up ``/metrics``, draining restarts.
* :mod:`repro.service.telemetry` — counters and latency histograms surfaced
  on ``/metrics``.
* :mod:`repro.service.faults` — a process-wide fault-injection registry
  (``REPRO_FAULTS`` env / ``POST /fault`` behind ``--enable-faults``) with
  named fault sites threaded through the cache, scheduler, pool, server, and
  fleet, so the failure-hardening layers (deadlines, retries, shedding,
  circuit breakers) can be exercised deterministically.
* :mod:`repro.observability` — span-based distributed tracing threaded
  through every layer above (``X-Repro-Trace-Id`` propagation, ``GET
  /trace/<id>`` stitched across the fleet, slow-request logging) plus
  Prometheus text exposition on ``GET /metrics?format=prometheus``.

Quick start::

    $ PYTHONPATH=src python -m repro.service --port 8765 --cache-dir /tmp/repro-cache

    >>> from repro.service import Client
    >>> from repro.workloads.registry import get_benchmark
    >>> client = Client("127.0.0.1", 8765)
    >>> response = client.compile(get_benchmark("H2O").terms())
    >>> response.cache_hit, response.result.cx_count()
"""

from repro.service import faults
from repro.service.cache import ArtifactCache
from repro.service.client import Client, ServiceResponse, TemplateResponse
from repro.service.scheduler import (
    BatchingScheduler,
    CompileJob,
    execute_batch,
    execute_bind,
)
from repro.service.serialize import (
    WIRE_VERSION,
    bind_request_from_wire,
    bind_request_to_wire,
    circuit_from_wire,
    circuit_to_wire,
    parametric_program_from_wire,
    parametric_program_to_wire,
    pauli_from_wire,
    pauli_to_wire,
    program_from_wire,
    program_to_wire,
    result_from_wire,
    result_to_wire,
    sum_from_wire,
    sum_to_wire,
    tableau_from_wire,
    tableau_to_wire,
    template_from_wire,
    template_to_wire,
)
from repro.service.faults import FaultRegistry, FaultRule
from repro.service.fleet import CircuitBreaker, FleetFront, HashRing
from repro.service.server import ServiceServer, run_server_in_thread
from repro.service.telemetry import LatencyHistogram, Telemetry, merge_snapshots

__all__ = [
    "ArtifactCache",
    "BatchingScheduler",
    "CircuitBreaker",
    "Client",
    "CompileJob",
    "FaultRegistry",
    "FaultRule",
    "FleetFront",
    "HashRing",
    "faults",
    "LatencyHistogram",
    "merge_snapshots",
    "ServiceResponse",
    "ServiceServer",
    "Telemetry",
    "TemplateResponse",
    "WIRE_VERSION",
    "bind_request_from_wire",
    "bind_request_to_wire",
    "circuit_from_wire",
    "circuit_to_wire",
    "execute_batch",
    "execute_bind",
    "parametric_program_from_wire",
    "parametric_program_to_wire",
    "pauli_from_wire",
    "pauli_to_wire",
    "program_from_wire",
    "program_to_wire",
    "result_from_wire",
    "result_to_wire",
    "run_server_in_thread",
    "sum_from_wire",
    "sum_to_wire",
    "tableau_from_wire",
    "tableau_to_wire",
    "template_from_wire",
    "template_to_wire",
]
