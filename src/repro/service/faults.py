"""Process-wide fault-injection registry for the serving stack.

The service's failure handling — deadlines, retries, load shedding, the
fleet's circuit breakers — is only trustworthy if the failure paths can be
exercised deterministically.  This module provides the machinery: named
**fault sites** threaded through the hot paths of the cache, scheduler,
compile pool, server, and fleet front, each a single cheap call that is a
no-op unless the process has been explicitly armed.

Arming happens two ways:

* the ``REPRO_FAULTS`` environment variable, parsed at import time, using a
  compact grammar (see :func:`parse_spec`)::

      REPRO_FAULTS=cache.read:error:0.05,server.handle:delay:200ms

* a ``POST /fault`` debug request against a server started with
  ``--enable-faults``, which accepts the same grammar as a string or a list
  of JSON rule objects (supporting extras such as ``times`` caps).

Rule grammar: ``site:kind[:arg][:probability]`` where *kind* is one of

``error``
    raise :class:`~repro.exceptions.FaultInjectedError` at the site;
``delay``
    sleep for *arg* (a duration such as ``200ms``, ``1.5s``, or bare
    seconds) before continuing;
``corrupt``
    flip bytes in data flowing through the site (only honoured by sites
    that move payloads, e.g. ``cache.read``);
``kill``
    hard-kill the process via ``os._exit`` — the worker-crash fault.

*probability* defaults to 1.0.  ``delay`` takes both an argument and an
optional probability (``site:delay:200ms:0.5``); for the other kinds the
third field is the probability.

Determinism: the registry draws from its own :class:`random.Random` seeded
from ``REPRO_FAULTS_SEED`` when set, so chaos runs are reproducible.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
from dataclasses import dataclass, field

from repro.exceptions import FaultInjectedError

__all__ = [
    "FaultRule",
    "FaultRegistry",
    "REGISTRY",
    "parse_spec",
    "fire",
    "fire_async",
    "corrupt_bytes",
]

_KINDS = ("error", "delay", "corrupt", "kill")


def _parse_duration(text: str) -> float:
    """Parse ``200ms`` / ``1.5s`` / bare-seconds into float seconds."""
    text = text.strip().lower()
    try:
        if text.endswith("ms"):
            return float(text[:-2]) / 1000.0
        if text.endswith("s"):
            return float(text[:-1])
        return float(text)
    except ValueError:
        raise ValueError(f"unparseable duration in fault spec: {text!r}") from None


@dataclass
class FaultRule:
    """One armed fault: fire *kind* at *site* with the given probability.

    ``times`` bounds how often the rule trips (``None`` = unlimited);
    ``worker`` restricts a fleet-broadcast rule to one worker slot and is
    carried here only so the front can route it — workers receive the rule
    with ``worker`` already stripped.
    """

    site: str
    kind: str
    probability: float = 1.0
    delay_seconds: float = 0.0
    times: int | None = None
    worker: str | None = None
    trips: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if not self.site:
            raise ValueError("fault rule needs a non-empty site")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability out of range: {self.probability}")

    def to_dict(self) -> dict:
        out = {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
        }
        if self.kind == "delay":
            out["delay_ms"] = self.delay_seconds * 1000.0
        if self.times is not None:
            out["times"] = self.times
        if self.worker is not None:
            out["worker"] = self.worker
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be an object, got {type(data).__name__}")
        known = {"site", "kind", "probability", "delay_ms", "delay", "times", "worker"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault rule fields: {sorted(unknown)}")
        delay_seconds = 0.0
        if "delay_ms" in data:
            delay_seconds = float(data["delay_ms"]) / 1000.0
        elif "delay" in data:
            delay_seconds = _parse_duration(str(data["delay"]))
        times = data.get("times")
        if times is not None:
            times = int(times)
            if times < 1:
                raise ValueError(f"fault rule 'times' must be >= 1, got {times}")
        return cls(
            site=str(data.get("site", "")),
            kind=str(data.get("kind", "")),
            probability=float(data.get("probability", 1.0)),
            delay_seconds=delay_seconds,
            times=times,
            worker=data.get("worker"),
        )


def parse_spec(spec: str) -> list[FaultRule]:
    """Parse a comma-separated ``site:kind[:arg][:prob]`` spec string."""
    rules: list[FaultRule] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ValueError(f"fault spec entry needs site:kind, got {chunk!r}")
        site, kind = parts[0].strip(), parts[1].strip().lower()
        probability = 1.0
        delay_seconds = 0.0
        if kind == "delay":
            if len(parts) < 3:
                raise ValueError(f"delay fault needs a duration: {chunk!r}")
            delay_seconds = _parse_duration(parts[2])
            if len(parts) > 3:
                probability = float(parts[3])
        elif len(parts) > 2:
            probability = float(parts[2])
        rules.append(
            FaultRule(
                site=site,
                kind=kind,
                probability=probability,
                delay_seconds=delay_seconds,
            )
        )
    return rules


class FaultRegistry:
    """Thread-safe store of armed :class:`FaultRule` objects.

    ``armed`` is a plain bool read without the lock: when no rules exist
    (the production case) every fault site costs one attribute load and a
    falsy check, nothing more.
    """

    def __init__(self, seed: int | None = None):
        self._lock = threading.Lock()
        self._rules: list[FaultRule] = []
        self._rng = random.Random(seed)
        self.armed = False
        # Indirection so tests can observe kill faults without dying.
        self._exit = os._exit

    def configure(self, spec: str) -> list[FaultRule]:
        """Replace all rules with the parsed *spec* (empty string clears)."""
        rules = parse_spec(spec)
        with self._lock:
            self._rules = rules
            self.armed = bool(rules)
        return rules

    def add(self, rule: FaultRule) -> None:
        with self._lock:
            self._rules.append(rule)
            self.armed = True

    def clear(self) -> None:
        with self._lock:
            self._rules = []
            self.armed = False

    def active(self) -> list[FaultRule]:
        with self._lock:
            return list(self._rules)

    def reseed(self, seed: int | None) -> None:
        with self._lock:
            self._rng = random.Random(seed)

    def _draw(self, site: str, kinds: tuple[str, ...]) -> FaultRule | None:
        """Pick the first matching rule that trips, honouring ``times`` caps."""
        with self._lock:
            for rule in self._rules:
                if rule.site != site or rule.kind not in kinds:
                    continue
                if rule.times is not None and rule.trips >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.trips += 1
                return rule
        return None

    def fire(self, site: str) -> None:
        """Synchronous fault point: may sleep, raise, or kill the process."""
        if not self.armed:
            return
        rule = self._draw(site, ("delay", "error", "kill"))
        if rule is None:
            return
        if rule.kind == "delay":
            time.sleep(rule.delay_seconds)
        elif rule.kind == "error":
            raise FaultInjectedError(f"injected fault at {site}")
        elif rule.kind == "kill":
            self._exit(1)

    async def fire_async(self, site: str) -> None:
        """Async fault point: like :meth:`fire` but awaits delays."""
        if not self.armed:
            return
        rule = self._draw(site, ("delay", "error", "kill"))
        if rule is None:
            return
        if rule.kind == "delay":
            await asyncio.sleep(rule.delay_seconds)
        elif rule.kind == "error":
            raise FaultInjectedError(f"injected fault at {site}")
        elif rule.kind == "kill":
            self._exit(1)

    def corrupt_bytes(self, site: str, data: bytes) -> bytes:
        """Apply a matching ``corrupt`` rule to *data*, if any.

        Corruption is representative of real disk rot: either the payload is
        truncated or a byte in the middle is flipped.
        """
        if not self.armed or not data:
            return data
        rule = self._draw(site, ("corrupt",))
        if rule is None:
            return data
        with self._lock:
            if self._rng.random() < 0.5 and len(data) > 1:
                return data[: len(data) // 2]
            index = self._rng.randrange(len(data))
        flipped = data[index] ^ 0xFF
        return data[:index] + bytes([flipped]) + data[index + 1 :]


def _registry_from_env() -> FaultRegistry:
    seed_text = os.environ.get("REPRO_FAULTS_SEED")
    seed = int(seed_text) if seed_text else None
    registry = FaultRegistry(seed=seed)
    spec = os.environ.get("REPRO_FAULTS", "")
    if spec:
        registry.configure(spec)
    return registry


#: The process-wide registry every fault site consults.
REGISTRY = _registry_from_env()


def fire(site: str) -> None:
    """Module-level shorthand for ``REGISTRY.fire(site)``."""
    REGISTRY.fire(site)


async def fire_async(site: str) -> None:
    """Module-level shorthand for ``REGISTRY.fire_async(site)``."""
    await REGISTRY.fire_async(site)


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Module-level shorthand for ``REGISTRY.corrupt_bytes(site, data)``."""
    return REGISTRY.corrupt_bytes(site, data)
