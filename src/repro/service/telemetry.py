"""Counters and latency histograms for the compilation service.

One :class:`Telemetry` instance rides along the whole service stack — the
scheduler ticks per-stage timers, the cache ticks hit/miss counters, the
server ticks request counters — and ``GET /metrics`` (plus the benchmark's
``service`` block) reads :meth:`Telemetry.snapshot`.

Everything is stdlib + thread-safe: scheduler batches execute on worker
threads while the asyncio loop serves ``/metrics`` concurrently.
"""

from __future__ import annotations

import bisect
import threading
import time

#: default latency bucket upper bounds, in seconds (log-ish spacing from
#: 1 microsecond to 10 s; the trailing +inf bucket is implicit).  The
#: sub-millisecond decades exist for the parametric bind path, whose
#: latencies are single- to hundreds of microseconds — without them every
#: ``service.bind_seconds`` observation would collapse into one bucket and
#: ``/metrics`` quantiles would be meaningless for the endpoint.
DEFAULT_BUCKETS = (
    0.000001,
    0.0000025,
    0.000005,
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (count / sum / min / max / buckets)."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        self.counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, fraction: float) -> float:
        """Upper bucket bound below which ``fraction`` of observations fall.

        A coarse estimate (bucket resolution), good enough for dashboards;
        returns 0.0 with no observations and the max for the +inf bucket.
        """
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def snapshot(self) -> dict:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum_seconds": self.total,
            "mean_seconds": mean,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "p50_seconds": self.quantile(0.5),
            "p99_seconds": self.quantile(0.99),
            # raw per-bucket counts so fleet fronts can merge histograms
            # exactly and Prometheus exposition can emit real ``le`` buckets
            "buckets": {
                "bounds": list(self.buckets),
                "counts": list(self.counts),
            },
        }


def quantile_from_counts(
    bounds: "list[float]",
    counts: "list[int]",
    fraction: float,
    maximum: float,
) -> float:
    """:meth:`LatencyHistogram.quantile`, but over raw merged bucket counts."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = fraction * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target:
            if index < len(bounds):
                return bounds[index]
            return maximum
    return maximum


class Telemetry:
    """Thread-safe named counters plus named latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    def timed(self, name: str) -> "_Timer":
        """``with telemetry.timed("compile"): ...`` records one observation."""
        return _Timer(self, name)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """One JSON-safe dict of every counter and histogram."""
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started_at,
                "counters": dict(sorted(self._counters.items())),
                "latency": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Roll worker :meth:`Telemetry.snapshot` payloads up into one view.

    Counters sum; histogram count/sum/min/max merge exactly (the mean is
    recomputed).  When every payload carries raw ``buckets`` counts over the
    same bounds the per-bucket counts are summed and p50/p99 are recomputed
    from the merged histogram — the exact fleet-wide quantile at bucket
    resolution.  Payloads without bucket data (or with mismatched bounds)
    fall back to the conservative max of per-worker quantiles.  Uptime
    reports the oldest worker's.
    """
    counters: dict[str, int] = {}
    latency: dict[str, dict] = {}
    uptime = 0.0
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        uptime = max(uptime, float(snapshot.get("uptime_seconds", 0.0)))
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, stats in (snapshot.get("latency") or {}).items():
            merged = latency.get(name)
            if merged is None:
                latency[name] = dict(stats)
                buckets = stats.get("buckets")
                if isinstance(buckets, dict):
                    latency[name]["buckets"] = {
                        "bounds": list(buckets.get("bounds") or []),
                        "counts": list(buckets.get("counts") or []),
                    }
                continue
            count = merged["count"] + stats["count"]
            total = merged["sum_seconds"] + stats["sum_seconds"]
            max_seconds = max(merged["max_seconds"], stats["max_seconds"])
            merged_buckets = merged.get("buckets")
            stats_buckets = stats.get("buckets")
            if (
                isinstance(merged_buckets, dict)
                and isinstance(stats_buckets, dict)
                and merged_buckets.get("bounds") == stats_buckets.get("bounds")
                and len(merged_buckets.get("counts") or [])
                == len(stats_buckets.get("counts") or [])
            ):
                bounds = list(merged_buckets["bounds"])
                bucket_counts = [
                    a + b
                    for a, b in zip(merged_buckets["counts"], stats_buckets["counts"])
                ]
                merged["buckets"] = {"bounds": bounds, "counts": bucket_counts}
                p50 = quantile_from_counts(bounds, bucket_counts, 0.5, max_seconds)
                p99 = quantile_from_counts(bounds, bucket_counts, 0.99, max_seconds)
            else:
                # heterogeneous payloads: keep the pre-PR-10 conservative max
                merged.pop("buckets", None)
                p50 = max(merged["p50_seconds"], stats["p50_seconds"])
                p99 = max(merged["p99_seconds"], stats["p99_seconds"])
            merged.update(
                count=count,
                sum_seconds=total,
                mean_seconds=total / count if count else 0.0,
                min_seconds=(
                    min(merged["min_seconds"], stats["min_seconds"])
                    if merged["count"] and stats["count"]
                    else merged["min_seconds"] or stats["min_seconds"]
                ),
                max_seconds=max_seconds,
                p50_seconds=p50,
                p99_seconds=p99,
            )
    return {
        "uptime_seconds": uptime,
        "counters": dict(sorted(counters.items())),
        "latency": dict(sorted(latency.items())),
    }


class _Timer:
    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: Telemetry, name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry.observe(self._name, time.perf_counter() - self._start)
