"""Thin synchronous HTTP client for the compilation service.

Wraps :mod:`http.client` (stdlib) around the wire format: programs are
serialized with :func:`~repro.service.serialize.program_to_wire`, responses
deserialized back into :class:`~repro.compiler.result.CompilationResult`.
One :class:`Client` holds one keep-alive connection and is **not**
thread-safe — give each thread its own instance (they are cheap).

Reliability knobs (all default off, preserving the old flat-timeout
behavior):

* ``retries`` — transparent re-sends of a failed request, with exponential
  backoff and *full jitter* (each pause is uniform over ``[0, cap]``, so a
  thundering herd of retrying clients decorrelates).  Transport failures and
  5xx responses retry; 4xx never does.  POSTs are not idempotent, so every
  retried POST carries an ``X-Repro-Request-Id`` the server deduplicates on
  — a retry after a lost response replays the original answer instead of
  compiling (or deleting) twice.
* ``deadline`` — a per-request latency budget in seconds, shipped as the
  ``X-Repro-Deadline`` header (a relative budget, not a wall-clock
  timestamp, so client and server clocks never need to agree).  The serving
  stack abandons work past the budget and answers 504.
* ``trace`` — mint one ``X-Repro-Trace-Id`` per logical request (retries of
  a request reuse its id, so a failed attempt and its successful retry land
  in one trace) and force head sampling with ``X-Repro-Trace: 1``.  The last
  minted id is kept on :attr:`Client.last_trace_id`; fetch the assembled
  trace with :meth:`Client.trace`.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from dataclasses import dataclass
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.exceptions import ServiceError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.service.serialize import (
    bind_request_to_wire,
    parametric_program_to_wire,
    program_to_wire,
    result_from_wire,
    template_from_wire,
)


@dataclass
class ServiceResponse:
    """One compile response: the artifact key, hit flag, and the result."""

    key: str | None
    cache_hit: bool
    result: CompilationResult | None
    metrics: dict | None = None
    compiler: str | None = None


@dataclass
class TemplateResponse:
    """One ``POST /compile_template`` response.

    ``template`` is populated only when the request asked for the wire
    payload (``include_template=True``); binding by ``template_key`` is the
    normal serving flow.
    """

    template_key: str | None
    cache_hit: bool
    name: str | None = None
    level: int | None = None
    num_qubits: int | None = None
    num_terms: int | None = None
    num_params: int | None = None
    skeleton_gates: int | None = None
    template: "object | None" = None


#: response statuses worth retrying: server-side failures and shed load —
#: never 4xx, which would fail identically on every attempt
_RETRY_STATUSES = frozenset({500, 502, 503, 504})


class Client:
    """Synchronous client for one ``repro.service`` server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 120.0,
        retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
        deadline: float | None = None,
        trace: bool = False,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.deadline = None if deadline is None else float(deadline)
        #: when on, every request mints a trace id and forces head sampling
        self.trace_requests = bool(trace)
        #: the trace id minted for the most recent traced request
        self.last_trace_id: "str | None" = None
        #: observable count of re-sent requests (all calls, cumulative)
        self.retries_performed = 0
        self._rng = random.Random()
        self._connection: "http.client.HTTPConnection | None" = None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        traced: bool = True,
    ) -> dict:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body is not None else {}
        if self.deadline is not None:
            headers["X-Repro-Deadline"] = f"{self.deadline:g}"
        if method == "POST" and self.retries:
            # a retried POST is only safe because the server deduplicates on
            # this id — a retry after a lost response replays the original
            # answer instead of redoing non-idempotent work
            headers["X-Repro-Request-Id"] = uuid.uuid4().hex
        if self.trace_requests and traced:
            # one trace id per logical request: retries reuse it, so a failed
            # attempt's spans and the surviving retry's stitch into one trace
            # (introspection calls like trace()/traces() pass traced=False so
            # they neither clobber last_trace_id nor trace themselves)
            self.last_trace_id = uuid.uuid4().hex
            headers["X-Repro-Trace-Id"] = self.last_trace_id
            headers["X-Repro-Trace"] = "1"
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            retry_after: float | None = None
            try:
                return self._exchange(method, path, body, headers)
            except ServiceError as error:
                if error.status is not None and error.status not in _RETRY_STATUSES:
                    raise
                if attempt >= self.retries:
                    raise
                last_error = error
                retry_after = error.retry_after
            except (http.client.HTTPException, ConnectionError, OSError):
                if attempt >= self.retries:
                    raise
            self.retries_performed += 1
            # exponential cap with full jitter, floored by the server's own
            # Retry-After hint when it sent one
            cap = min(self.max_backoff, self.backoff * (2.0 ** attempt))
            pause = self._rng.uniform(0.0, max(0.0, cap))
            if retry_after:
                pause = max(pause, retry_after)
            if pause > 0:
                time.sleep(pause)
        raise last_error if last_error is not None else ServiceError(
            f"{method} {path} failed after {self.retries + 1} attempts"
        )

    def _exchange(self, method: str, path: str, body, headers: dict) -> dict:
        """One request/response exchange, with one free keep-alive reconnect."""
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=body, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # a dropped keep-alive connection: reconnect once
                self.close()
                if attempt:
                    raise
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        retry_after: float | None = None
        retry_after_text = response.getheader("Retry-After")
        if retry_after_text:
            try:
                retry_after = float(retry_after_text)
            except ValueError:
                retry_after = None
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"{method} {path} returned undecodable body (status {response.status})",
                status=response.status,
                retry_after=retry_after,
            ) from error
        if response.status != 200:
            message = decoded.get("error", raw.decode("utf-8", "replace"))
            kind = decoded.get("type")
            if kind:
                message = f"{message} [{kind}]"
            raise ServiceError(
                f"{method} {path} failed with {response.status}: {message}",
                status=response.status,
                retry_after=retry_after,
            )
        return decoded

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_entry(entry: dict) -> ServiceResponse:
        if "error" in entry:
            raise ServiceError(f"compile failed: {entry['error']} ({entry.get('type')})")
        wire = entry.get("result")
        return ServiceResponse(
            key=entry.get("key"),
            cache_hit=bool(entry.get("cache_hit", False)),
            result=None if wire is None else result_from_wire(wire),
            metrics=entry.get("metrics"),
            compiler=entry.get("compiler"),
        )

    def compile(
        self,
        program: "Sequence[PauliTerm] | SparsePauliSum",
        target: str | None = None,
        level: int = 3,
        pipeline: str | None = None,
        use_cache: bool = True,
        include_result: bool = True,
    ) -> ServiceResponse:
        """Compile one program on the server (``POST /compile``)."""
        payload = {
            "program": program_to_wire(program),
            "target": target,
            "level": level,
            "pipeline": pipeline,
            "use_cache": use_cache,
            "include_result": include_result,
        }
        return self._parse_entry(self._request("POST", "/compile", payload))

    def compile_batch(
        self,
        programs: "Sequence[Sequence[PauliTerm] | SparsePauliSum]",
        target: str | None = None,
        level: int = 3,
        pipeline: str | None = None,
        use_cache: bool = True,
        include_result: bool = True,
    ) -> list[ServiceResponse]:
        """Compile a batch in one request (``POST /compile_batch``)."""
        payload = {
            "programs": [program_to_wire(program) for program in programs],
            "target": target,
            "level": level,
            "pipeline": pipeline,
            "use_cache": use_cache,
            "include_result": include_result,
        }
        decoded = self._request("POST", "/compile_batch", payload)
        return [self._parse_entry(entry) for entry in decoded.get("results", [])]

    def compile_template(
        self,
        program,
        target: str | None = None,
        level: int = 3,
        use_cache: bool = True,
        include_template: bool = False,
    ) -> TemplateResponse:
        """Trace a parametric program once (``POST /compile_template``).

        The returned ``template_key`` is the handle for subsequent
        :meth:`bind` calls; it keys on ansatz structure alone, so every
        binding of the ansatz — and every re-submission of the same program —
        resolves to one stored template.
        """
        payload = {
            "program": parametric_program_to_wire(program),
            "target": target,
            "level": level,
            "use_cache": use_cache,
            "include_template": include_template,
        }
        decoded = self._request("POST", "/compile_template", payload)
        wire = decoded.get("template")
        return TemplateResponse(
            template_key=decoded.get("template_key"),
            cache_hit=bool(decoded.get("cache_hit", False)),
            name=decoded.get("name"),
            level=decoded.get("level"),
            num_qubits=decoded.get("num_qubits"),
            num_terms=decoded.get("num_terms"),
            num_params=decoded.get("num_params"),
            skeleton_gates=decoded.get("skeleton_gates"),
            template=None if wire is None else template_from_wire(wire),
        )

    def bind(
        self,
        params: Sequence[float],
        template_key: str | None = None,
        template=None,
        include_result: bool = True,
    ) -> ServiceResponse:
        """Bind concrete angles against a compiled template (``POST /bind``).

        Name the template by ``template_key`` (the server's cached copy,
        the fast path) or ship a :class:`~repro.parametric.CompiledTemplate`
        inline.  The response's ``key`` field carries the template key back.
        """
        payload = bind_request_to_wire(
            params, template_key=template_key, template=template
        )
        payload["include_result"] = include_result
        decoded = self._request("POST", "/bind", payload)
        wire = decoded.get("result")
        return ServiceResponse(
            key=decoded.get("template_key"),
            cache_hit=bool(decoded.get("cache_hit", False)),
            result=None if wire is None else result_from_wire(wire),
            metrics=decoded.get("metrics"),
            compiler=decoded.get("compiler"),
        )

    def delete_result(self, key: str) -> bool:
        """Evict a cached artifact (``DELETE /result/<key>``); False on 404."""
        try:
            self._request("DELETE", f"/result/{key}")
        except ServiceError as error:
            if error.status == 404:
                return False
            raise
        return True

    def result(self, key: str) -> CompilationResult | None:
        """Fetch a cached artifact by key; ``None`` when not stored."""
        try:
            decoded = self._request("GET", f"/result/{key}")
        except ServiceError as error:
            if error.status == 404:
                return None
            raise
        return result_from_wire(decoded["result"])

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """Fetch ``GET /metrics?format=prometheus`` as raw exposition text.

        Separate from :meth:`metrics` because the Prometheus format is plain
        text, not JSON — the normal exchange path would reject it.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"GET /metrics?format=prometheus failed with {response.status}",
                    status=response.status,
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    def trace(self, trace_id: str | None = None) -> dict | None:
        """Fetch one assembled trace (``GET /trace/<id>``); ``None`` on 404.

        Defaults to :attr:`last_trace_id` — the id minted for the most
        recent request sent with ``trace=True``.
        """
        trace_id = trace_id or self.last_trace_id
        if not trace_id:
            raise ValueError("no trace id: pass one or send a traced request first")
        try:
            return self._request("GET", f"/trace/{trace_id}", traced=False)
        except ServiceError as error:
            if error.status == 404:
                return None
            raise

    def traces(self, limit: int | None = None) -> list[dict]:
        """List recent trace summaries (``GET /traces?limit=N``)."""
        path = "/traces" if limit is None else f"/traces?limit={int(limit)}"
        return self._request("GET", path, traced=False).get("traces", [])
