"""Thin synchronous HTTP client for the compilation service.

Wraps :mod:`http.client` (stdlib) around the wire format: programs are
serialized with :func:`~repro.service.serialize.program_to_wire`, responses
deserialized back into :class:`~repro.compiler.result.CompilationResult`.
One :class:`Client` holds one keep-alive connection and is **not**
thread-safe — give each thread its own instance (they are cheap).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.exceptions import ServiceError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.service.serialize import program_to_wire, result_from_wire


@dataclass
class ServiceResponse:
    """One compile response: the artifact key, hit flag, and the result."""

    key: str | None
    cache_hit: bool
    result: CompilationResult | None
    metrics: dict | None = None
    compiler: str | None = None


class Client:
    """Synchronous client for one ``repro.service`` server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 120.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: "http.client.HTTPConnection | None" = None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body is not None else {}
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=body, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # a dropped keep-alive connection: reconnect once
                self.close()
                if attempt:
                    raise
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"{method} {path} returned undecodable body (status {response.status})",
                status=response.status,
            ) from error
        if response.status != 200:
            message = decoded.get("error", raw.decode("utf-8", "replace"))
            kind = decoded.get("type")
            if kind:
                message = f"{message} [{kind}]"
            raise ServiceError(
                f"{method} {path} failed with {response.status}: {message}",
                status=response.status,
            )
        return decoded

    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_entry(entry: dict) -> ServiceResponse:
        if "error" in entry:
            raise ServiceError(f"compile failed: {entry['error']} ({entry.get('type')})")
        wire = entry.get("result")
        return ServiceResponse(
            key=entry.get("key"),
            cache_hit=bool(entry.get("cache_hit", False)),
            result=None if wire is None else result_from_wire(wire),
            metrics=entry.get("metrics"),
            compiler=entry.get("compiler"),
        )

    def compile(
        self,
        program: "Sequence[PauliTerm] | SparsePauliSum",
        target: str | None = None,
        level: int = 3,
        pipeline: str | None = None,
        use_cache: bool = True,
        include_result: bool = True,
    ) -> ServiceResponse:
        """Compile one program on the server (``POST /compile``)."""
        payload = {
            "program": program_to_wire(program),
            "target": target,
            "level": level,
            "pipeline": pipeline,
            "use_cache": use_cache,
            "include_result": include_result,
        }
        return self._parse_entry(self._request("POST", "/compile", payload))

    def compile_batch(
        self,
        programs: "Sequence[Sequence[PauliTerm] | SparsePauliSum]",
        target: str | None = None,
        level: int = 3,
        pipeline: str | None = None,
        use_cache: bool = True,
        include_result: bool = True,
    ) -> list[ServiceResponse]:
        """Compile a batch in one request (``POST /compile_batch``)."""
        payload = {
            "programs": [program_to_wire(program) for program in programs],
            "target": target,
            "level": level,
            "pipeline": pipeline,
            "use_cache": use_cache,
            "include_result": include_result,
        }
        decoded = self._request("POST", "/compile_batch", payload)
        return [self._parse_entry(entry) for entry in decoded.get("results", [])]

    def result(self, key: str) -> CompilationResult | None:
        """Fetch a cached artifact by key; ``None`` when not stored."""
        try:
            decoded = self._request("GET", f"/result/{key}")
        except ServiceError as error:
            if error.status == 404:
                return None
            raise
        return result_from_wire(decoded["result"])

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")
