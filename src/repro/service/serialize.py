"""Compact versioned wire format for programs, circuits, and compile results.

Every payload is a JSON-safe ``dict`` tagged with a ``"format"`` string of the
shape ``"repro.<kind>/v<version>"``; :func:`check_format` rejects anything
else with a :class:`~repro.exceptions.WireFormatError`, so a future format
bump degrades into a clear error instead of silent misparsing.

Bit-exactness is the design constraint, not prettiness:

* Pauli programs (:class:`~repro.paulis.sum.SparsePauliSum` or term lists)
  travel as base64 of their **packed** ``uint64`` word matrices plus the raw
  ``float64`` coefficient vector — the store the whole compiler operates on,
  with no per-term repacking on either side.  ``deserialize(serialize(x))``
  reproduces the packed words, phases and coefficients byte-for-byte.
* Circuits travel through the existing OpenQASM path
  (:func:`repro.circuits.qasm.to_qasm` / ``from_qasm``); float parameters are
  emitted with ``repr`` and parsed with ``float``, which round-trips every
  IEEE-754 double exactly.
* Clifford tableaus travel as their packed generator rows.
* Whole :class:`~repro.compiler.result.CompilationResult` objects round-trip
  through :func:`result_to_wire` / :func:`result_from_wire` — circuit,
  extracted tail, conjugation tableau, metadata and pass timings included.
  (Python's ``json`` emits floats with ``repr``, so timing floats survive a
  JSON round-trip bit-exactly too.)

Arrays are encoded with explicit little-endian dtypes so payloads are
portable across hosts.
"""

from __future__ import annotations

import base64
from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.clifford.tableau import CliffordTableau
from repro.compiler.context import PropertySet
from repro.compiler.result import CompilationResult
from repro.core.extraction import ExtractionResult
from repro.exceptions import WireFormatError
from repro.paulis.packed import PackedPauliTable, words_for_qubits
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

#: wire-format version shared by every payload kind
WIRE_VERSION = 1

PROGRAM_FORMAT = f"repro.program/v{WIRE_VERSION}"
PAULI_FORMAT = f"repro.pauli/v{WIRE_VERSION}"
CIRCUIT_FORMAT = f"repro.circuit/v{WIRE_VERSION}"
TABLEAU_FORMAT = f"repro.tableau/v{WIRE_VERSION}"
RESULT_FORMAT = f"repro.result/v{WIRE_VERSION}"
PARAMETRIC_FORMAT = f"repro.parametric/v{WIRE_VERSION}"


def check_format(payload: dict, expected: str) -> None:
    """Reject payloads that are not dicts tagged with ``expected``."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"expected a {expected!r} payload, got {type(payload).__name__}"
        )
    tag = payload.get("format")
    if tag != expected:
        raise WireFormatError(f"expected format {expected!r}, got {tag!r}")


def _field(payload: dict, key: str, kind: str):
    """A required payload field, as a :class:`WireFormatError` on absence.

    Every structural lookup in the decoders goes through here so that a
    truncated or hand-built payload degrades into the one exception type the
    cache's drop-and-recompile recovery handles, never a bare ``KeyError``.
    """
    try:
        return payload[key]
    except (KeyError, TypeError) as error:
        raise WireFormatError(f"{kind} payload lacks required field {key!r}") from error


# ---------------------------------------------------------------------- #
# Array encoding
# ---------------------------------------------------------------------- #
def encode_array(array: np.ndarray, dtype: str) -> dict:
    """Base64 of ``array`` in explicit little-endian ``dtype``, with shape."""
    contiguous = np.ascontiguousarray(array, dtype=np.dtype(dtype))
    return {
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict, dtype: str) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        shape = tuple(int(axis) for axis in _field(payload, "shape", "array"))
        raw = base64.b64decode(
            _field(payload, "data", "array").encode("ascii"), validate=True
        )
    except (TypeError, ValueError, AttributeError) as error:
        raise WireFormatError(f"malformed array payload: {error}") from error
    spec = np.dtype(dtype)
    expected = spec.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else spec.itemsize
    if len(raw) != expected:
        raise WireFormatError(
            f"array payload holds {len(raw)} bytes, shape {shape} needs {expected}"
        )
    return np.frombuffer(raw, dtype=spec).reshape(shape).copy()


def _packed_table_fields(table: PackedPauliTable) -> dict:
    # the wire format is host bytes regardless of which array backend the
    # table lives on (encode_array only understands numpy arrays)
    be = table.backend
    return {
        "num_qubits": table.num_qubits,
        "x_words": encode_array(be.to_numpy(table.x_words), "<u8"),
        "z_words": encode_array(be.to_numpy(table.z_words), "<u8"),
        "phases": encode_array(be.to_numpy(table.phases), "<i8"),
    }


def _packed_table_from_fields(payload: dict) -> PackedPauliTable:
    try:
        num_qubits = int(_field(payload, "num_qubits", "packed-table"))
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"malformed packed-table payload: {error}") from error
    x_words = decode_array(_field(payload, "x_words", "packed-table"), "<u8")
    z_words = decode_array(_field(payload, "z_words", "packed-table"), "<u8")
    phases = decode_array(_field(payload, "phases", "packed-table"), "<i8")
    words = words_for_qubits(num_qubits)
    if x_words.ndim != 2 or x_words.shape[1] != words or x_words.shape != z_words.shape:
        raise WireFormatError(
            f"packed words {x_words.shape}/{z_words.shape} do not fit "
            f"{num_qubits} qubits ({words} words per row)"
        )
    return PackedPauliTable(num_qubits, x_words, z_words, phases)


# ---------------------------------------------------------------------- #
# Pauli strings and programs
# ---------------------------------------------------------------------- #
def pauli_to_wire(pauli: PauliString) -> dict:
    """One Pauli string as packed words plus its phase exponent."""
    return {
        "format": PAULI_FORMAT,
        "num_qubits": pauli.num_qubits,
        "x_words": encode_array(pauli.x_words, "<u8"),
        "z_words": encode_array(pauli.z_words, "<u8"),
        "phase": int(pauli.phase),
    }


def pauli_from_wire(payload: dict) -> PauliString:
    check_format(payload, PAULI_FORMAT)
    num_qubits = int(_field(payload, "num_qubits", "Pauli"))
    x_words = decode_array(_field(payload, "x_words", "Pauli"), "<u8")
    z_words = decode_array(_field(payload, "z_words", "Pauli"), "<u8")
    try:
        return PauliString.from_words(
            num_qubits, x_words, z_words, int(_field(payload, "phase", "Pauli"))
        )
    except Exception as error:
        raise WireFormatError(f"malformed Pauli payload: {error}") from error


def program_to_wire(program: Sequence[PauliTerm] | SparsePauliSum) -> dict:
    """A whole Pauli-rotation program (or observable sum) in one payload.

    A :class:`SparsePauliSum` ships its canonical packed store directly; a
    term list is packed once here (the same one-time cost
    :func:`repro.compile` pays).  ``kind`` records which container to
    rebuild, so ``program_from_wire`` hands the compiler exactly the shape
    the client submitted.
    """
    if isinstance(program, SparsePauliSum):
        kind = "sum"
        table = program.packed_table
        coefficients = program.coefficient_vector()
    else:
        term_list = list(program)
        if not term_list:
            raise WireFormatError("cannot serialize an empty program")
        kind = "terms"
        table = PackedPauliTable.from_paulis(term.pauli for term in term_list)
        coefficients = np.array([term.coefficient for term in term_list], dtype=float)
    payload = {"format": PROGRAM_FORMAT, "kind": kind}
    payload.update(_packed_table_fields(table))
    payload["coefficients"] = encode_array(coefficients, "<f8")
    return payload


def program_from_wire(payload: dict) -> list[PauliTerm] | SparsePauliSum:
    check_format(payload, PROGRAM_FORMAT)
    kind = payload.get("kind")
    table = _packed_table_from_fields(payload)
    coefficients = decode_array(_field(payload, "coefficients", "program"), "<f8")
    if coefficients.shape != (table.num_rows,):
        raise WireFormatError(
            f"{coefficients.shape[0] if coefficients.ndim else 0} coefficients "
            f"for {table.num_rows} packed rows"
        )
    if kind == "sum":
        try:
            return SparsePauliSum.from_packed(table, coefficients)
        except Exception as error:
            raise WireFormatError(f"malformed sum payload: {error}") from error
    if kind == "terms":
        return [
            PauliTerm(table.row(index), float(coefficients[index]))
            for index in range(table.num_rows)
        ]
    raise WireFormatError(f"unknown program kind {kind!r}")


def sum_to_wire(observable: SparsePauliSum) -> dict:
    """Alias of :func:`program_to_wire` restricted to sums."""
    if not isinstance(observable, SparsePauliSum):
        raise WireFormatError(f"expected a SparsePauliSum, got {type(observable).__name__}")
    return program_to_wire(observable)


def sum_from_wire(payload: dict) -> SparsePauliSum:
    restored = program_from_wire(payload)
    if not isinstance(restored, SparsePauliSum):
        raise WireFormatError("payload holds a term-list program, not a sum")
    return restored


# ---------------------------------------------------------------------- #
# Circuits and tableaus
# ---------------------------------------------------------------------- #
def circuit_to_wire(circuit: QuantumCircuit) -> dict:
    """A circuit as its OpenQASM 2.0 text (the platform-independent path)."""
    return {
        "format": CIRCUIT_FORMAT,
        "num_qubits": circuit.num_qubits,
        "qasm": to_qasm(circuit),
    }


def circuit_from_wire(payload: dict) -> QuantumCircuit:
    check_format(payload, CIRCUIT_FORMAT)
    try:
        circuit = from_qasm(_field(payload, "qasm", "circuit"))
    except TypeError as error:
        raise WireFormatError(f"malformed circuit payload: {error}") from error
    declared = int(payload.get("num_qubits", circuit.num_qubits))
    if circuit.num_qubits != declared:
        raise WireFormatError(
            f"circuit payload declares {declared} qubits but its QASM "
            f"register holds {circuit.num_qubits}"
        )
    return circuit


def tableau_to_wire(tableau: CliffordTableau) -> dict:
    """A Clifford tableau as its ``2n`` packed generator-image rows."""
    payload = {"format": TABLEAU_FORMAT}
    payload.update(_packed_table_fields(tableau.packed_rows()))
    return payload


def tableau_from_wire(payload: dict) -> CliffordTableau:
    check_format(payload, TABLEAU_FORMAT)
    rows = _packed_table_from_fields(payload)
    try:
        return CliffordTableau.from_packed_rows(rows)
    except Exception as error:
        raise WireFormatError(f"malformed tableau payload: {error}") from error


# ---------------------------------------------------------------------- #
# Compilation results
# ---------------------------------------------------------------------- #
def _optional(value, to_wire):
    return None if value is None else to_wire(value)


def result_to_wire(result: CompilationResult) -> dict:
    """A :class:`CompilationResult` as one JSON-safe payload.

    The extraction block deduplicates against the top-level circuits: on the
    unrouted presets ``extraction.optimized_circuit`` *is* ``result.circuit``
    (and the two extracted tails match), so those are stored once and marked
    with a reference instead of serializing ~half the payload twice.
    ``properties`` are deliberately not shipped — they hold process-local
    machinery (conjugation caches, lazy absorbers) that the receiving side
    rebuilds on demand.
    """
    payload = {
        "format": RESULT_FORMAT,
        "name": result.name,
        "compile_seconds": float(result.compile_seconds),
        "metadata": result.metadata,
        "circuit": circuit_to_wire(result.circuit),
        "extracted_clifford": _optional(result.extracted_clifford, circuit_to_wire),
        "extraction": None,
    }
    extraction = result.extraction
    if extraction is not None:
        if extraction.optimized_circuit == result.circuit:
            optimized = {"same_as": "circuit"}
        else:
            optimized = circuit_to_wire(extraction.optimized_circuit)
        if (
            result.extracted_clifford is not None
            and extraction.extracted_clifford == result.extracted_clifford
        ):
            tail = {"same_as": "extracted_clifford"}
        else:
            tail = circuit_to_wire(extraction.extracted_clifford)
        payload["extraction"] = {
            "optimized_circuit": optimized,
            "extracted_clifford": tail,
            "conjugation": tableau_to_wire(extraction.conjugation),
            "terms": program_to_wire(extraction.terms) if extraction.terms else None,
            "rotation_count": int(extraction.rotation_count),
            "elapsed_seconds": float(extraction.elapsed_seconds),
            "metadata": extraction.metadata,
        }
    return payload


def _circuit_or_reference(payload: dict, references: dict) -> QuantumCircuit:
    if isinstance(payload, dict) and "same_as" in payload:
        name = payload["same_as"]
        resolved = references.get(name)
        if resolved is None:
            raise WireFormatError(f"extraction payload references unknown circuit {name!r}")
        return resolved
    return circuit_from_wire(payload)


def result_from_wire(payload: dict) -> CompilationResult:
    check_format(payload, RESULT_FORMAT)
    circuit = circuit_from_wire(_field(payload, "circuit", "result"))
    extracted = payload.get("extracted_clifford")
    extracted_clifford = None if extracted is None else circuit_from_wire(extracted)
    metadata = payload.get("metadata") or {}
    if not isinstance(metadata, dict):
        raise WireFormatError("result metadata must be a JSON object")

    extraction = None
    extraction_payload = payload.get("extraction")
    if extraction_payload is not None:
        references = {"circuit": circuit, "extracted_clifford": extracted_clifford}
        terms_payload = extraction_payload.get("terms")
        terms = [] if terms_payload is None else program_from_wire(terms_payload)
        if isinstance(terms, SparsePauliSum):
            terms = terms.terms
        extraction = ExtractionResult(
            optimized_circuit=_circuit_or_reference(
                _field(extraction_payload, "optimized_circuit", "extraction"), references
            ),
            extracted_clifford=_circuit_or_reference(
                _field(extraction_payload, "extracted_clifford", "extraction"), references
            ),
            conjugation=tableau_from_wire(
                _field(extraction_payload, "conjugation", "extraction")
            ),
            terms=terms,
            rotation_count=int(extraction_payload.get("rotation_count", 0)),
            elapsed_seconds=float(extraction_payload.get("elapsed_seconds", 0.0)),
            metadata=extraction_payload.get("metadata") or {},
        )
    return CompilationResult(
        circuit=circuit,
        extracted_clifford=extracted_clifford,
        extraction=extraction,
        compile_seconds=float(payload.get("compile_seconds", 0.0)),
        name=str(payload.get("name", "quclear")),
        metadata=metadata,
        properties=PropertySet(),
    )

# ---------------------------------------------------------------------- #
# Parametric programs and compiled templates (repro.parametric/v1)
# ---------------------------------------------------------------------- #
def parametric_program_to_wire(program) -> dict:
    """A :class:`~repro.parametric.ParametricProgram` as packed words + slots."""
    payload = {"format": PARAMETRIC_FORMAT, "kind": "program"}
    payload.update(_packed_table_fields(program.table))
    payload["slots"] = encode_array(program.slots, "<i8")
    payload["scales"] = encode_array(program.scales, "<f8")
    payload["num_params"] = int(program.num_params)
    return payload


def parametric_program_from_wire(payload: dict):
    from repro.parametric.program import ParametricProgram

    check_format(payload, PARAMETRIC_FORMAT)
    if payload.get("kind") != "program":
        raise WireFormatError(
            f"expected a parametric program payload, got kind {payload.get('kind')!r}"
        )
    table = _packed_table_from_fields(payload)
    slots = decode_array(_field(payload, "slots", "parametric program"), "<i8")
    scales = decode_array(_field(payload, "scales", "parametric program"), "<f8")
    try:
        return ParametricProgram(
            table,
            slots,
            scales=scales,
            num_params=int(_field(payload, "num_params", "parametric program")),
        )
    except WireFormatError:
        raise
    except Exception as error:
        raise WireFormatError(
            f"malformed parametric program payload: {error}"
        ) from error


def template_to_wire(template) -> dict:
    """A :class:`~repro.parametric.CompiledTemplate` as one payload.

    The merge chains are flattened into three arrays (CSR-style offsets plus
    per-entry term indices and signs); the skeleton travels as QASM, whose
    ``repr``-exact floats keep the sentinel placeholders bit-exact.
    """
    chains = template._chains
    offsets = np.zeros(len(chains) + 1, dtype=np.int64)
    for index, chain in enumerate(chains):
        offsets[index + 1] = offsets[index] + len(chain)
    chain_terms = np.array(
        [term for chain in chains for term, _ in chain], dtype=np.int64
    )
    chain_signs = np.array(
        [sign for chain in chains for _, sign in chain], dtype=np.int8
    )
    target = template.target
    return {
        "format": PARAMETRIC_FORMAT,
        "kind": "template",
        "program": parametric_program_to_wire(template.program),
        "level": int(template.level),
        "name": template.name,
        "target": None if target is None else {"num_qubits": target.num_qubits},
        "normalize": bool(template._normalize),
        "always_fallback": bool(template._always_fallback),
        "rotation_count": int(template._rotation_count),
        "skeleton": circuit_to_wire(
            QuantumCircuit.from_trusted_gates(template.num_qubits, template._skeleton)
        ),
        "positions": encode_array(np.asarray(template._positions, dtype=np.int64), "<i8"),
        "chain_offsets": encode_array(offsets, "<i8"),
        "chain_terms": encode_array(chain_terms, "<i8"),
        "chain_signs": encode_array(chain_signs, "<i1"),
        "tail": _optional(template._tail, circuit_to_wire),
        "conjugation": _optional(template._conjugation, tableau_to_wire),
        "metadata_base": template._metadata_base,
        "extraction_metadata": template._extraction_metadata,
    }


def template_from_wire(payload: dict):
    from repro.compiler.target import Target
    from repro.parametric.template import CompiledTemplate

    check_format(payload, PARAMETRIC_FORMAT)
    if payload.get("kind") != "template":
        raise WireFormatError(
            f"expected a template payload, got kind {payload.get('kind')!r}"
        )
    program = parametric_program_from_wire(_field(payload, "program", "template"))
    skeleton_circuit = circuit_from_wire(_field(payload, "skeleton", "template"))
    positions = decode_array(_field(payload, "positions", "template"), "<i8")
    offsets = decode_array(_field(payload, "chain_offsets", "template"), "<i8")
    chain_terms = decode_array(_field(payload, "chain_terms", "template"), "<i8")
    chain_signs = decode_array(_field(payload, "chain_signs", "template"), "<i1")
    if (
        offsets.ndim != 1
        or len(offsets) != len(positions) + 1
        or chain_terms.shape != chain_signs.shape
        or (len(offsets) and int(offsets[-1]) != len(chain_terms))
    ):
        raise WireFormatError("template payload has inconsistent chain arrays")
    chains = [
        [
            (int(chain_terms[entry]), float(chain_signs[entry]))
            for entry in range(int(offsets[index]), int(offsets[index + 1]))
        ]
        for index in range(len(positions))
    ]
    target_payload = payload.get("target")
    if target_payload is None:
        target = None
    else:
        try:
            target = Target.fully_connected(
                int(_field(target_payload, "num_qubits", "template target"))
            )
        except WireFormatError:
            raise
        except Exception as error:
            raise WireFormatError(f"malformed template target: {error}") from error
    tail_payload = payload.get("tail")
    conjugation_payload = payload.get("conjugation")
    metadata_base = payload.get("metadata_base") or {}
    extraction_metadata = payload.get("extraction_metadata") or {}
    if not isinstance(metadata_base, dict) or not isinstance(extraction_metadata, dict):
        raise WireFormatError("template metadata must be JSON objects")
    try:
        return CompiledTemplate.restore(
            program=program,
            level=int(_field(payload, "level", "template")),
            target=target,
            skeleton=list(skeleton_circuit),
            positions=[int(position) for position in positions],
            chains=chains,
            normalize=bool(_field(payload, "normalize", "template")),
            tail=None if tail_payload is None else circuit_from_wire(tail_payload),
            conjugation=(
                None
                if conjugation_payload is None
                else tableau_from_wire(conjugation_payload)
            ),
            rotation_count=int(payload.get("rotation_count", 0)),
            name=str(payload.get("name", "template")),
            metadata_base=metadata_base,
            extraction_metadata=extraction_metadata,
            always_fallback=bool(payload.get("always_fallback", False)),
        )
    except WireFormatError:
        raise
    except Exception as error:
        raise WireFormatError(f"malformed template payload: {error}") from error


def bind_request_to_wire(params, template_key: str | None = None, template=None) -> dict:
    """A bind request: concrete parameters plus the template (by key or inline)."""
    if (template_key is None) == (template is None):
        raise WireFormatError(
            "a bind request names its template by key or ships it inline, "
            "never both and never neither"
        )
    return {
        "format": PARAMETRIC_FORMAT,
        "kind": "bind",
        "template_key": template_key,
        "template": None if template is None else template_to_wire(template),
        "params": [float(value) for value in np.asarray(params, dtype=np.float64)],
    }


def bind_request_from_wire(payload: dict) -> tuple[str | None, dict | None, list]:
    """Decode a bind request into ``(template_key, template_payload, params)``.

    The template payload (if inline) is returned undecoded so the service can
    key its template cache on the wire bytes before paying reconstruction.
    """
    check_format(payload, PARAMETRIC_FORMAT)
    if payload.get("kind") != "bind":
        raise WireFormatError(
            f"expected a bind payload, got kind {payload.get('kind')!r}"
        )
    template_key = payload.get("template_key")
    if template_key is not None and not isinstance(template_key, str):
        raise WireFormatError("bind template_key must be a string")
    template_payload = payload.get("template")
    if (template_key is None) == (template_payload is None):
        raise WireFormatError(
            "a bind request names its template by key or ships it inline, "
            "never both and never neither"
        )
    params = _field(payload, "params", "bind")
    if not isinstance(params, list):
        raise WireFormatError("bind params must be a JSON list of numbers")
    return template_key, template_payload, params
