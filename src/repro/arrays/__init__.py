"""Pluggable array backends for the packed conjugation engine.

The engine (:mod:`repro.paulis.packed`, :mod:`repro.clifford.engine`) routes
every array operation through an :class:`ArrayBackend`; this package holds
the backend implementations and the name registry:

* :class:`NumpyBackend` — the default host backend;
* :class:`CupyBackend` — optional GPU backend (import-guarded; resolving
  ``"cupy"`` without the package raises a clear error);
* :class:`ReferenceBackend` — pure-Python ground truth for equivalence tests;
* :func:`resolve_backend` — names/instances/env override to singletons;
  selection precedence: explicit argument > ``Target.array_backend`` >
  ``REPRO_ARRAY_BACKEND`` > ``"numpy"``.
"""

from repro.arrays.backend import ArrayBackend, NumpyBackend, ReferenceBackend
from repro.arrays.cupy_backend import CupyBackend, cupy_available
from repro.arrays.registry import (
    ENV_VAR,
    NUMPY,
    available_backends,
    default_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "CupyBackend",
    "cupy_available",
    "ENV_VAR",
    "NUMPY",
    "available_backends",
    "default_backend",
    "register_backend",
    "resolve_backend",
]
