"""Backend registry: names to :class:`ArrayBackend` singletons.

Selection precedence (resolved per call, cheapest first):

1. an explicit :class:`ArrayBackend` instance — returned as-is;
2. an explicit name (``"numpy"``, ``"reference"``, ``"cupy"``, or anything
   added via :func:`register_backend`);
3. the ``REPRO_ARRAY_BACKEND`` environment variable, consulted whenever the
   spec is ``None``;
4. the ``"numpy"`` default.

Compile entry points layer two more levels above this module: an explicit
``backend=`` argument wins over ``Target.array_backend``, which wins over
the env/default handling here.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

from repro.arrays.backend import ArrayBackend, NumpyBackend, ReferenceBackend
from repro.exceptions import ArrayBackendError

#: environment variable naming the default backend when none is requested
ENV_VAR = "REPRO_ARRAY_BACKEND"

_LOCK = threading.Lock()
_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(
    name: str, factory: Callable[[], ArrayBackend], replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    The factory is called at most once — backends are stateless singletons.
    Registering an existing name raises unless ``replace=True``.
    """
    key = name.strip().lower()
    if not key:
        raise ArrayBackendError("array backend name must be non-empty")
    with _LOCK:
        if key in _FACTORIES and not replace:
            raise ArrayBackendError(f"array backend {name!r} is already registered")
        _FACTORIES[key] = factory
        _INSTANCES.pop(key, None)


def available_backends() -> list[str]:
    """Sorted names of every registered backend (installed or not)."""
    with _LOCK:
        return sorted(_FACTORIES)


def resolve_backend(spec: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """The backend named by ``spec`` (instance, name, env override, or default).

    ``None`` consults ``REPRO_ARRAY_BACKEND`` and falls back to ``"numpy"``.
    Unknown names and backends whose dependency is missing (CuPy) raise
    :class:`~repro.exceptions.ArrayBackendError`.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        env = os.environ.get(ENV_VAR, "").strip()
        spec = env or "numpy"
    if not isinstance(spec, str):
        raise ArrayBackendError(
            f"cannot resolve an array backend from {type(spec).__name__}: {spec!r}"
        )
    key = spec.strip().lower()
    with _LOCK:
        instance = _INSTANCES.get(key)
        if instance is not None:
            return instance
        factory = _FACTORIES.get(key)
    if factory is None:
        raise ArrayBackendError(
            f"unknown array backend {spec!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    # Construct outside the lock: a factory may raise (cupy absent) or import.
    instance = factory()
    with _LOCK:
        return _INSTANCES.setdefault(key, instance)


def default_backend() -> ArrayBackend:
    """The backend used when nothing is specified (env override included)."""
    return resolve_backend(None)


def _cupy_factory() -> ArrayBackend:
    from repro.arrays.cupy_backend import CupyBackend

    return CupyBackend()


register_backend("numpy", NumpyBackend)
register_backend("reference", ReferenceBackend)
register_backend("cupy", _cupy_factory)

#: the host numpy singleton — internal host-side code paths (tableaus, gate
#: synthesis, wire serialization) pin themselves to this regardless of the
#: session default.
NUMPY: ArrayBackend = resolve_backend("numpy")
