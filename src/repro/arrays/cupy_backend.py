"""Optional CuPy array backend (GPU device arrays).

CuPy is not a dependency of this package; the import is guarded so the
module is always importable and :func:`cupy_available` reports whether the
backend can actually be constructed.  :func:`repro.arrays.resolve_backend`
surfaces the guarded failure as an :class:`~repro.exceptions.ArrayBackendError`
with an install hint.

The generic :class:`~repro.arrays.backend.ArrayBackend` kernels already run
on CuPy arrays (plain operators, SWAR popcount instead of the numpy-only
``bitwise_count``); this subclass only supplies device construction and the
device-to-host transfer.
"""

from __future__ import annotations

import numpy as np

from repro.arrays.backend import ArrayBackend
from repro.exceptions import ArrayBackendError

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as _cupy
except ImportError:  # pragma: no cover
    _cupy = None


def cupy_available() -> bool:
    """Whether the ``cupy`` package imported successfully."""
    return _cupy is not None


class CupyBackend(ArrayBackend):
    """GPU backend over CuPy device arrays (requires the ``cupy`` package)."""

    name = "cupy"

    def __init__(self):
        if _cupy is None:
            raise ArrayBackendError(
                "the 'cupy' array backend requires the cupy package "
                "(e.g. pip install cupy-cuda12x); it is not installed"
            )
        self.xp = _cupy

    def asarray_words(self, data):
        # Route host data through numpy first: cupy.asarray of nested Python
        # sequences is slower and stricter than numpy's.
        if not isinstance(data, self.xp.ndarray):
            data = np.asarray(data, dtype=np.uint64)
        return self.xp.ascontiguousarray(self.xp.asarray(data, dtype=self.xp.uint64))

    def asarray_phases(self, data):
        if not isinstance(data, self.xp.ndarray):
            data = np.asarray(data, dtype=np.int64)
        return self.xp.asarray(data, dtype=self.xp.int64)

    def to_numpy(self, array) -> np.ndarray:
        return self.xp.asnumpy(array)
