"""Array backends for the packed conjugation engine.

The engine's hot path is whole-matrix bitwise algebra over ``uint64`` word
matrices (:mod:`repro.paulis.packed`).  This module narrows that workload to
an explicit operation set — allocate/asarray, bitwise and/or/xor/shift,
popcount-reduce, masked row updates, argsort, host transfer — so the same
kernels can run on any array library that provides ``uint64`` containers:

* :class:`NumpyBackend` — the default; overrides the coarse per-gate and
  basis-layer kernels with the direct vectorized numpy expressions, so the
  indirection adds one method call per *gate*, not per array op;
* :class:`~repro.arrays.cupy_backend.CupyBackend` — the same generic kernels
  over CuPy device arrays (import-guarded; see its module);
* :class:`ReferenceBackend` — slow ground truth: numpy arrays as containers,
  every arithmetic/bitwise primitive re-implemented as a pure-Python integer
  loop masked to 64 bits.  Equivalence tests run the engine under this
  backend and assert bit-identical words and phases against numpy.

Layering: :class:`ArrayBackend` defines *primitive* ops with generic
array-API implementations (plain operators over ``self.xp`` arrays) plus
*coarse* engine kernels written only in terms of the primitives.  Subclasses
override primitives (ReferenceBackend) or coarse kernels (NumpyBackend) —
never both — so every backend provably computes the same function.

Backends are stateless and safe to share across threads; obtain instances
through :func:`repro.arrays.resolve_backend` rather than constructing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.exceptions import CliffordError

if TYPE_CHECKING:
    from repro.circuits.gate import Gate

#: qubits stored per machine word (mirrors :data:`repro.paulis.packed.WORD_BITS`)
WORD_BITS = 64

_ONE = np.uint64(1)
_U64_MASK = (1 << 64) - 1

# SWAR popcount constants (Hacker's Delight 5-2); used by the generic
# popcount so CuPy — which lacks ``bitwise_count`` — needs no override.
_SWAR_M1 = 0x5555555555555555
_SWAR_M2 = 0x3333333333333333
_SWAR_M4 = 0x0F0F0F0F0F0F0F0F
_SWAR_H01 = 0x0101010101010101


def _word_shift(qubit: int) -> tuple[int, int]:
    """``(word index, bit shift)`` of ``qubit`` in the packed layout."""
    return qubit >> 6, qubit & (WORD_BITS - 1)


class ArrayBackend:
    """The array operations the packed engine needs, and nothing more.

    ``xp`` is the array-API module providing containers (``numpy`` for the
    host backends, ``cupy`` for the GPU one).  Generic implementations below
    use plain operators, which both libraries share; hosts that cannot (the
    pure-Python reference) override the primitives instead.
    """

    #: registry name of the backend ("numpy", "cupy", "reference", ...)
    name = "abstract"
    #: array-API module supplying the containers
    xp: Any = None

    # ------------------------------------------------------------------ #
    # Containers and host transfer
    # ------------------------------------------------------------------ #
    def zeros_words(self, rows: int, words: int):
        """A ``(rows, words)`` all-zero ``uint64`` word matrix."""
        return self.xp.zeros((rows, words), dtype=self.xp.uint64)

    def zeros_phases(self, rows: int):
        """A ``(rows,)`` all-zero ``int64`` phase vector."""
        return self.xp.zeros(rows, dtype=self.xp.int64)

    def zeros_like(self, array):
        return self.xp.zeros_like(array)

    def asarray_words(self, data):
        """``data`` as a contiguous ``uint64`` array on this backend."""
        return self.xp.ascontiguousarray(self.xp.asarray(data, dtype=self.xp.uint64))

    def asarray_phases(self, data):
        """``data`` as an ``int64`` array on this backend."""
        return self.xp.asarray(data, dtype=self.xp.int64)

    def to_numpy(self, array) -> np.ndarray:
        """The array's contents as a host ``numpy`` array (no copy if host)."""
        return np.asarray(array)

    def copy(self, array):
        return array.copy()

    def tolist(self, array) -> list:
        return self.to_numpy(array).tolist()

    def tobytes(self, array) -> bytes:
        return np.ascontiguousarray(self.to_numpy(array)).tobytes()

    # ------------------------------------------------------------------ #
    # Elementwise primitives
    # ------------------------------------------------------------------ #
    def band(self, a, b):
        return a & b

    def bor(self, a, b):
        return a | b

    def bxor(self, a, b):
        return a ^ b

    def bandnot(self, a, b):
        """``a & ~b`` (mask removal)."""
        return a & ~b

    def ixor(self, a, b) -> None:
        a ^= b

    def iand(self, a, b) -> None:
        a &= b

    def lshift(self, a, shift):
        return a << shift

    def rshift(self, a, shift):
        return a >> shift

    def iadd(self, a, b) -> None:
        a += b

    def mod(self, a, modulus):
        return a % modulus

    def imod(self, a, modulus) -> None:
        a %= modulus

    def to_int64(self, a):
        return a.astype(self.xp.int64)

    def to_bool(self, a):
        return a.astype(bool)

    def affine(self, a, mul: int, add: int):
        """``mul * a + add`` as ``int64`` (phase-contribution helper)."""
        result = self.to_int64(a) * mul
        if add:
            result += add
        return result

    # ------------------------------------------------------------------ #
    # Reductions and ordering
    # ------------------------------------------------------------------ #
    def popcount_rows(self, words):
        """Population count over the last axis of a word matrix, ``int64``."""
        x = words - ((words >> 1) & _SWAR_M1)
        x = (x & _SWAR_M2) + ((x >> 2) & _SWAR_M2)
        x = (x + (x >> 4)) & _SWAR_M4
        counts = (x * _SWAR_H01) >> 56
        return self.to_int64(counts).sum(axis=-1)

    def any(self, a) -> bool:
        return bool(a.any())

    def array_equal(self, a, b) -> bool:
        return bool(np.array_equal(self.to_numpy(a), self.to_numpy(b)))

    def argsort_stable(self, values) -> np.ndarray:
        """Stable argsort, always returned on the host (synthesis is host-side)."""
        return np.argsort(self.to_numpy(values), kind="stable")

    # ------------------------------------------------------------------ #
    # Structured (row / column) operations
    # ------------------------------------------------------------------ #
    def select_rows(self, array, indices):
        """Rows of ``array`` gathered in the order of host ``indices`` (a copy)."""
        return array[self.xp.asarray(np.asarray(indices))]

    def compress_rows(self, array, mask):
        """Rows of ``array`` where boolean ``mask`` is set (a copy)."""
        return array[mask]

    def masked_ixor_rows(self, dest, mask, row) -> None:
        """``dest[mask] ^= row`` — fold one word row into every selected row."""
        dest[mask] ^= row

    def masked_iadd(self, dest, mask, values) -> None:
        """``dest[mask] += values`` (``values`` aligned with the selected rows)."""
        dest[mask] += values

    def roll_down(self, array):
        """The array with rows rotated one step toward higher indices."""
        return self.xp.roll(array, 1, axis=0)

    def column_bits(self, words, word: int, shift: int):
        """The 0/1 value of one qubit column for every row, as ``int64``."""
        return self.to_int64(self.band(self.rshift(words[:, word], shift), 1))

    def support_bits(self, words, word_indices: np.ndarray, shifts: np.ndarray) -> np.ndarray:
        """Per-row 0/1 values of several qubit columns, as host ``uint8``.

        ``word_indices`` / ``shifts`` are host arrays naming the qubits; the
        result is ``(rows, len(word_indices))`` on the host — this feeds the
        branch-and-bound candidate scan, which is host-side Python.
        """
        gathered = words[:, self.xp.asarray(np.asarray(word_indices))]
        shift_arr = self.asarray_words(np.asarray(shifts, dtype=np.uint64))
        bits = self.band(self.rshift(gathered, shift_arr), 1)
        return self.to_numpy(bits).astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Coarse engine kernels (written only in terms of the primitives)
    # ------------------------------------------------------------------ #
    def apply_gate_to_words(self, x_words, z_words, phases, gate: "Gate") -> None:
        """Apply one Clifford gate in place to every packed row.

        Phases accumulate un-reduced (``int64`` has headroom for any
        realistic circuit); callers fold modulo 4 after a batch of gates.
        The rules mirror :mod:`repro.clifford.conjugation`, which the
        equivalence tests hold as ground truth.
        """
        name = gate.name
        if name == "i":
            return
        qubits = gate.qubits
        if name in ("cx", "cz", "swap"):
            self._apply_two_qubit(x_words, z_words, phases, name, qubits[0], qubits[1])
            return
        word, shift = _word_shift(qubits[0])
        mask = 1 << shift
        xcol = x_words[:, word]
        zcol = z_words[:, word]
        if name == "h":
            bit = self.band(self.rshift(self.band(xcol, zcol), shift), 1)
            self.iadd(phases, self.affine(bit, 2, 0))
            diff = self.band(self.bxor(xcol, zcol), mask)
            self.ixor(xcol, diff)
            self.ixor(zcol, diff)
        elif name == "s":
            self.iadd(phases, self.column_bits(x_words, word, shift))
            self.ixor(zcol, self.band(xcol, mask))
        elif name == "sdg":
            self.iadd(phases, self.affine(self.band(self.rshift(xcol, shift), 1), 3, 0))
            self.ixor(zcol, self.band(xcol, mask))
        elif name == "sx":
            self.iadd(phases, self.affine(self.band(self.rshift(zcol, shift), 1), 3, 0))
            self.ixor(xcol, self.band(zcol, mask))
        elif name == "sxdg":
            self.iadd(phases, self.column_bits(z_words, word, shift))
            self.ixor(xcol, self.band(zcol, mask))
        elif name == "x":
            self.iadd(phases, self.affine(self.band(self.rshift(zcol, shift), 1), 2, 0))
        elif name == "y":
            bit = self.band(self.rshift(self.bxor(xcol, zcol), shift), 1)
            self.iadd(phases, self.affine(bit, 2, 0))
        elif name == "z":
            self.iadd(phases, self.affine(self.band(self.rshift(xcol, shift), 1), 2, 0))
        else:
            raise CliffordError(f"gate {gate.name!r} is not a supported Clifford gate")

    def _apply_two_qubit(self, x_words, z_words, phases, name, control, target) -> None:
        cword, cshift = _word_shift(control)
        tword, tshift = _word_shift(target)
        if name == "cx":
            # In the explicit-phase convention CNOT conjugation is phase-free.
            self.ixor(
                x_words[:, tword],
                self.lshift(self.band(self.rshift(x_words[:, cword], cshift), 1), tshift),
            )
            self.ixor(
                z_words[:, cword],
                self.lshift(self.band(self.rshift(z_words[:, tword], tshift), 1), cshift),
            )
        elif name == "cz":
            x_control = self.band(self.rshift(x_words[:, cword], cshift), 1)
            x_target = self.band(self.rshift(x_words[:, tword], tshift), 1)
            self.iadd(phases, self.affine(self.band(x_control, x_target), 2, 0))
            self.ixor(z_words[:, cword], self.lshift(x_target, cshift))
            self.ixor(z_words[:, tword], self.lshift(x_control, tshift))
        else:  # swap
            for words in (x_words, z_words):
                diff = self.band(
                    self.bxor(
                        self.rshift(words[:, cword], cshift), self.rshift(words[:, tword], tshift)
                    ),
                    1,
                )
                self.ixor(words[:, cword], self.lshift(diff, cshift))
                self.ixor(words[:, tword], self.lshift(diff, tshift))

    def apply_basis_layer_to_words(self, x_words, z_words, phases, y_mask, h_mask) -> None:
        """Apply a whole masked ``sdg``/``h`` basis-change layer to every row.

        ``y_mask`` selects the qubits receiving ``sdg`` and ``h_mask`` those
        receiving ``h``, both as packed ``uint64`` qubit masks; gates on
        distinct qubits commute, so the two masked sweeps are bit-identical
        to streaming the per-qubit gates one at a time.
        """
        if self.any(y_mask):
            masked = self.band(x_words, y_mask)
            self.iadd(phases, self.affine(self.popcount_rows(masked), 3, 0))
            self.ixor(z_words, masked)
        if self.any(h_mask):
            overlap = self.band(self.band(x_words, z_words), h_mask)
            self.iadd(phases, self.affine(self.popcount_rows(overlap), 2, 0))
            diff = self.band(self.bxor(x_words, z_words), h_mask)
            self.ixor(x_words, diff)
            self.ixor(z_words, diff)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- #
# Numpy: the default backend.  The coarse kernels are overridden with the
# direct vectorized expressions so the per-gate hot path pays one method
# call per gate, not ~6 per array primitive.
# ---------------------------------------------------------------------- #
def _col(words: np.ndarray, word: int, shift: np.uint64) -> np.ndarray:
    return ((words[:, word] >> shift) & _ONE).astype(np.int64)


def _np_bit_position(qubit: int) -> tuple[int, np.uint64, np.uint64]:
    shift = np.uint64(qubit & (WORD_BITS - 1))
    return qubit >> 6, shift, _ONE << shift


def _h(xw, zw, phases, qubit):
    word, shift, mask = _np_bit_position(qubit)
    phases += 2 * (((xw[:, word] & zw[:, word]) >> shift) & _ONE).astype(np.int64)
    diff = (xw[:, word] ^ zw[:, word]) & mask
    xw[:, word] ^= diff
    zw[:, word] ^= diff


def _s(xw, zw, phases, qubit):
    word, shift, mask = _np_bit_position(qubit)
    phases += _col(xw, word, shift)
    zw[:, word] ^= xw[:, word] & mask


def _sdg(xw, zw, phases, qubit):
    word, shift, mask = _np_bit_position(qubit)
    phases += 3 * _col(xw, word, shift)
    zw[:, word] ^= xw[:, word] & mask


def _sx(xw, zw, phases, qubit):
    word, shift, mask = _np_bit_position(qubit)
    phases += 3 * _col(zw, word, shift)
    xw[:, word] ^= zw[:, word] & mask


def _sxdg(xw, zw, phases, qubit):
    word, shift, mask = _np_bit_position(qubit)
    phases += _col(zw, word, shift)
    xw[:, word] ^= zw[:, word] & mask


def _x(xw, zw, phases, qubit):
    word, shift, _ = _np_bit_position(qubit)
    phases += 2 * _col(zw, word, shift)


def _y(xw, zw, phases, qubit):
    word, shift, _ = _np_bit_position(qubit)
    phases += 2 * (((xw[:, word] ^ zw[:, word]) >> shift) & _ONE).astype(np.int64)


def _z(xw, zw, phases, qubit):
    word, shift, _ = _np_bit_position(qubit)
    phases += 2 * _col(xw, word, shift)


def _cx(xw, zw, phases, control, target):
    cword, cshift, _ = _np_bit_position(control)
    tword, tshift, _ = _np_bit_position(target)
    xw[:, tword] ^= ((xw[:, cword] >> cshift) & _ONE) << tshift
    zw[:, cword] ^= ((zw[:, tword] >> tshift) & _ONE) << cshift


def _cz(xw, zw, phases, control, target):
    cword, cshift, _ = _np_bit_position(control)
    tword, tshift, _ = _np_bit_position(target)
    x_control = (xw[:, cword] >> cshift) & _ONE
    x_target = (xw[:, tword] >> tshift) & _ONE
    phases += 2 * (x_control & x_target).astype(np.int64)
    zw[:, cword] ^= x_target << cshift
    zw[:, tword] ^= x_control << tshift


def _swap(xw, zw, phases, qubit_a, qubit_b):
    aword, ashift, _ = _np_bit_position(qubit_a)
    bword, bshift, _ = _np_bit_position(qubit_b)
    for words in (xw, zw):
        diff = ((words[:, aword] >> ashift) ^ (words[:, bword] >> bshift)) & _ONE
        words[:, aword] ^= diff << ashift
        words[:, bword] ^= diff << bshift


def _identity(xw, zw, phases, qubit):
    return None


_NUMPY_SINGLE_QUBIT_HANDLERS = {
    "i": _identity,
    "h": _h,
    "s": _s,
    "sdg": _sdg,
    "sx": _sx,
    "sxdg": _sxdg,
    "x": _x,
    "y": _y,
    "z": _z,
}

_NUMPY_TWO_QUBIT_HANDLERS = {
    "cx": _cx,
    "cz": _cz,
    "swap": _swap,
}


def _numpy_popcount_rows(words: np.ndarray) -> np.ndarray:
    return np.bitwise_count(words).sum(axis=-1).astype(np.int64)


class NumpyBackend(ArrayBackend):
    """The default host backend: direct vectorized numpy kernels."""

    name = "numpy"
    xp = np

    def to_numpy(self, array) -> np.ndarray:
        return array

    def popcount_rows(self, words):
        return _numpy_popcount_rows(words)

    def apply_gate_to_words(self, x_words, z_words, phases, gate: "Gate") -> None:
        name = gate.name
        handler = _NUMPY_SINGLE_QUBIT_HANDLERS.get(name)
        if handler is not None:
            handler(x_words, z_words, phases, gate.qubits[0])
            return
        handler = _NUMPY_TWO_QUBIT_HANDLERS.get(name)
        if handler is not None:
            handler(x_words, z_words, phases, gate.qubits[0], gate.qubits[1])
            return
        raise CliffordError(f"gate {gate.name!r} is not a supported Clifford gate")

    def apply_basis_layer_to_words(self, x_words, z_words, phases, y_mask, h_mask) -> None:
        if np.any(y_mask):
            phases += 3 * _numpy_popcount_rows(x_words & y_mask)
            z_words ^= x_words & y_mask
        if np.any(h_mask):
            phases += 2 * _numpy_popcount_rows(x_words & z_words & h_mask)
            diff = (x_words ^ z_words) & h_mask
            x_words ^= diff
            z_words ^= diff


# ---------------------------------------------------------------------- #
# Reference: pure-Python ground truth.
# ---------------------------------------------------------------------- #
class ReferenceBackend(ArrayBackend):
    """Slow ground-truth backend: Python-integer loops over numpy containers.

    Containers stay numpy (so shapes, views, and host transfer are shared
    with :class:`NumpyBackend`), but every arithmetic and bitwise primitive
    runs element by element through Python integers masked to 64 bits —
    independent of numpy's vectorized kernels, casting rules, and any
    endianness/packing subtleties.  The equivalence suites run the engine
    under this backend and require bit-identical words and phases.
    """

    name = "reference"
    xp = np

    # -- loop plumbing -------------------------------------------------- #
    @staticmethod
    def _binary(a, b, fn, dtype=None):
        a_arr = np.asarray(a)
        b_arr = np.asarray(b)
        shape = np.broadcast_shapes(a_arr.shape, b_arr.shape)
        a_bc = np.broadcast_to(a_arr, shape)
        b_bc = np.broadcast_to(b_arr, shape)
        out = np.empty(shape, dtype=a_arr.dtype if dtype is None else dtype)
        for index in np.ndindex(shape):
            out[index] = fn(int(a_bc[index]), int(b_bc[index]))
        return out

    @staticmethod
    def _inplace(a, b, fn):
        # Writes element-wise through the (possibly strided) view ``a``.
        b_bc = np.broadcast_to(np.asarray(b), a.shape)
        for index in np.ndindex(a.shape):
            a[index] = fn(int(a[index]), int(b_bc[index]))

    # -- primitives ----------------------------------------------------- #
    def band(self, a, b):
        return self._binary(a, b, lambda x, y: x & y)

    def bor(self, a, b):
        return self._binary(a, b, lambda x, y: x | y)

    def bxor(self, a, b):
        return self._binary(a, b, lambda x, y: x ^ y)

    def bandnot(self, a, b):
        return self._binary(a, b, lambda x, y: x & (~y & _U64_MASK))

    def ixor(self, a, b) -> None:
        self._inplace(a, b, lambda x, y: x ^ y)

    def iand(self, a, b) -> None:
        self._inplace(a, b, lambda x, y: x & y)

    def lshift(self, a, shift):
        return self._binary(a, shift, lambda x, s: (x << s) & _U64_MASK)

    def rshift(self, a, shift):
        return self._binary(a, shift, lambda x, s: x >> s)

    def iadd(self, a, b) -> None:
        self._inplace(a, b, lambda x, y: x + y)

    def mod(self, a, modulus):
        return self._binary(a, modulus, lambda x, m: x % m)

    def imod(self, a, modulus) -> None:
        self._inplace(a, modulus, lambda x, m: x % m)

    def to_int64(self, a):
        return self._binary(a, 0, lambda x, _: x, dtype=np.int64)

    def to_bool(self, a):
        return self._binary(a, 0, lambda x, _: bool(x), dtype=bool)

    def affine(self, a, mul: int, add: int):
        return self._binary(a, 0, lambda x, _: mul * x + add, dtype=np.int64)

    # -- reductions ----------------------------------------------------- #
    def popcount_rows(self, words):
        w = np.asarray(words)
        out = np.empty(w.shape[:-1], dtype=np.int64)
        for index in np.ndindex(w.shape[:-1]):
            out[index] = sum(int(value).bit_count() for value in w[index])
        return out

    # -- structured ----------------------------------------------------- #
    def masked_ixor_rows(self, dest, mask, row) -> None:
        mask_arr = np.asarray(mask)
        row_arr = np.asarray(row)
        for i in range(dest.shape[0]):
            if bool(mask_arr[i]):
                for j in range(dest.shape[1]):
                    dest[i, j] = int(dest[i, j]) ^ int(row_arr[j])

    def masked_iadd(self, dest, mask, values) -> None:
        mask_arr = np.asarray(mask)
        values_arr = np.asarray(values)
        cursor = 0
        for i in range(dest.shape[0]):
            if bool(mask_arr[i]):
                value = int(values_arr) if values_arr.ndim == 0 else int(values_arr[cursor])
                dest[i] = int(dest[i]) + value
                cursor += 1
