"""Workload generators reproducing the paper's benchmark suite (Table II).

* :mod:`repro.workloads.fermion` — fermionic ladder operators and the
  Jordan–Wigner transform (the substrate behind the UCCSD ansatz).
* :mod:`repro.workloads.uccsd` — UCCSD ansatz Pauli-rotation programs.
* :mod:`repro.workloads.molecules` — synthetic molecular Hamiltonians with the
  qubit counts and term counts of the paper's LiH / H2O / benzene benchmarks.
* :mod:`repro.workloads.qaoa` — QAOA programs for MaxCut and LABS.
* :mod:`repro.workloads.registry` — the named benchmark table.
"""

from repro.workloads.fermion import FermionicOperator, jordan_wigner
from repro.workloads.uccsd import uccsd_ansatz_terms, uccsd_excitations
from repro.workloads.molecules import (
    molecular_hamiltonian,
    hamiltonian_simulation_terms,
    synthetic_electronic_hamiltonian,
)
from repro.workloads.qaoa import (
    labs_hamiltonian,
    labs_qaoa_terms,
    maxcut_hamiltonian,
    maxcut_qaoa_terms,
    random_graph,
    regular_graph,
)
from repro.workloads.registry import Benchmark, get_benchmark, list_benchmarks

__all__ = [
    "FermionicOperator",
    "jordan_wigner",
    "uccsd_ansatz_terms",
    "uccsd_excitations",
    "molecular_hamiltonian",
    "hamiltonian_simulation_terms",
    "synthetic_electronic_hamiltonian",
    "labs_hamiltonian",
    "labs_qaoa_terms",
    "maxcut_hamiltonian",
    "maxcut_qaoa_terms",
    "random_graph",
    "regular_graph",
    "Benchmark",
    "get_benchmark",
    "list_benchmarks",
]
