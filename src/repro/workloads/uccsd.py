"""UCCSD ansatz generator (Jordan–Wigner encoded).

The chemistry benchmarks UCC-(n_e, n_so) of the paper are UCCSD ansatz
circuits for ``n_e`` electrons in ``n_so`` spin orbitals.  Every spin-
preserving single and double excitation contributes an anti-Hermitian
generator ``T - T†`` whose Jordan–Wigner image is a sum of Pauli strings with
purely imaginary weights; Trotterizing ``exp(theta (T - T†))`` yields one
Pauli rotation per string.  The rotation angles are the variational
parameters; deterministic pseudo-random values are used so that benchmark
circuits are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.paulis.term import PauliTerm
from repro.workloads.fermion import anti_hermitian_excitation


@dataclass(frozen=True)
class Excitation:
    """A spin-preserving excitation from occupied to virtual spin orbitals."""

    occupied: tuple[int, ...]
    virtual: tuple[int, ...]

    @property
    def order(self) -> int:
        return len(self.occupied)


def _spin_of(spin_orbital: int, num_spatial: int) -> int:
    """Block ordering: alpha spin orbitals first, then beta."""
    return 0 if spin_orbital < num_spatial else 1


def uccsd_excitations(num_electrons: int, num_spin_orbitals: int) -> list[Excitation]:
    """Spin-preserving single and double excitations (block spin ordering)."""
    if num_spin_orbitals % 2 != 0:
        raise WorkloadError("the number of spin orbitals must be even")
    if not 0 < num_electrons < num_spin_orbitals:
        raise WorkloadError("the electron count must be between 1 and the orbital count - 1")
    if num_electrons % 2 != 0:
        raise WorkloadError("only closed-shell (even electron) systems are generated")
    num_spatial = num_spin_orbitals // 2
    occupied_per_spin = num_electrons // 2
    occupied = [orbital for orbital in range(occupied_per_spin)] + [
        num_spatial + orbital for orbital in range(occupied_per_spin)
    ]
    virtual = [orbital for orbital in range(num_spin_orbitals) if orbital not in occupied]

    excitations: list[Excitation] = []
    # Singles: same spin sector.
    for occ in occupied:
        for vir in virtual:
            if _spin_of(occ, num_spatial) == _spin_of(vir, num_spatial):
                excitations.append(Excitation((occ,), (vir,)))
    # Doubles: total spin preserved.
    for index_i, occ_i in enumerate(occupied):
        for occ_j in occupied[index_i + 1 :]:
            for index_a, vir_a in enumerate(virtual):
                for vir_b in virtual[index_a + 1 :]:
                    occupied_spin = _spin_of(occ_i, num_spatial) + _spin_of(occ_j, num_spatial)
                    virtual_spin = _spin_of(vir_a, num_spatial) + _spin_of(vir_b, num_spatial)
                    if occupied_spin == virtual_spin:
                        excitations.append(Excitation((occ_i, occ_j), (vir_a, vir_b)))
    return excitations


def uccsd_ansatz_terms(
    num_electrons: int,
    num_spin_orbitals: int,
    parameters: list[complex] | None = None,
    seed: int = 7,
    complex_amplitudes: bool = True,
) -> list[PauliTerm]:
    """Pauli-rotation program of the UCCSD ansatz.

    With ``complex_amplitudes`` (the default, matching the paper's Table II
    term counts of 4 Pauli strings per single and 16 per double excitation)
    every excitation carries a complex amplitude ``t`` and the anti-Hermitian
    generator is ``t T - conj(t) T†``.  Real amplitudes halve the term count
    because the ``XX``/``YY`` style strings cancel between ``T`` and ``T†``.

    The rotation angle of a Pauli string with purely imaginary Jordan–Wigner
    weight ``i w`` is ``-2 w`` in the ``exp(-i angle/2 P)`` convention.
    """
    excitations = uccsd_excitations(num_electrons, num_spin_orbitals)
    if parameters is None:
        rng = np.random.default_rng(seed)
        magnitudes = rng.uniform(0.05, 0.5, size=len(excitations))
        if complex_amplitudes:
            phases = rng.uniform(0.0, 2.0 * np.pi, size=len(excitations))
            parameters = list(magnitudes * np.exp(1j * phases))
        else:
            parameters = list(magnitudes)
    if len(parameters) != len(excitations):
        raise WorkloadError(
            f"expected {len(excitations)} parameters, got {len(parameters)}"
        )
    terms: list[PauliTerm] = []
    for excitation, amplitude in zip(excitations, parameters):
        generator = anti_hermitian_excitation(
            excitation.virtual, excitation.occupied, num_spin_orbitals, amplitude=amplitude
        )
        # t T - conj(t) T† is anti-Hermitian, so every Pauli weight is purely
        # imaginary: exp(A) = prod_k exp(i w_k P_k)   (Trotterized).
        for pauli, coefficient in generator.items():
            if abs(coefficient.real) > 1e-10:
                raise WorkloadError("excitation generator is not anti-Hermitian")
            weight = coefficient.imag
            if abs(weight) < 1e-12:
                continue
            terms.append(PauliTerm(pauli.copy(), -2.0 * weight))
    return terms


def uccsd_statistics(num_electrons: int, num_spin_orbitals: int) -> dict[str, int]:
    """Summary used by the benchmark registry (number of excitations / Paulis)."""
    terms = uccsd_ansatz_terms(num_electrons, num_spin_orbitals)
    return {
        "num_qubits": num_spin_orbitals,
        "num_excitations": len(uccsd_excitations(num_electrons, num_spin_orbitals)),
        "num_paulis": len(terms),
    }
