"""Fermionic operators and the Jordan–Wigner transform.

This is the substrate behind the UCCSD benchmark generator: excitation
operators are built from creation/annihilation ladder operators, mapped to
qubit operators with the Jordan–Wigner encoding

    a_p      = Z_0 ... Z_{p-1} (X_p + i Y_p) / 2
    a_p^dag  = Z_0 ... Z_{p-1} (X_p - i Y_p) / 2

and accumulated as complex-weighted Pauli sums.  Only the functionality the
UCCSD generator needs is implemented (products, addition, Hermitian
conjugation), but it is implemented exactly, including all phases.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm


class ComplexPauliSum:
    """A complex-weighted sum of Pauli strings (internal JW accumulator)."""

    def __init__(self, num_qubits: int):
        self.num_qubits = int(num_qubits)
        self._coefficients: dict[tuple[bytes, bytes], complex] = {}
        self._templates: dict[tuple[bytes, bytes], PauliString] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls, num_qubits: int) -> "ComplexPauliSum":
        return cls(num_qubits)

    @classmethod
    def from_pauli(cls, pauli: PauliString, coefficient: complex = 1.0) -> "ComplexPauliSum":
        result = cls(pauli.num_qubits)
        result.add_pauli(pauli, coefficient)
        return result

    def copy(self) -> "ComplexPauliSum":
        clone = ComplexPauliSum(self.num_qubits)
        clone._coefficients = dict(self._coefficients)
        clone._templates = dict(self._templates)
        return clone

    # ------------------------------------------------------------------ #
    def add_pauli(self, pauli: PauliString, coefficient: complex) -> None:
        bare = pauli.bare()
        weight = coefficient * complex(pauli.sign)
        key = (bare.x.tobytes(), bare.z.tobytes())
        self._coefficients[key] = self._coefficients.get(key, 0.0) + weight
        self._templates.setdefault(key, bare)

    def items(self) -> list[tuple[PauliString, complex]]:
        return [
            (self._templates[key], coefficient)
            for key, coefficient in self._coefficients.items()
            if abs(coefficient) > 1e-12
        ]

    def __len__(self) -> int:
        return len(self.items())

    # ------------------------------------------------------------------ #
    def __add__(self, other: "ComplexPauliSum") -> "ComplexPauliSum":
        result = self.copy()
        for pauli, coefficient in other.items():
            result.add_pauli(pauli, coefficient)
        return result

    def __sub__(self, other: "ComplexPauliSum") -> "ComplexPauliSum":
        result = self.copy()
        for pauli, coefficient in other.items():
            result.add_pauli(pauli, -coefficient)
        return result

    def __mul__(self, other: "ComplexPauliSum") -> "ComplexPauliSum":
        result = ComplexPauliSum(self.num_qubits)
        for left, left_coefficient in self.items():
            for right, right_coefficient in other.items():
                result.add_pauli(left @ right, left_coefficient * right_coefficient)
        return result

    def scaled(self, factor: complex) -> "ComplexPauliSum":
        result = ComplexPauliSum(self.num_qubits)
        for pauli, coefficient in self.items():
            result.add_pauli(pauli, coefficient * factor)
        return result

    def adjoint(self) -> "ComplexPauliSum":
        result = ComplexPauliSum(self.num_qubits)
        for pauli, coefficient in self.items():
            result.add_pauli(pauli, np.conj(coefficient))
        return result

    def to_hermitian_sum(self, tolerance: float = 1e-10) -> SparsePauliSum:
        """Convert to a real-weighted sum; raises when any weight is not real."""
        terms = []
        for pauli, coefficient in self.items():
            if abs(coefficient.imag) > tolerance:
                raise WorkloadError(
                    f"operator is not Hermitian: coefficient {coefficient} on "
                    f"{pauli.to_label(include_sign=False)}"
                )
            terms.append(PauliTerm(pauli.copy(), float(coefficient.real)))
        if not terms:
            terms = [PauliTerm(PauliString.identity(self.num_qubits), 0.0)]
        return SparsePauliSum(terms)


class FermionicOperator:
    """A product of fermionic ladder operators, e.g. ``a_3^dag a_1``."""

    def __init__(self, factors: Sequence[tuple[int, bool]]):
        #: list of (mode, is_creation) pairs, applied right to left as operators
        self.factors = [(int(mode), bool(creation)) for mode, creation in factors]

    @classmethod
    def creation(cls, mode: int) -> "FermionicOperator":
        return cls([(mode, True)])

    @classmethod
    def annihilation(cls, mode: int) -> "FermionicOperator":
        return cls([(mode, False)])

    def __mul__(self, other: "FermionicOperator") -> "FermionicOperator":
        return FermionicOperator(self.factors + other.factors)

    def adjoint(self) -> "FermionicOperator":
        return FermionicOperator(
            [(mode, not creation) for mode, creation in reversed(self.factors)]
        )

    def __repr__(self) -> str:
        body = " ".join(
            f"a{mode}^" if creation else f"a{mode}" for mode, creation in self.factors
        )
        return f"FermionicOperator({body})"


def _jordan_wigner_ladder(mode: int, creation: bool, num_modes: int) -> ComplexPauliSum:
    """JW image of a single ladder operator."""
    if not 0 <= mode < num_modes:
        raise WorkloadError(f"mode {mode} outside 0..{num_modes - 1}")
    z_chain = [(lower, "Z") for lower in range(mode)]
    x_part = PauliString.from_sparse(num_modes, z_chain + [(mode, "X")])
    y_part = PauliString.from_sparse(num_modes, z_chain + [(mode, "Y")])
    result = ComplexPauliSum(num_modes)
    result.add_pauli(x_part, 0.5)
    result.add_pauli(y_part, -0.5j if creation else 0.5j)
    return result


def jordan_wigner(operator: FermionicOperator, num_modes: int) -> ComplexPauliSum:
    """Jordan–Wigner transform of a product of ladder operators."""
    result = ComplexPauliSum.from_pauli(PauliString.identity(num_modes), 1.0)
    for mode, creation in operator.factors:
        result = result * _jordan_wigner_ladder(mode, creation, num_modes)
    return result


def anti_hermitian_excitation(
    creation_modes: Iterable[int],
    annihilation_modes: Iterable[int],
    num_modes: int,
    amplitude: complex = 1.0,
) -> ComplexPauliSum:
    """JW image of ``t T - conj(t) T†`` for ``T = a†_{p1} a†_{p2} ... a_{q2} a_{q1}``."""
    factors: list[tuple[int, bool]] = [(mode, True) for mode in creation_modes]
    factors += [(mode, False) for mode in annihilation_modes]
    excitation = FermionicOperator(factors)
    forward = jordan_wigner(excitation, num_modes).scaled(amplitude)
    backward = jordan_wigner(excitation.adjoint(), num_modes).scaled(np.conj(amplitude))
    return forward - backward
