"""QAOA workload generators: MaxCut on graphs and the LABS problem.

Both workloads follow the structure evaluated in the paper: one QAOA layer
consisting of the problem Hamiltonian (``Z``/``I`` Pauli strings) followed by
the transverse-field mixer (one ``X`` rotation per qubit).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import WorkloadError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm


# ---------------------------------------------------------------------- #
# Graph helpers
# ---------------------------------------------------------------------- #
def regular_graph(num_nodes: int, degree: int, seed: int = 11) -> nx.Graph:
    """A random ``degree``-regular graph on ``num_nodes`` nodes."""
    if degree >= num_nodes:
        raise WorkloadError("the degree must be smaller than the node count")
    if (num_nodes * degree) % 2 != 0:
        raise WorkloadError("num_nodes * degree must be even for a regular graph")
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def random_graph(num_nodes: int, num_edges: int, seed: int = 11) -> nx.Graph:
    """A random graph with exactly ``num_edges`` edges (Erdos-Renyi G(n, m))."""
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise WorkloadError(f"at most {max_edges} edges fit on {num_nodes} nodes")
    return nx.gnm_random_graph(num_nodes, num_edges, seed=seed)


# ---------------------------------------------------------------------- #
# MaxCut
# ---------------------------------------------------------------------- #
def maxcut_hamiltonian(graph: nx.Graph) -> SparsePauliSum:
    """The MaxCut problem Hamiltonian ``sum_(i,j) 0.5 (1 - Z_i Z_j)`` minus constants."""
    num_qubits = graph.number_of_nodes()
    if num_qubits < 2:
        raise WorkloadError("MaxCut needs at least two nodes")
    terms = [
        PauliTerm(
            PauliString.from_sparse(num_qubits, [(int(first), "Z"), (int(second), "Z")]),
            0.5,
        )
        for first, second in graph.edges
    ]
    if not terms:
        raise WorkloadError("the graph has no edges")
    return SparsePauliSum(terms)


def maxcut_qaoa_terms(
    graph: nx.Graph, gamma: float = 0.8, beta: float = 0.4, layers: int = 1
) -> list[PauliTerm]:
    """One or more QAOA layers for MaxCut on ``graph``."""
    num_qubits = graph.number_of_nodes()
    problem = [
        PauliTerm(
            PauliString.from_sparse(num_qubits, [(int(first), "Z"), (int(second), "Z")]),
            gamma,
        )
        for first, second in graph.edges
    ]
    mixer = [
        PauliTerm(PauliString.single(num_qubits, qubit, "X"), beta)
        for qubit in range(num_qubits)
    ]
    terms: list[PauliTerm] = []
    for _ in range(max(1, layers)):
        terms.extend(problem)
        terms.extend(mixer)
    return terms


def cut_value(graph: nx.Graph, bitstring: str) -> int:
    """Number of cut edges for an assignment given as a bitstring (qubit 0 rightmost)."""
    num_qubits = graph.number_of_nodes()
    if len(bitstring) != num_qubits:
        raise WorkloadError("bitstring length must equal the node count")
    assignment = {qubit: bitstring[num_qubits - 1 - qubit] for qubit in range(num_qubits)}
    return sum(1 for first, second in graph.edges if assignment[first] != assignment[second])


# ---------------------------------------------------------------------- #
# LABS (Low Autocorrelation Binary Sequences)
# ---------------------------------------------------------------------- #
def labs_hamiltonian(num_qubits: int) -> SparsePauliSum:
    """The LABS sidelobe-energy Hamiltonian ``sum_k C_k(s)^2`` as Pauli ``Z`` strings.

    ``C_k = sum_i s_i s_{i+k}`` with ``s_i = +/-1``; squaring produces two- and
    four-body ``Z`` terms (plus an additive constant that is dropped).
    """
    if num_qubits < 3:
        raise WorkloadError("LABS needs at least three qubits")
    accumulator: dict[tuple[int, ...], float] = {}

    def add(indices: tuple[int, ...], weight: float) -> None:
        # s_i^2 = 1: keep only indices that appear an odd number of times.
        counts: dict[int, int] = {}
        for index in indices:
            counts[index] = counts.get(index, 0) + 1
        support = tuple(sorted(index for index, count in counts.items() if count % 2 == 1))
        if not support:
            return
        accumulator[support] = accumulator.get(support, 0.0) + weight

    for offset in range(1, num_qubits):
        pairs = [(i, i + offset) for i in range(num_qubits - offset)]
        for first_index, first_pair in enumerate(pairs):
            for second_pair in pairs[first_index:]:
                weight = 1.0 if first_pair == second_pair else 2.0
                add(first_pair + second_pair, weight)

    terms = [
        PauliTerm(
            PauliString.from_sparse(num_qubits, [(index, "Z") for index in support]), weight
        )
        for support, weight in sorted(accumulator.items())
        if abs(weight) > 1e-12
    ]
    if not terms:
        raise WorkloadError("LABS Hamiltonian collapsed to a constant")
    return SparsePauliSum(terms)


def labs_qaoa_terms(
    num_qubits: int, gamma: float = 0.3, beta: float = 0.5, layers: int = 1
) -> list[PauliTerm]:
    """One or more QAOA layers for the LABS problem."""
    problem_hamiltonian = labs_hamiltonian(num_qubits)
    problem = [
        PauliTerm(term.pauli.copy(), gamma * term.coefficient)
        for term in problem_hamiltonian
    ]
    mixer = [
        PauliTerm(PauliString.single(num_qubits, qubit, "X"), beta)
        for qubit in range(num_qubits)
    ]
    terms: list[PauliTerm] = []
    for _ in range(max(1, layers)):
        terms.extend(problem)
        terms.extend(mixer)
    return terms


def labs_energy(bitstring: str) -> int:
    """Exact LABS sidelobe energy of a bitstring (qubit 0 rightmost)."""
    spins = [1 if bit == "0" else -1 for bit in reversed(bitstring)]
    length = len(spins)
    return sum(
        sum(spins[i] * spins[i + offset] for i in range(length - offset)) ** 2
        for offset in range(1, length)
    )


def labs_statistics(num_qubits: int) -> dict[str, int]:
    """Term counts used by the benchmark registry."""
    problem = labs_hamiltonian(num_qubits)
    return {
        "num_qubits": num_qubits,
        "problem_terms": len(problem),
        "qaoa_terms": len(problem) + num_qubits,
    }
