"""Synthetic molecular Hamiltonians for the Hamiltonian-simulation benchmarks.

The paper's LiH, H2O and benzene benchmarks are built from electronic-
structure integrals computed with quantum-chemistry packages that are not
available offline.  QuCLEAR's behaviour, however, depends only on the
*structure* of the Pauli strings (qubit count, weight distribution,
commutation relations), not on the physical coefficient values.  This module
therefore generates seeded synthetic Hamiltonians that mimic the
Jordan–Wigner structure of molecular Hamiltonians:

* single-qubit ``Z`` terms (orbital energies),
* ``Z Z`` pairs (Coulomb/exchange terms),
* hopping strings ``X Z..Z X`` + ``Y Z..Z Y`` between orbital pairs,
* two-electron strings of weight four mixing ``X``/``Y`` on four orbitals with
  a ``Z`` chain in between,

drawn until the published term count for each molecule is reached.  The
substitution is recorded in ``DESIGN.md``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

#: published (qubit count, Pauli-term count) per molecule (paper Table II)
MOLECULE_SPECIFICATIONS: dict[str, tuple[int, int]] = {
    "LiH": (6, 61),
    "H2O": (8, 184),
    "benzene": (12, 1254),
}


def _hopping_string(num_qubits: int, first: int, second: int, letter: str) -> PauliString:
    """A JW hopping string: ``letter`` on the endpoints, ``Z`` chain between."""
    low, high = sorted((first, second))
    ops = [(low, letter), (high, letter)] + [(q, "Z") for q in range(low + 1, high)]
    return PauliString.from_sparse(num_qubits, ops)


def _double_excitation_string(
    num_qubits: int, orbitals: tuple[int, int, int, int], letters: tuple[str, str, str, str]
) -> PauliString:
    ops = list(zip(orbitals, letters))
    chain = [
        (q, "Z")
        for q in range(min(orbitals) + 1, max(orbitals))
        if q not in orbitals
    ]
    return PauliString.from_sparse(num_qubits, ops + chain)


def synthetic_electronic_hamiltonian(
    num_qubits: int, num_terms: int, seed: int = 2024
) -> SparsePauliSum:
    """A seeded Hamiltonian with Jordan–Wigner-like term structure."""
    if num_qubits < 2:
        raise WorkloadError("an electronic Hamiltonian needs at least two qubits")
    if num_terms < 1:
        raise WorkloadError("the Hamiltonian needs at least one term")
    target_terms = num_terms
    rng = np.random.default_rng(seed)

    seen: set[str] = set()
    terms: list[PauliTerm] = []

    def push(pauli: PauliString, scale: float) -> None:
        label = pauli.to_label(include_sign=False)
        if label in seen or pauli.is_identity():
            return
        seen.add(label)
        terms.append(PauliTerm(pauli, float(rng.normal(0.0, scale))))

    # Orbital energies and pair interactions first (always present).
    for qubit in range(num_qubits):
        push(PauliString.single(num_qubits, qubit, "Z"), 0.5)
    for first in range(num_qubits):
        for second in range(first + 1, num_qubits):
            push(
                PauliString.from_sparse(num_qubits, [(first, "Z"), (second, "Z")]), 0.25
            )
            if len(terms) >= target_terms:
                return SparsePauliSum(terms[:target_terms])

    # Hopping and double-excitation strings until the published size is reached.
    while len(terms) < target_terms:
        kind = rng.random()
        if kind < 0.4:
            first, second = sorted(rng.choice(num_qubits, size=2, replace=False))
            letter = "X" if rng.random() < 0.5 else "Y"
            push(_hopping_string(num_qubits, int(first), int(second), letter), 0.1)
        else:
            orbitals = tuple(int(q) for q in rng.choice(num_qubits, size=4, replace=False))
            letters = tuple(rng.choice(["X", "Y"], size=4))
            if list(letters).count("Y") % 2 != 0:
                # JW two-electron terms always carry an even number of Y's.
                continue
            push(_double_excitation_string(num_qubits, orbitals, letters), 0.05)
    return SparsePauliSum(terms[:target_terms])


def molecular_hamiltonian(
    molecule: str, seed: int = 2024, num_terms: int | None = None
) -> SparsePauliSum:
    """A synthetic molecular Hamiltonian with the published size for ``molecule``."""
    if molecule not in MOLECULE_SPECIFICATIONS:
        raise WorkloadError(
            f"unknown molecule {molecule!r}; choose one of {sorted(MOLECULE_SPECIFICATIONS)}"
        )
    num_qubits, published_terms = MOLECULE_SPECIFICATIONS[molecule]
    target_terms = num_terms if num_terms is not None else published_terms
    return synthetic_electronic_hamiltonian(num_qubits, target_terms, seed=seed)


def hamiltonian_simulation_terms(
    molecule: str, time: float = 1.0, seed: int = 2024
) -> list[PauliTerm]:
    """Rotation program for one Trotter step of ``exp(-i H t)``."""
    from repro.synthesis.trotter import rotation_terms_from_hamiltonian

    hamiltonian = molecular_hamiltonian(molecule, seed=seed)
    return rotation_terms_from_hamiltonian(hamiltonian, time=time)
