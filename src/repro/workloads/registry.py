"""The named benchmark suite of the paper (Table II).

Every entry resolves lazily to a Pauli-rotation program (and, for chemistry
benchmarks, to the observable set measured by VQE).  The published qubit and
Pauli counts are kept alongside so that the Table II reproduction can report
"paper vs. measured" in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import WorkloadError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.workloads.molecules import (
    hamiltonian_simulation_terms,
    molecular_hamiltonian,
    synthetic_electronic_hamiltonian,
)
from repro.workloads.qaoa import (
    labs_qaoa_terms,
    maxcut_qaoa_terms,
    random_graph,
    regular_graph,
)
from repro.workloads.uccsd import uccsd_ansatz_terms


@dataclass
class Benchmark:
    """One row of the paper's Table II."""

    name: str
    category: str
    num_qubits: int
    #: published number of Pauli rotations (Table II "#Pauli")
    paper_num_paulis: int
    #: published native CNOT count (Table II "#CNOT")
    paper_num_cnots: int
    #: the measurement style the workload needs ("observables" or "probabilities")
    measurement: str
    _terms_factory: Callable[[], list[PauliTerm]] = field(repr=False)
    _observables_factory: Callable[[], SparsePauliSum] | None = field(default=None, repr=False)

    def terms(self) -> list[PauliTerm]:
        """The Pauli-rotation program of this benchmark."""
        return self._terms_factory()

    def observables(self) -> SparsePauliSum:
        """The observable set (chemistry benchmarks only)."""
        if self._observables_factory is None:
            raise WorkloadError(f"benchmark {self.name!r} is measured in the computational basis")
        return self._observables_factory()


def _uccsd_entry(name: str, electrons: int, orbitals: int, paulis: int, cnots: int) -> Benchmark:
    return Benchmark(
        name=name,
        category="UCCSD",
        num_qubits=orbitals,
        paper_num_paulis=paulis,
        paper_num_cnots=cnots,
        measurement="observables",
        _terms_factory=lambda: uccsd_ansatz_terms(electrons, orbitals),
        # VQE measures a molecular Hamiltonian on the same register; a seeded
        # synthetic Hamiltonian with ~2 n^2 terms stands in for it.
        _observables_factory=lambda: synthetic_electronic_hamiltonian(
            orbitals, 2 * orbitals * orbitals
        ),
    )


def _molecule_entry(name: str, paulis: int, cnots: int) -> Benchmark:
    molecule_qubits = {"LiH": 6, "H2O": 8, "benzene": 12}
    return Benchmark(
        name=name,
        category="Hamiltonian simulation",
        num_qubits=molecule_qubits[name],
        paper_num_paulis=paulis,
        paper_num_cnots=cnots,
        measurement="observables",
        _terms_factory=lambda: hamiltonian_simulation_terms(name),
        _observables_factory=lambda: molecular_hamiltonian(name),
    )


def _labs_entry(name: str, num_qubits: int, paulis: int, cnots: int) -> Benchmark:
    return Benchmark(
        name=name,
        category="QAOA LABS",
        num_qubits=num_qubits,
        paper_num_paulis=paulis,
        paper_num_cnots=cnots,
        measurement="probabilities",
        _terms_factory=lambda: labs_qaoa_terms(num_qubits),
    )


def _maxcut_regular_entry(
    name: str, num_qubits: int, degree: int, paulis: int, cnots: int
) -> Benchmark:
    return Benchmark(
        name=name,
        category="QAOA MaxCut",
        num_qubits=num_qubits,
        paper_num_paulis=paulis,
        paper_num_cnots=cnots,
        measurement="probabilities",
        _terms_factory=lambda: maxcut_qaoa_terms(regular_graph(num_qubits, degree)),
    )


def _maxcut_random_entry(
    name: str, num_qubits: int, num_edges: int, paulis: int, cnots: int
) -> Benchmark:
    return Benchmark(
        name=name,
        category="QAOA MaxCut",
        num_qubits=num_qubits,
        paper_num_paulis=paulis,
        paper_num_cnots=cnots,
        measurement="probabilities",
        _terms_factory=lambda: maxcut_qaoa_terms(random_graph(num_qubits, num_edges)),
    )


_BENCHMARKS: dict[str, Benchmark] = {
    benchmark.name: benchmark
    for benchmark in [
        _uccsd_entry("UCC-(2,4)", 2, 4, 24, 128),
        _uccsd_entry("UCC-(2,6)", 2, 6, 80, 544),
        _uccsd_entry("UCC-(4,8)", 4, 8, 320, 2624),
        _uccsd_entry("UCC-(6,12)", 6, 12, 1656, 18048),
        _uccsd_entry("UCC-(8,16)", 8, 16, 5376, 72960),
        _uccsd_entry("UCC-(10,20)", 10, 20, 13400, 217600),
        _molecule_entry("LiH", 61, 254),
        _molecule_entry("H2O", 184, 1088),
        _molecule_entry("benzene", 1254, 10060),
        _labs_entry("LABS-(n10)", 10, 80, 340),
        _labs_entry("LABS-(n15)", 15, 267, 1316),
        _labs_entry("LABS-(n20)", 20, 635, 3330),
        _maxcut_regular_entry("MaxCut-(n15, r4)", 15, 4, 45, 60),
        _maxcut_regular_entry("MaxCut-(n20, r4)", 20, 4, 60, 80),
        _maxcut_regular_entry("MaxCut-(n20, r8)", 20, 8, 100, 160),
        _maxcut_regular_entry("MaxCut-(n20, r12)", 20, 12, 140, 240),
        _maxcut_random_entry("MaxCut-(n10, e12)", 10, 12, 22, 24),
        _maxcut_random_entry("MaxCut-(n15, e63)", 15, 63, 78, 126),
        _maxcut_random_entry("MaxCut-(n20, e117)", 20, 117, 137, 234),
    ]
}

#: benchmarks small enough to recompile in seconds; used as the default set of
#: the pytest-benchmark harness (the full set is enabled with REPRO_FULL=1)
SMALL_BENCHMARKS = [
    "UCC-(2,4)",
    "UCC-(2,6)",
    "LiH",
    "H2O",
    "LABS-(n10)",
    "MaxCut-(n15, r4)",
    "MaxCut-(n10, e12)",
    "MaxCut-(n15, e63)",
]

#: mid-size benchmarks added by the "medium" tier
MEDIUM_BENCHMARKS = SMALL_BENCHMARKS + [
    "UCC-(4,8)",
    "LABS-(n15)",
    "MaxCut-(n20, r4)",
    "MaxCut-(n20, r8)",
    "MaxCut-(n20, r12)",
    "MaxCut-(n20, e117)",
]


def list_benchmarks(category: str | None = None) -> list[Benchmark]:
    """All benchmarks, optionally filtered by category."""
    benchmarks = list(_BENCHMARKS.values())
    if category is not None:
        benchmarks = [b for b in benchmarks if b.category == category]
    return benchmarks


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by its Table II name."""
    try:
        return _BENCHMARKS[name]
    except KeyError as error:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: {sorted(_BENCHMARKS)}"
        ) from error


def benchmark_names() -> list[str]:
    return list(_BENCHMARKS)
