"""Measurement grouping for absorbed observables.

Section VI-A of the paper notes that because Clifford conjugation preserves
commutation relations, the absorbed observables can still be grouped with the
standard commutation-based measurement-reduction techniques.  This module
implements greedy qubit-wise-commuting grouping: observables that commute
qubit by qubit can be estimated from the *same* measurement histogram, which
reduces the number of circuit executions from one per observable to one per
group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.absorption import AbsorbedObservable
from repro.exceptions import AbsorptionError
from repro.paulis.pauli import PauliString


def qubitwise_commute(first: PauliString, second: PauliString) -> bool:
    """True when the two Paulis commute qubit by qubit (same or identity letter)."""
    if first.num_qubits != second.num_qubits:
        raise AbsorptionError("observables act on different register sizes")
    for qubit in range(first.num_qubits):
        first_letter = first.letter(qubit)
        second_letter = second.letter(qubit)
        if first_letter != "I" and second_letter != "I" and first_letter != second_letter:
            return False
    return True


@dataclass
class MeasurementGroup:
    """A set of qubit-wise commuting observables measured from one histogram."""

    members: list[AbsorbedObservable] = field(default_factory=list)

    @property
    def num_qubits(self) -> int:
        return self.members[0].updated.num_qubits

    def accepts(self, candidate: AbsorbedObservable) -> bool:
        return all(
            qubitwise_commute(candidate.updated, member.updated) for member in self.members
        )

    def add(self, candidate: AbsorbedObservable) -> None:
        if self.members and not self.accepts(candidate):
            raise AbsorptionError("observable does not qubit-wise commute with the group")
        self.members.append(candidate)

    # ------------------------------------------------------------------ #
    def combined_basis(self) -> PauliString:
        """The per-qubit measurement basis covering every member."""
        letters = ["I"] * self.num_qubits
        for member in self.members:
            for qubit in member.updated.support:
                letters[qubit] = member.updated.letter(qubit)
        return PauliString.from_sparse(
            self.num_qubits,
            [(qubit, letter) for qubit, letter in enumerate(letters) if letter != "I"],
        )

    def measurement_circuit(self) -> QuantumCircuit:
        """CA-Pre for the whole group: one basis-rotation circuit."""
        basis = self.combined_basis()
        circuit = QuantumCircuit(self.num_qubits)
        for qubit in range(self.num_qubits):
            letter = basis.letter(qubit)
            if letter == "X":
                circuit.h(qubit)
            elif letter == "Y":
                circuit.sdg(qubit)
                circuit.h(qubit)
        return circuit

    def expectations_from_counts(self, counts: Mapping[str, int]) -> list[float]:
        """CA-Post: expectation value of every member from the shared histogram."""
        total = sum(counts.values())
        if total == 0:
            raise AbsorptionError("empty measurement histogram")
        values = []
        for member in self.members:
            support = member.updated.support
            accumulator = 0
            for bitstring, count in counts.items():
                parity = 0
                for qubit in support:
                    if bitstring[len(bitstring) - 1 - qubit] == "1":
                        parity ^= 1
                accumulator += count * (1 - 2 * parity)
            values.append(member.sign * accumulator / total)
        return values


def group_observables(observables: Sequence[AbsorbedObservable]) -> list[MeasurementGroup]:
    """Greedy first-fit grouping of qubit-wise commuting absorbed observables."""
    groups: list[MeasurementGroup] = []
    for observable in observables:
        for group in groups:
            if group.accepts(observable):
                group.add(observable)
                break
        else:
            fresh = MeasurementGroup()
            fresh.add(observable)
            groups.append(fresh)
    return groups


def measurement_savings(observables: Sequence[AbsorbedObservable]) -> dict[str, int]:
    """How many circuit executions grouping saves for a set of observables."""
    groups = group_observables(observables)
    return {
        "num_observables": len(observables),
        "num_groups": len(groups),
        "saved_executions": len(observables) - len(groups),
    }
