"""Partitioning of a Pauli-rotation sequence into commuting blocks.

QuCLEAR only reorders Pauli strings *inside* a block of mutually commuting
strings; the blocks themselves stay in program order.  This keeps the
optimization free of any high-level knowledge about the benchmark (unlike
Paulihedral, which also reorders blocks).
"""

from __future__ import annotations

from typing import Sequence

from repro.paulis.term import PauliTerm


def convert_commute_sets(terms: Sequence[PauliTerm]) -> list[list[PauliTerm]]:
    """Greedy split of ``terms`` into maximal runs of mutually commuting strings.

    Scanning the sequence in order, a term joins the current block when it
    commutes with every string already in the block; otherwise it starts a
    new block.  The concatenation of the returned blocks is a permutation-free
    copy of the input (order inside blocks is preserved here; reordering
    happens later during extraction).
    """
    blocks: list[list[PauliTerm]] = []
    current: list[PauliTerm] = []
    for term in terms:
        if current and not all(
            term.pauli.commutes_with(member.pauli) for member in current
        ):
            blocks.append(current)
            current = []
        current.append(term)
    if current:
        blocks.append(current)
    return blocks


def count_commuting_blocks(terms: Sequence[PauliTerm]) -> int:
    """Number of commuting blocks the sequence splits into."""
    return len(convert_commute_sets(terms))
