"""Partitioning of a Pauli-rotation sequence into commuting blocks.

QuCLEAR only reorders Pauli strings *inside* a block of mutually commuting
strings; the blocks themselves stay in program order.  This keeps the
optimization free of any high-level knowledge about the benchmark (unlike
Paulihedral, which also reorders blocks).

The scan runs over the bit-packed symplectic form: the commutation test of
one string against the whole current block is a single popcount expression
over ``uint64`` words instead of a Python loop over block members.
"""

from __future__ import annotations

from typing import Sequence

from repro.paulis.packed import PackedPauliTable
from repro.paulis.term import PauliTerm


def commuting_block_bounds(table: PackedPauliTable) -> list[int]:
    """Greedy commuting-block boundaries of a packed Pauli program.

    Returns the block start offsets plus the final row count, so block ``k``
    is the row range ``[bounds[k], bounds[k + 1])``.  This is the table-native
    form the packed extractor consumes — no term objects are materialized.
    The scan runs on the table's array backend.
    """
    be = table.backend
    x_words, z_words = table.x_words, table.z_words
    bounds = [0]
    start = 0
    for index in range(1, len(table)):
        overlap = be.popcount_rows(
            be.bxor(
                be.band(x_words[index], z_words[start:index]),
                be.band(z_words[index], x_words[start:index]),
            )
        )
        if be.any(be.band(overlap, 1)):
            bounds.append(index)
            start = index
    bounds.append(len(table))
    return bounds


def convert_commute_sets(terms: Sequence[PauliTerm]) -> list[list[PauliTerm]]:
    """Greedy split of ``terms`` into maximal runs of mutually commuting strings.

    Scanning the sequence in order, a term joins the current block when it
    commutes with every string already in the block; otherwise it starts a
    new block.  The concatenation of the returned blocks is a permutation-free
    copy of the input (order inside blocks is preserved here; reordering
    happens later during extraction).
    """
    term_list = list(terms)
    if not term_list:
        return []
    table = PackedPauliTable.from_paulis(t.pauli for t in term_list)
    bounds = commuting_block_bounds(table)
    return [term_list[a:b] for a, b in zip(bounds, bounds[1:])]


def count_commuting_blocks(terms: Sequence[PauliTerm]) -> int:
    """Number of commuting blocks the sequence splits into."""
    return len(convert_commute_sets(terms))
