"""The original per-term Clifford Extraction loop — kept as ground truth.

This is the pre-table-native implementation of Algorithm 2: it walks the
program one :class:`~repro.paulis.term.PauliTerm` at a time, re-conjugating
every Pauli it needs (the current term, each reordering candidate, each
lookahead string) through an incrementally grown
:class:`~repro.clifford.tableau.CliffordTableau`.

It is deliberately preserved, unoptimized, next to the table-native
:class:`~repro.core.extraction.CliffordExtractor`: the equivalence test suite
(``tests/test_core/test_extraction_equivalence.py``) diffs the two
bit-for-bit — same optimized circuit, same extracted tail, same tableau
content — on randomized programs, so any behavioural drift in the fast path
is caught against this reference.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.clifford.tableau import CliffordTableau
from repro.core.commuting import convert_commute_sets
from repro.core.tree_synthesis import synthesize_tree
from repro.exceptions import SynthesisError
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.synthesis.pauli_rotation import basis_change_gates


class LegacyCliffordExtractor:
    """Per-term Clifford Extraction (the reference implementation).

    Accepts the same feature flags as the table-native
    :class:`~repro.core.extraction.CliffordExtractor` and produces a
    bit-identical :class:`~repro.core.extraction.ExtractionResult`.
    """

    def __init__(
        self,
        reorder_within_blocks: bool = True,
        recursive_tree: bool = True,
        cross_block_lookahead: bool = True,
        max_lookahead: int | None = None,
    ):
        self.reorder_within_blocks = reorder_within_blocks
        self.recursive_tree = recursive_tree
        self.cross_block_lookahead = cross_block_lookahead
        self.max_lookahead = max_lookahead

    # ------------------------------------------------------------------ #
    def extract(
        self,
        terms: Sequence[PauliTerm],
        blocks: list[list[PauliTerm]] | None = None,
    ):
        """Run the reference per-term extraction over a Pauli-rotation program."""
        from repro.core.extraction import ExtractionResult, _conjugate_through_gates

        term_list = list(terms)
        if not term_list:
            raise SynthesisError("cannot extract from an empty Pauli program")
        num_qubits = term_list[0].num_qubits
        for term in term_list:
            if term.num_qubits != num_qubits:
                raise SynthesisError("all Pauli terms must act on the same qubit count")

        start = time.perf_counter()
        tableau = CliffordTableau(num_qubits)
        optimized = QuantumCircuit(num_qubits)
        left_halves = QuantumCircuit(num_qubits)
        rotation_count = 0

        if blocks is None:
            blocks = convert_commute_sets(term_list)
        for block_index, block in enumerate(blocks):
            block = list(block)
            for position in range(len(block)):
                current_term = block[position]
                current = tableau.conjugate(current_term.pauli)
                if current.is_identity():
                    # exp(-i theta/2 I) is a global phase; nothing to emit.
                    continue
                if not current.is_hermitian():
                    raise SynthesisError(
                        f"term {current_term!r} conjugated to a non-Hermitian Pauli"
                    )
                support = current.support
                basis_gates = basis_change_gates(current)
                for gate in basis_gates:
                    tableau.append_gate(gate)

                if self.reorder_within_blocks and position + 1 < len(block):
                    best = self._find_next_pauli(block, position, support, tableau)
                    if best is not None and best != position + 1:
                        block.insert(position + 1, block.pop(best))

                lookahead_cache: dict[int, PauliString] = {}
                upcoming_term = self._make_upcoming_getter(blocks, block, block_index, position)

                def lookahead(depth: int) -> PauliString | None:
                    if depth not in lookahead_cache:
                        term = upcoming_term(depth)
                        if term is None:
                            return None
                        lookahead_cache[depth] = tableau.conjugate(term.pauli)
                    return lookahead_cache.get(depth)

                tree_gates, root = synthesize_tree(
                    support,
                    lookahead,
                    recursive=self.recursive_tree,
                    max_depth=self.max_lookahead,
                )

                final = _conjugate_through_gates(current, basis_gates + tree_gates)
                expected = PauliString.single(num_qubits, root, "Z")
                if not final.equals_up_to_phase(expected):
                    raise SynthesisError(
                        "internal error: the synthesized tree does not reduce the "
                        f"current Pauli to Z on its root (got {final.to_label()!r})"
                    )
                angle = current_term.coefficient
                if final.sign == -1:
                    angle = -angle

                optimized.extend(basis_gates)
                optimized.extend(tree_gates)
                optimized.rz(angle, root)
                rotation_count += 1

                for gate in tree_gates:
                    tableau.append_gate(gate)
                left_halves.extend(basis_gates)
                left_halves.extend(tree_gates)

        extracted = left_halves.inverse()
        elapsed = time.perf_counter() - start
        return ExtractionResult(
            optimized_circuit=optimized,
            extracted_clifford=extracted,
            conjugation=tableau,
            terms=term_list,
            rotation_count=rotation_count,
            elapsed_seconds=elapsed,
            metadata={
                "num_blocks": len(blocks),
                "reorder_within_blocks": self.reorder_within_blocks,
                "recursive_tree": self.recursive_tree,
            },
        )

    # ------------------------------------------------------------------ #
    def _make_upcoming_getter(
        self,
        blocks: list[list[PauliTerm]],
        block: list[PauliTerm],
        block_index: int,
        position: int,
    ):
        """Lazy access to the term ``depth`` positions after the current one.

        Avoids flattening the whole remaining program on every step (which
        would be quadratic in the program length); lookahead depths are
        bounded by the qubit count, so walking block by block is cheap.
        """

        def upcoming_term(depth: int) -> PauliTerm | None:
            remaining_in_block = len(block) - (position + 1)
            if depth < remaining_in_block:
                return block[position + 1 + depth]
            if not self.cross_block_lookahead:
                return None
            offset = depth - remaining_in_block
            for later_block in blocks[block_index + 1 :]:
                if offset < len(later_block):
                    return later_block[offset]
                offset -= len(later_block)
            return None

        return upcoming_term

    # ------------------------------------------------------------------ #
    def _find_next_pauli(
        self,
        block: list[PauliTerm],
        position: int,
        support: list[int],
        tableau: CliffordTableau,
    ) -> int | None:
        """Greedy choice of the string to place right after the current one.

        The cost of a candidate is its weight after conjugation by the
        Clifford extracted so far, the current string's basis layer, and a
        non-recursive CNOT tree built for the current string using the
        candidate as the only guide (the cheap cost model of Algorithm 2).
        """
        from repro.core.extraction import _conjugate_through_gates

        best_index: int | None = None
        best_cost: int | None = None
        for candidate_index in range(position + 1, len(block)):
            guide = tableau.conjugate(block[candidate_index].pauli)
            tree_gates, _ = synthesize_tree(
                support, lambda depth: guide if depth == 0 else None, recursive=False
            )
            optimized_guide = _conjugate_through_gates(guide, tree_gates)
            cost = optimized_guide.weight
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = candidate_index
        return best_index
