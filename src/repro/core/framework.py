"""The legacy end-to-end QuCLEAR compiler object (Fig. 6 of the paper).

.. deprecated::
    The hard-coded chain that used to live here is now the composable
    pass pipeline of :mod:`repro.compiler`.  :class:`QuCLEAR` remains as a
    thin facade over the preset pipeline so existing code keeps working —
    new code should call :func:`repro.compile` or use the
    :class:`~repro.compiler.registry.CompilerRegistry` directly.

The unified :class:`~repro.compiler.result.CompilationResult` is re-exported
here under its historical import path.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.compiler.result import CompilationResult
from repro.core.extraction import CliffordExtractor
from repro.exceptions import SynthesisError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

__all__ = ["CompilationResult", "QuCLEAR"]


class QuCLEAR:
    """Deprecated facade over the QuCLEAR preset pipeline.

    Equivalent to ``repro.compile(terms, level=3)`` (minus the device-routing
    and absorption-preparation passes, which were never part of this object).

    Parameters
    ----------
    reorder_within_blocks:
        Enable greedy reordering inside commuting blocks.
    recursive_tree:
        Enable the recursive CNOT-tree synthesis heuristic.
    cross_block_lookahead:
        Let the last string of a block be guided by later blocks.
    local_optimize:
        Run the peephole pass (the "Qiskit O3" stand-in) on the optimized
        circuit after extraction.
    max_lookahead:
        Optional cap on the tree-synthesis lookahead depth.
    """

    def __init__(
        self,
        reorder_within_blocks: bool = True,
        recursive_tree: bool = True,
        cross_block_lookahead: bool = True,
        local_optimize: bool = True,
        max_lookahead: int | None = None,
    ):
        warnings.warn(
            "QuCLEAR(...) is deprecated; use repro.compile(terms, level=3) or "
            "repro.compiler.quclear_pipeline(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.local_optimize = local_optimize
        # the extractor stays the single source of truth, as it was before the
        # pipeline refactor: code that mutates (or swaps) it still takes effect
        self.extractor = CliffordExtractor(
            reorder_within_blocks=reorder_within_blocks,
            recursive_tree=recursive_tree,
            cross_block_lookahead=cross_block_lookahead,
            max_lookahead=max_lookahead,
        )

    @property
    def pipeline(self):
        """The equivalent :class:`~repro.compiler.pipeline.Pipeline`, built
        from the current state of :attr:`extractor`."""
        from repro.compiler.passes import CliffordExtraction, GroupCommuting, Peephole
        from repro.compiler.pipeline import Pipeline

        passes = [GroupCommuting(), CliffordExtraction(extractor=self.extractor)]
        if self.local_optimize:
            passes.append(Peephole())
        return Pipeline(passes, name="quclear")

    # ------------------------------------------------------------------ #
    def compile(
        self, terms: Sequence[PauliTerm] | SparsePauliSum
    ) -> CompilationResult:
        """Compile a Pauli-rotation program (CE module plus local optimization)."""
        term_list = list(terms)
        if not term_list:
            # historical behavior: the extractor raised SynthesisError here
            raise SynthesisError("cannot extract from an empty Pauli program")
        result = self.pipeline.run(term_list)
        result.metadata["local_optimize"] = self.local_optimize
        return result

    def compile_hamiltonian(
        self, hamiltonian: SparsePauliSum, time_step: float = 1.0, repetitions: int = 1
    ) -> CompilationResult:
        """Compile a first-order Trotter step of ``exp(-i H t)``."""
        from repro.synthesis.trotter import rotation_terms_from_hamiltonian

        terms = rotation_terms_from_hamiltonian(hamiltonian, time=time_step, repetitions=repetitions)
        return self.compile(terms)
