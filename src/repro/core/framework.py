"""The end-to-end QuCLEAR compiler (Fig. 6 of the paper).

The framework chains the Clifford Extraction module, an optional local
(peephole) optimization pass standing in for Qiskit optimization level 3, and
the Clifford Absorption pre/post modules.  It exposes one ``compile`` call for
circuit optimization plus helpers that carry out the full hybrid
quantum-classical workflow used by the examples and the evaluation harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.absorption import (
    AbsorbedObservable,
    ObservableAbsorber,
    ProbabilityAbsorber,
    build_probability_absorber,
)
from repro.core.extraction import CliffordExtractor, ExtractionResult
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.transpile.peephole import peephole_optimize


@dataclass
class CompilationResult:
    """Everything produced by one QuCLEAR compilation."""

    #: the circuit to execute on quantum hardware
    circuit: QuantumCircuit
    #: the Clifford tail that Clifford Absorption handles classically
    extracted_clifford: QuantumCircuit
    #: the underlying extraction result (conjugation tableau, metadata, ...)
    extraction: ExtractionResult
    #: wall-clock compile time in seconds (extraction + local optimization)
    compile_seconds: float
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    def cx_count(self) -> int:
        return self.circuit.cx_count()

    def entangling_depth(self) -> int:
        return self.circuit.entangling_depth()

    def metrics(self) -> dict[str, float]:
        """The metrics reported in the paper's Table III."""
        return {
            "cx_count": self.circuit.cx_count(),
            "entangling_depth": self.circuit.entangling_depth(),
            "single_qubit_count": self.circuit.single_qubit_count(),
            "compile_seconds": self.compile_seconds,
        }

    # ------------------------------------------------------------------ #
    def observable_absorber(self) -> ObservableAbsorber:
        """CA module for observable (expectation-value) workloads."""
        return ObservableAbsorber(self.extraction.conjugation)

    def absorb_observables(
        self, observables: Iterable[PauliString] | SparsePauliSum
    ) -> list[AbsorbedObservable]:
        absorber = self.observable_absorber()
        if isinstance(observables, SparsePauliSum):
            return [absorber.absorb_pauli(term.pauli) for term in observables]
        return absorber.absorb_all(observables)

    def probability_absorber(self) -> ProbabilityAbsorber:
        """CA module for probability-distribution (QAOA) workloads."""
        return build_probability_absorber(self.extracted_clifford)


class QuCLEAR:
    """The QuCLEAR compilation framework.

    Parameters
    ----------
    reorder_within_blocks:
        Enable greedy reordering inside commuting blocks.
    recursive_tree:
        Enable the recursive CNOT-tree synthesis heuristic.
    cross_block_lookahead:
        Let the last string of a block be guided by later blocks.
    local_optimize:
        Run the peephole pass (the "Qiskit O3" stand-in) on the optimized
        circuit after extraction.
    max_lookahead:
        Optional cap on the tree-synthesis lookahead depth.
    """

    def __init__(
        self,
        reorder_within_blocks: bool = True,
        recursive_tree: bool = True,
        cross_block_lookahead: bool = True,
        local_optimize: bool = True,
        max_lookahead: int | None = None,
    ):
        self.local_optimize = local_optimize
        self.extractor = CliffordExtractor(
            reorder_within_blocks=reorder_within_blocks,
            recursive_tree=recursive_tree,
            cross_block_lookahead=cross_block_lookahead,
            max_lookahead=max_lookahead,
        )

    # ------------------------------------------------------------------ #
    def compile(
        self, terms: Sequence[PauliTerm] | SparsePauliSum
    ) -> CompilationResult:
        """Compile a Pauli-rotation program (CE module plus local optimization)."""
        term_list = list(terms)
        start = time.perf_counter()
        extraction = self.extractor.extract(term_list)
        circuit = extraction.optimized_circuit
        if self.local_optimize:
            circuit = peephole_optimize(circuit)
        elapsed = time.perf_counter() - start
        return CompilationResult(
            circuit=circuit,
            extracted_clifford=extraction.extracted_clifford,
            extraction=extraction,
            compile_seconds=elapsed,
            metadata={
                "local_optimize": self.local_optimize,
                "rotation_count": extraction.rotation_count,
                "num_blocks": extraction.metadata.get("num_blocks"),
            },
        )

    def compile_hamiltonian(
        self, hamiltonian: SparsePauliSum, time_step: float = 1.0, repetitions: int = 1
    ) -> CompilationResult:
        """Compile a first-order Trotter step of ``exp(-i H t)``."""
        from repro.synthesis.trotter import rotation_terms_from_hamiltonian

        terms = rotation_terms_from_hamiltonian(hamiltonian, time=time_step, repetitions=repetitions)
        return self.compile(terms)
