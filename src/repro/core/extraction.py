"""Clifford Extraction (Algorithm 2 of the paper), table-native.

The extractor walks the Pauli-rotation program term by term.  For every term
it synthesizes only the *left* half of the usual V-shaped block (basis-change
layer, CNOT parity tree, ``Rz`` on the root); the mirrored right half — a
Clifford — is never emitted.  Instead its effect is pushed through the rest of
the program by conjugating every later Pauli string, and the accumulated
Clifford tail is returned separately so that Clifford Absorption can dispose
of it classically.

Since PR 3 the whole pass runs on the bit-packed store: the remaining program
lives as one :class:`~repro.paulis.packed.PackedPauliTable` (with the ``2n``
tableau generator rows riding at the end of the same table), every emitted
gate is streamed in place across the table suffix as whole-column bitwise
ops, and lookahead / next-Pauli selection read rows straight from the table
instead of re-conjugating :class:`~repro.paulis.pauli.PauliString` objects.
The original per-term loop is preserved in
:mod:`repro.core.extraction_legacy` as the ground truth the equivalence
tests diff bit-for-bit.

The equivalence maintained throughout is::

    original_circuit  ==  optimized_circuit  followed by  extracted_clifford

which the test-suite checks against dense statevector simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.arrays import ArrayBackend, NUMPY, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.clifford.engine import stream_gates_over_suffix
from repro.transpile.wire_optimizer import GateStreamOptimizer
from repro.clifford.tableau import CliffordTableau
from repro.core.commuting import commuting_block_bounds
from repro.core.tree_synthesis import PackedRowGuide, chain_tree_cost, synthesize_tree
from repro.exceptions import SynthesisError
from repro.paulis.packed import PackedPauliTable, words_for_qubits
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.pauli_rotation import basis_change_gates_sparse


@dataclass
class ExtractionResult:
    """Output of a Clifford Extraction pass.

    Attributes
    ----------
    optimized_circuit:
        The circuit ``U'`` that still has to run on quantum hardware.
    extracted_clifford:
        The Clifford tail ``U_CL`` (in time order) such that the original
        program equals ``optimized_circuit`` followed by ``extracted_clifford``.
    conjugation:
        The tableau of the map ``P -> U_CL† P U_CL`` — exactly the map that
        Clifford Absorption applies to measurement observables.
    terms:
        The input rotation terms, unchanged.
    rotation_count:
        Number of ``Rz`` rotations emitted (identity terms are dropped).
    """

    optimized_circuit: QuantumCircuit
    extracted_clifford: QuantumCircuit
    conjugation: CliffordTableau
    terms: list[PauliTerm]
    rotation_count: int = 0
    elapsed_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return self.optimized_circuit.num_qubits


def _conjugate_through_gates(pauli: PauliString, gates: Sequence[Gate]) -> PauliString:
    """Apply ``P -> g P g†`` for each gate in order, on the packed words."""
    x_words = pauli.x_words.reshape(1, -1).copy()
    z_words = pauli.z_words.reshape(1, -1).copy()
    phase = np.array([pauli.phase], dtype=np.int64)
    for gate in gates:
        NUMPY.apply_gate_to_words(x_words, z_words, phase, gate)
    return PauliString.from_words(
        pauli.num_qubits, x_words[0], z_words[0], int(phase[0]) % 4
    )


def _resolve_block_bounds(
    table: PackedPauliTable,
    blocks: list[list[PauliTerm]] | None,
    block_bounds: Sequence[int] | None,
) -> list[int]:
    """Block boundaries as row offsets (``bounds[k] .. bounds[k+1]``)."""
    if block_bounds is not None:
        bounds = [int(b) for b in block_bounds]
        if bounds[0] != 0 or bounds[-1] != len(table):
            raise SynthesisError(
                f"block bounds {bounds[0]}..{bounds[-1]} do not span the "
                f"{len(table)}-row program"
            )
        return bounds
    if blocks is not None:
        bounds = [0]
        for block in blocks:
            bounds.append(bounds[-1] + len(block))
        if bounds[-1] != len(table):
            raise SynthesisError(
                f"blocks hold {bounds[-1]} terms, program has {len(table)} rows"
            )
        return bounds
    return commuting_block_bounds(table)


class CliffordExtractor:
    """Clifford Extraction with the recursive CNOT-tree heuristic.

    The pass is table-native: it accepts either a sequence of
    :class:`~repro.paulis.term.PauliTerm` or a whole
    :class:`~repro.paulis.sum.SparsePauliSum` (whose packed store is consumed
    directly, no term materialization on the hot path) and produces output
    bit-identical to
    :class:`~repro.core.extraction_legacy.LegacyCliffordExtractor`.

    Parameters
    ----------
    reorder_within_blocks:
        Enable the ``find_next_pauli`` greedy reordering inside commuting
        blocks (the "commutation" feature of the paper's Fig. 10).
    recursive_tree:
        Use the recursive tree-synthesis heuristic; when ``False`` the
        sub-trees degenerate to chains guided only by the immediately
        following Pauli.
    cross_block_lookahead:
        Allow the tree of the last string in a block to be guided by strings
        of later blocks (the block order itself is never changed).
    max_lookahead:
        Optional cap on how many future strings may guide a single tree.
    fuse_peephole:
        Stream every emitted gate through the wire-indexed
        :class:`~repro.transpile.wire_optimizer.GateStreamOptimizer` *as it
        is emitted*, so ``optimized_circuit`` comes out already at the local
        rewrite fixpoint — the tail is built once instead of materialized
        and then rescanned by a separate peephole pass.  The extracted
        Clifford tail and conjugation tableau are unaffected (they are built
        from the raw left halves), so the usual equivalence
        ``original == optimized_circuit . extracted_clifford`` still holds.
    """

    def __init__(
        self,
        reorder_within_blocks: bool = True,
        recursive_tree: bool = True,
        cross_block_lookahead: bool = True,
        max_lookahead: int | None = None,
        fuse_peephole: bool = False,
    ):
        self.reorder_within_blocks = reorder_within_blocks
        self.recursive_tree = recursive_tree
        self.cross_block_lookahead = cross_block_lookahead
        self.max_lookahead = max_lookahead
        self.fuse_peephole = fuse_peephole

    # ------------------------------------------------------------------ #
    def extract(
        self,
        terms: Sequence[PauliTerm] | SparsePauliSum,
        blocks: list[list[PauliTerm]] | None = None,
        block_bounds: Sequence[int] | None = None,
        packed_table: PackedPauliTable | None = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> ExtractionResult:
        """Run Clifford Extraction over a Pauli-rotation program.

        ``blocks`` (term lists) or ``block_bounds`` (row offsets into the
        program, the table-native form) may carry the commuting-block
        partition when a pipeline already computed it (the ``GroupCommuting``
        pass); both must partition the program *in order*.  When neither is
        given the partition is computed here on the packed store.

        ``packed_table`` may hand over an already-packed table of the
        program's Paulis (row ``k`` = ``terms[k].pauli``, e.g. the table the
        grouping pass scanned) so they are not re-packed here; it is read,
        never mutated.  For :class:`SparsePauliSum` input it is adopted only
        when it matches the sum's own store row-for-row (the grouping pass
        handing back the store on the active backend).

        ``backend`` pins the array backend the pass table lives on; when
        omitted the input table's backend is kept.  Whatever the backend,
        gate emission and the returned tableau are host-side (the synthesis
        boundary).
        """
        if isinstance(terms, SparsePauliSum):
            source_sum: SparsePauliSum | None = terms
            term_list: list[PauliTerm] | None = None
            base = source_sum.packed_table
            # the grouping pass may hand back the sum's own store already
            # moved to the active backend — adopt it instead of re-transferring
            if (
                packed_table is not None
                and packed_table.num_rows == base.num_rows
                and packed_table.num_qubits == base.num_qubits
            ):
                base = packed_table
            coefficients = source_sum.coefficient_vector()
            num_qubits = source_sum.num_qubits
        else:
            source_sum = None
            term_list = list(terms)
            if not term_list:
                raise SynthesisError("cannot extract from an empty Pauli program")
            num_qubits = term_list[0].num_qubits
            for term in term_list:
                if term.num_qubits != num_qubits:
                    raise SynthesisError("all Pauli terms must act on the same qubit count")
            if packed_table is not None and (
                packed_table.num_rows != len(term_list)
                or packed_table.num_qubits != num_qubits
            ):
                raise SynthesisError(
                    f"packed_table shape ({packed_table.num_rows} rows, "
                    f"{packed_table.num_qubits} qubits) does not match the "
                    f"{len(term_list)}-term, {num_qubits}-qubit program"
                )
            base = (
                packed_table
                if packed_table is not None
                else PackedPauliTable.from_paulis(t.pauli for t in term_list)
            )
            coefficients = np.array([t.coefficient for t in term_list], dtype=float)

        be = resolve_backend(backend) if backend is not None else base.backend
        if base.backend is not be:
            base = base.to_backend(be)

        start = time.perf_counter()
        num_rows = len(base)
        bounds = _resolve_block_bounds(base, blocks, block_bounds)

        # One packed table for the whole pass: the program rows followed by
        # the 2n tableau generator rows, so every suffix stream updates the
        # remaining program AND the conjugation tableau in the same array op.
        # Assembled host-side, then moved to the pass backend in one shot.
        words = words_for_qubits(num_qubits)
        x_words = np.zeros((num_rows + 2 * num_qubits, words), dtype=np.uint64)
        z_words = np.zeros_like(x_words)
        phases = np.zeros(num_rows + 2 * num_qubits, dtype=np.int64)
        x_words[:num_rows] = be.to_numpy(base.x_words)
        z_words[:num_rows] = be.to_numpy(base.z_words)
        phases[:num_rows] = be.to_numpy(base.phases)
        one = np.uint64(1)
        for qubit in range(num_qubits):
            mask = one << np.uint64(qubit & 63)
            x_words[num_rows + 2 * qubit, qubit >> 6] = mask
            z_words[num_rows + 2 * qubit + 1, qubit >> 6] = mask
        table = PackedPauliTable(num_qubits, x_words, z_words, phases, backend=be)
        # rebind: the constructor may have copied during validation/transfer
        x_words, z_words, phases = table.x_words, table.z_words, table.phases

        optimized_gates: list[Gate] = []
        #: emission-fused peephole: gates stream into the optimizer the
        #: moment a term emits them, so the tail never exists unoptimized
        stream = GateStreamOptimizer(num_qubits) if self.fuse_peephole else None
        left_gates: list[Gate] = []
        rotation_count = 0
        lookahead_limit = num_rows

        for block_start, block_end in zip(bounds, bounds[1:]):
            for position in range(block_start, block_end):
                x_row = x_words[position]
                z_row = z_words[position]
                x_ints = be.tolist(x_row)
                z_ints = be.tolist(z_row)
                if not any(x_ints) and not any(z_ints):
                    # exp(-i theta/2 I) is a global phase; nothing to emit.
                    continue
                num_y = sum((x & z).bit_count() for x, z in zip(x_ints, z_ints))
                if (int(phases[position]) - num_y) % 2:
                    raise SynthesisError(
                        f"term {table.row(position)!r} conjugated to a "
                        "non-Hermitian Pauli"
                    )
                support = _support_from_words(x_ints, z_ints)
                support_x = [(x_ints[q >> 6] >> (q & 63)) & 1 for q in support]
                support_z = [(z_ints[q >> 6] >> (q & 63)) & 1 for q in support]
                basis_gates = basis_change_gates_sparse(support, support_x, support_z)

                if basis_gates:
                    # Masked basis layer over the whole suffix (and tableau
                    # rows); a no-op — skipped — for pure-Z/I terms.  h_mask
                    # must be copied out of the row view before the layer
                    # mutates it.
                    table.apply_basis_layer(be.band(x_row, z_row), be.copy(x_row), start=position)

                if self.reorder_within_blocks and position + 1 < block_end:
                    best = self._find_next_packed(table, position, block_end, support)
                    if best is not None and best != position + 1:
                        table.move_row(best, position + 1)
                        window = slice(position + 1, best + 1)
                        coefficients[window] = np.roll(coefficients[window], 1)

                if not self.cross_block_lookahead:
                    lookahead_limit = block_end
                lookahead_cache: dict[int, PackedRowGuide] = {}

                def lookahead(depth: int) -> PackedRowGuide | None:
                    row_index = position + 1 + depth
                    if row_index >= lookahead_limit:
                        return None
                    if depth not in lookahead_cache:
                        lookahead_cache[depth] = PackedRowGuide(
                            x_words[row_index], z_words[row_index]
                        )
                    return lookahead_cache[depth]

                tree_gates, root = synthesize_tree(
                    support,
                    lookahead,
                    recursive=self.recursive_tree,
                    max_depth=self.max_lookahead,
                )
                stream_gates_over_suffix(table, tree_gates, start=position)

                x_ints = be.tolist(x_row)
                z_ints = be.tolist(z_row)
                root_word = root >> 6
                reduced_to_root = (
                    not any(x_ints)
                    and z_ints[root_word] == 1 << (root & 63)
                    and all(
                        word == 0 for i, word in enumerate(z_ints) if i != root_word
                    )
                )
                if not reduced_to_root:
                    raise SynthesisError(
                        "internal error: the synthesized tree does not reduce the "
                        "current Pauli to Z on its root "
                        f"(got {table.row(position).to_label()!r})"
                    )
                angle = float(coefficients[position])
                if int(phases[position]) % 4 == 2:
                    angle = -angle

                rotation = Gate("rz", (root,), (angle,))
                if stream is not None:
                    stream.extend(basis_gates)
                    stream.extend(tree_gates)
                    stream.append(rotation)
                else:
                    optimized_gates.extend(basis_gates)
                    optimized_gates.extend(tree_gates)
                    optimized_gates.append(rotation)
                rotation_count += 1
                left_gates.extend(basis_gates)
                left_gates.extend(tree_gates)

        if stream is not None:
            optimized_gates = stream.gates()
        optimized = QuantumCircuit.from_trusted_gates(num_qubits, optimized_gates)
        left_halves = QuantumCircuit.from_trusted_gates(num_qubits, left_gates)
        extracted = left_halves.inverse()
        # Host transfer happens once, inside from_packed_rows (the boundary).
        conjugation = CliffordTableau.from_packed_rows(
            PackedPauliTable(
                num_qubits,
                x_words[num_rows:],
                z_words[num_rows:],
                phases[num_rows:],
                backend=be,
            )
        )
        elapsed = time.perf_counter() - start
        if term_list is None:
            term_list = source_sum.terms
        metadata = {
            "num_blocks": len(bounds) - 1,
            "reorder_within_blocks": self.reorder_within_blocks,
            "recursive_tree": self.recursive_tree,
            "peephole_fused": self.fuse_peephole,
        }
        if stream is not None:
            metadata["pre_optimization_cx"] = stream.appended_cx
        return ExtractionResult(
            optimized_circuit=optimized,
            extracted_clifford=extracted,
            conjugation=conjugation,
            terms=term_list,
            rotation_count=rotation_count,
            elapsed_seconds=elapsed,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    def _find_next_packed(
        self,
        table: PackedPauliTable,
        position: int,
        block_end: int,
        support: list[int],
    ) -> int | None:
        """Greedy choice of the string to place right after the current one.

        Bit-identical to the legacy ``find_next_pauli`` — a candidate's cost
        is its weight after conjugation through the non-recursive chain tree
        the current support would get with the candidate as the only guide —
        but computed on table rows: the candidates are already conjugated by
        everything extracted so far (including the current basis layer), the
        tree-invariant off-support weights come from one vectorized popcount,
        and candidates are visited in argsorted-weight order so that
        ``cost >= off_support_weight`` prunes most exact cost evaluations.
        """
        first = position + 1
        count = block_end - first
        if count == 1:
            return first
        be = table.backend
        x_words = table.x_words
        z_words = table.z_words
        support_mask_host = np.zeros(x_words.shape[1], dtype=np.uint64)
        one = np.uint64(1)
        for qubit in support:
            support_mask_host[qubit >> 6] |= one << np.uint64(qubit & 63)
        support_mask = be.asarray_words(support_mask_host)
        candidate_x = x_words[first:block_end]
        candidate_z = z_words[first:block_end]
        off_weights = be.to_numpy(
            be.popcount_rows(be.bandnot(be.bor(candidate_x, candidate_z), support_mask))
        )

        word_index = np.asarray([q >> 6 for q in support])
        shifts = np.asarray([q & 63 for q in support], dtype=np.uint64)
        support_x = be.support_bits(candidate_x, word_index, shifts)
        support_z = be.support_bits(candidate_z, word_index, shifts)

        best_cost: int | None = None
        best_index: int | None = None
        # Ascending off-support weight with stable ties: once a candidate's
        # off-support weight alone reaches the best cost seen, no later
        # candidate in this order can strictly beat it.
        for k in np.argsort(off_weights, kind="stable"):
            off_weight = int(off_weights[k])
            if best_cost is not None and off_weight > best_cost:
                break
            index = first + int(k)
            if best_cost is not None and off_weight == best_cost and index > best_index:
                continue
            cost = off_weight + chain_tree_cost(support_x[k].tolist(), support_z[k].tolist())
            if (
                best_cost is None
                or cost < best_cost
                or (cost == best_cost and index < best_index)
            ):
                best_cost = cost
                best_index = index
        return best_index


def _support_from_words(x_ints: list[int], z_ints: list[int]) -> list[int]:
    """Ascending qubit indices carrying a non-identity factor.

    Walks the set bits of the packed words as plain Python integers — for the
    sparse rows extraction sees, this beats unpacking the whole register into
    a boolean vector and scanning it.
    """
    support: list[int] = []
    for word_index, (x_word, z_word) in enumerate(zip(x_ints, z_ints)):
        word = x_word | z_word
        base = word_index << 6
        while word:
            low = word & -word
            support.append(base + low.bit_length() - 1)
            word ^= low
    return support
