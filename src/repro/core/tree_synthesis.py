"""Recursive CNOT-tree synthesis (Algorithm 1 of the paper).

Given the support of the Pauli string currently being synthesized and the
Pauli strings that follow it in the program, the algorithm builds a CNOT
parity tree whose *extraction* (commutation through the rest of the circuit)
minimises the weight of the following strings:

1. the support qubits are grouped by the letter the *next* Pauli carries on
   them (``I``, ``X``, ``Y``, ``Z`` sub-trees);
2. each group is synthesized recursively, using the Pauli one position
   further down the program to order the qubits inside the group;
3. the four group roots are connected with the pairing that Table I of the
   paper shows to be weight-reducing: ``Z -> Y``, ``I -> X`` and finally the
   ``Z/Y`` survivor into the ``I/X`` survivor, which becomes the tree root
   carrying the ``Rz`` rotation.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.circuits.gate import Gate, cached_gate
from repro.exceptions import SynthesisError
from repro.paulis.pauli import PauliString

#: order in which group roots are considered when connecting (paper Sec. V-A)
_ROOT_PRIORITY = ("Z", "I", "Y", "X")

#: a callable returning the (already conjugated) Pauli ``depth`` positions
#: after the current one, or None when the program ends before that.  Any
#: object exposing ``letter(qubit) -> "I"|"X"|"Y"|"Z"`` works — the packed
#: extractor hands out word-level row guides instead of full PauliStrings.
LookaheadProvider = Callable[[int], "PauliString | None"]


class PackedRowGuide:
    """A read-only letter view over one packed table row.

    Snapshots the row's words as plain Python integers, so the
    ``guide.letter(qubit)`` calls of :func:`synthesize_tree` are pure-Python
    bit tests instead of numpy scalar extractions.  Only the guide protocol
    of the lookahead is implemented — this is not a :class:`PauliString`.
    """

    __slots__ = ("_x_words", "_z_words")

    _LETTERS = ("I", "X", "Z", "Y")  # indexed by x_bit | (z_bit << 1)

    def __init__(self, x_row, z_row):
        self._x_words = x_row.tolist()
        self._z_words = z_row.tolist()

    def letter(self, qubit: int) -> str:
        word, bit = qubit >> 6, qubit & 63
        x_bit = (self._x_words[word] >> bit) & 1
        z_bit = (self._z_words[word] >> bit) & 1
        return self._LETTERS[x_bit | (z_bit << 1)]


def chain_tree(
    tree_qubits: Sequence[int], out: list[Gate] | None = None
) -> tuple[list[Gate], int]:
    """A plain CNOT chain over ``tree_qubits``; the last qubit is the root.

    ``out`` may be an existing gate list to append into (the recursive
    synthesizer threads one shared accumulator through all sub-trees instead
    of concatenating per-level lists).
    """
    qubits = list(tree_qubits)
    if not qubits:
        raise SynthesisError("cannot synthesize a tree over an empty support")
    gates = out if out is not None else []
    for index in range(len(qubits) - 1):
        gates.append(cached_gate("cx", (qubits[index], qubits[index + 1])))
    return gates, qubits[-1]


def _group_by_letter(
    tree_qubits: Sequence[int], guide: PauliString
) -> dict[str, list[int]]:
    groups: dict[str, list[int]] = {"I": [], "X": [], "Y": [], "Z": []}
    for qubit in tree_qubits:
        groups[guide.letter(qubit)].append(qubit)
    return groups


def _connect_roots(roots: dict[str, int], gates: list[Gate]) -> int:
    """Connect the sub-tree roots; returns the overall tree root.

    The pairing follows the paper: the ``Z`` root feeds the ``Y`` root
    (``ZY -> IY``), the ``I`` root feeds the ``X`` root (``IX`` stays put but
    keeps the root on the ``X`` side), and finally the ``Z/Y`` survivor feeds
    the ``I/X`` survivor (``YX -> YI``).
    """
    def connect(first: str, second: str) -> int | None:
        first_root = roots.get(first)
        second_root = roots.get(second)
        if first_root is None and second_root is None:
            return None
        if first_root is None:
            return second_root
        if second_root is None:
            return first_root
        gates.append(cached_gate("cx", (first_root, second_root)))
        return second_root

    zy_root = connect("Z", "Y")
    ix_root = connect("I", "X")
    if zy_root is None and ix_root is None:
        raise SynthesisError("cannot connect roots of an empty tree")
    if zy_root is None:
        return ix_root
    if ix_root is None:
        return zy_root
    gates.append(cached_gate("cx", (zy_root, ix_root)))
    return ix_root


def chain_tree_cost(x_bits: Sequence[int], z_bits: Sequence[int]) -> int:
    """Support weight of a guide after conjugation through its chain tree.

    ``x_bits`` / ``z_bits`` are the guide's symplectic bits on the support of
    the Pauli currently being synthesized, in support (ascending-qubit) order.
    The function replays — on plain Python integers, without building
    :class:`~repro.circuits.gate.Gate` objects — exactly the non-recursive
    tree that :func:`synthesize_tree` would emit for this guide (per-letter
    chains connected ``Z -> Y``, ``I -> X``, ``Z/Y -> I/X``) and the CNOT
    conjugation rule ``x_t ^= x_c``, ``z_c ^= z_t``, returning the guide's
    remaining weight on the support.  This is the cheap cost model of
    Algorithm 2's ``find_next_pauli``; adding the guide's (tree-invariant)
    off-support weight gives the exact cost the legacy extractor computes.
    """
    groups: dict[str, list[int]] = {"I": [], "X": [], "Y": [], "Z": []}
    for index, (x_bit, z_bit) in enumerate(zip(x_bits, z_bits)):
        if x_bit:
            groups["Y" if z_bit else "X"].append(index)
        else:
            groups["Z" if z_bit else "I"].append(index)
    gates: list[tuple[int, int]] = []
    roots: dict[str, int] = {}
    for letter in _ROOT_PRIORITY:
        members = groups[letter]
        if not members:
            continue
        gates.extend(zip(members, members[1:]))
        roots[letter] = members[-1]

    def connect(first: str, second: str) -> int | None:
        first_root = roots.get(first)
        second_root = roots.get(second)
        if first_root is None:
            return second_root
        if second_root is None:
            return first_root
        gates.append((first_root, second_root))
        return second_root

    zy_root = connect("Z", "Y")
    ix_root = connect("I", "X")
    if zy_root is not None and ix_root is not None:
        gates.append((zy_root, ix_root))

    x = [int(bit) for bit in x_bits]
    z = [int(bit) for bit in z_bits]
    for control, target in gates:
        x[target] ^= x[control]
        z[control] ^= z[target]
    return sum(1 for x_bit, z_bit in zip(x, z) if x_bit | z_bit)


def synthesize_tree(
    tree_qubits: Sequence[int],
    lookahead: LookaheadProvider,
    recursive: bool = True,
    depth: int = 0,
    max_depth: int | None = None,
    out: list[Gate] | None = None,
) -> tuple[list[Gate], int]:
    """Synthesize a CNOT parity tree over ``tree_qubits``.

    Parameters
    ----------
    tree_qubits:
        Support of the Pauli currently being synthesized (or a subset of it
        during recursion).
    lookahead:
        ``lookahead(d)`` must return the Pauli ``d + 1`` positions after the
        current one, already conjugated by the Clifford extracted so far and
        by the current string's basis-change layer, or ``None`` past the end
        of the program.
    recursive:
        When ``False``, the sub-trees are plain chains (the cheap variant used
        for cost estimation inside ``find_next_pauli``).
    max_depth:
        Optional cap on the recursion depth (how many future strings guide the
        tree).  ``None`` means unbounded.
    out:
        Optional gate list to append into; the recursion threads one shared
        accumulator through every sub-tree, so no per-level lists are
        concatenated.

    Returns
    -------
    (gates, root):
        The CNOT gates in circuit (time) order (the ``out`` list when one was
        given) and the root qubit where the ``Rz`` rotation is placed.
    """
    qubits = list(tree_qubits)
    if not qubits:
        raise SynthesisError("cannot synthesize a tree over an empty support")
    gates = out if out is not None else []
    if len(qubits) == 1:
        return gates, qubits[0]
    if max_depth is not None and depth >= max_depth:
        return chain_tree(qubits, out=gates)
    guide = lookahead(depth)
    if guide is None:
        return chain_tree(qubits, out=gates)

    groups = _group_by_letter(qubits, guide)
    roots: dict[str, int] = {}
    for letter in _ROOT_PRIORITY:
        members = groups[letter]
        if not members:
            continue
        if len(members) == 1:
            roots[letter] = members[0]
        elif recursive:
            _, sub_root = synthesize_tree(
                members,
                lookahead,
                recursive=True,
                depth=depth + 1,
                max_depth=max_depth,
                out=gates,
            )
            roots[letter] = sub_root
        else:
            _, sub_root = chain_tree(members, out=gates)
            roots[letter] = sub_root
    root = _connect_roots(roots, gates)
    return gates, root
