"""The paper's primary contribution: Clifford Extraction and Absorption.

* :mod:`repro.core.commuting` — partitioning a Pauli sequence into blocks of
  mutually commuting strings (the reordering scope of Algorithm 2).
* :mod:`repro.core.tree_synthesis` — the recursive CNOT-tree synthesis
  heuristic (Algorithm 1).
* :mod:`repro.core.extraction` — the Clifford Extraction pass (Algorithm 2).
* :mod:`repro.core.absorption` — Clifford Absorption for observable and
  probability measurements (CA-Pre / CA-Post).
* :mod:`repro.core.framework` — the deprecated :class:`QuCLEAR` facade over
  the :mod:`repro.compiler` pass pipeline (new code should use
  :func:`repro.compile`).
"""

from repro.core.commuting import convert_commute_sets
from repro.core.extraction import CliffordExtractor, ExtractionResult
from repro.core.absorption import (
    AbsorbedObservable,
    ObservableAbsorber,
    ProbabilityAbsorber,
    absorb_observables,
    absorb_probabilities,
)
from repro.core.framework import QuCLEAR, CompilationResult
from repro.core.measurement_grouping import (
    MeasurementGroup,
    group_observables,
    measurement_savings,
)

__all__ = [
    "MeasurementGroup",
    "group_observables",
    "measurement_savings",
    "convert_commute_sets",
    "CliffordExtractor",
    "ExtractionResult",
    "AbsorbedObservable",
    "ObservableAbsorber",
    "ProbabilityAbsorber",
    "absorb_observables",
    "absorb_probabilities",
    "QuCLEAR",
    "CompilationResult",
]
