"""The paper's primary contribution: Clifford Extraction and Absorption.

* :mod:`repro.core.commuting` — partitioning a Pauli sequence into blocks of
  mutually commuting strings (the reordering scope of Algorithm 2).
* :mod:`repro.core.tree_synthesis` — the recursive CNOT-tree synthesis
  heuristic (Algorithm 1).
* :mod:`repro.core.extraction` — the table-native Clifford Extraction pass
  (Algorithm 2 on the bit-packed Pauli store).
* :mod:`repro.core.extraction_legacy` — the original per-term extraction
  loop, kept as the bit-for-bit ground truth of the equivalence tests.
* :mod:`repro.core.absorption` — Clifford Absorption for observable and
  probability measurements (CA-Pre / CA-Post).
* :mod:`repro.core.framework` — the deprecated :class:`QuCLEAR` facade over
  the :mod:`repro.compiler` pass pipeline (new code should use
  :func:`repro.compile`).
"""

from repro.core.commuting import commuting_block_bounds, convert_commute_sets
from repro.core.extraction import CliffordExtractor, ExtractionResult
from repro.core.extraction_legacy import LegacyCliffordExtractor
from repro.core.absorption import (
    AbsorbedObservable,
    ObservableAbsorber,
    ProbabilityAbsorber,
    absorb_observables,
    absorb_probabilities,
)
from repro.core.framework import QuCLEAR, CompilationResult
from repro.core.measurement_grouping import (
    MeasurementGroup,
    group_observables,
    measurement_savings,
)

__all__ = [
    "MeasurementGroup",
    "group_observables",
    "measurement_savings",
    "commuting_block_bounds",
    "convert_commute_sets",
    "CliffordExtractor",
    "LegacyCliffordExtractor",
    "ExtractionResult",
    "AbsorbedObservable",
    "ObservableAbsorber",
    "ProbabilityAbsorber",
    "absorb_observables",
    "absorb_probabilities",
    "QuCLEAR",
    "CompilationResult",
]
