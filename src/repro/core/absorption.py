"""Clifford Absorption (CA-Pre and CA-Post modules of the paper).

Two absorption modes are provided, matching the two measurement styles of the
paper's workloads:

* **Observable absorption** (VQE / Hamiltonian simulation): the extracted
  Clifford tail ``U_CL`` is folded into every measured Pauli observable,
  ``O' = U_CL† O U_CL``.  CA-Pre builds the measurement-basis rotation that
  has to be appended to the optimized circuit; CA-Post converts the measured
  bitstring histogram back into the expectation value of the *original*
  observable.

* **Probability absorption** (QAOA): for problem Hamiltonians made of
  ``Z``/``I`` strings and an ``X`` mixer, the extracted tail reduces to one
  layer of Hadamards followed by a CNOT network (Proposition 1).  CA-Pre
  appends only the Hadamard layer; CA-Post remaps every measured bitstring
  through the GF(2) affine map of the CNOT network, recovering the original
  circuit's computational-basis distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.clifford.engine import ConjugationCache, PackedConjugator
from repro.clifford.tableau import CliffordTableau
from repro.core.extraction import ExtractionResult
from repro.exceptions import AbsorptionError
from repro.linear.gf2 import gf2_is_invertible, gf2_matvec, gf2_solve
from repro.paulis.packed import PackedPauliTable
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum


# ---------------------------------------------------------------------- #
# Observable absorption
# ---------------------------------------------------------------------- #
@dataclass
class AbsorbedObservable:
    """One original observable together with its absorbed replacement."""

    original: PauliString
    #: the observable to measure on the optimized circuit (sign folded out)
    updated: PauliString
    #: +1 or -1 factor to apply to the measured expectation value
    sign: float
    #: single-qubit basis-rotation circuit appended before measurement
    measurement_basis: QuantumCircuit

    def expectation_from_counts(self, counts: Mapping[str, int]) -> float:
        """CA-Post: expectation value of the *original* observable.

        ``counts`` must be a histogram of computational-basis measurements of
        the optimized circuit with :attr:`measurement_basis` appended.
        Bitstrings use the usual convention of qubit 0 as the rightmost
        character.
        """
        total = sum(counts.values())
        if total == 0:
            raise AbsorptionError("empty measurement histogram")
        support = self.updated.support
        accumulator = 0
        for bitstring, count in counts.items():
            parity = 0
            for qubit in support:
                if bitstring[len(bitstring) - 1 - qubit] == "1":
                    parity ^= 1
            accumulator += count * (1 - 2 * parity)
        return self.sign * accumulator / total


class ObservableAbsorber:
    """CA module for observable measurements.

    Conjugation runs on the bit-packed engine: the tableau is frozen into a
    :class:`~repro.clifford.engine.PackedConjugator` once (optionally shared
    through a :class:`~repro.clifford.engine.ConjugationCache`), and the batch
    entry points absorb *all* observables in one vectorized sweep.
    """

    def __init__(
        self, conjugation: CliffordTableau, cache: ConjugationCache | None = None
    ):
        self.conjugation = conjugation
        self.num_qubits = conjugation.num_qubits
        if cache is not None:
            self._conjugator = cache.get(conjugation)
        else:
            self._conjugator = PackedConjugator.from_tableau(conjugation)

    # ------------------------------------------------------------------ #
    def absorb_pauli(self, observable: PauliString) -> AbsorbedObservable:
        """Absorb the Clifford tail into a single Pauli observable."""
        if observable.num_qubits != self.num_qubits:
            raise AbsorptionError("observable and circuit qubit counts differ")
        updated = self._conjugator.conjugate(observable)
        sign = updated.sign
        if sign not in (1, -1):
            raise AbsorptionError("absorbed observable is not Hermitian")
        bare = updated.bare()
        return AbsorbedObservable(
            original=observable.copy(),
            updated=bare,
            sign=float(np.real(sign)),
            measurement_basis=self.measurement_basis_circuit(bare),
        )

    def _absorb_table(
        self, originals: list[PauliString], table: PackedPauliTable
    ) -> list[AbsorbedObservable]:
        """Vectorized core: conjugate every observable in one packed sweep."""
        if table.num_qubits != self.num_qubits:
            raise AbsorptionError("observable and circuit qubit counts differ")
        conjugated = self._conjugator.conjugate_table(table)
        if not conjugated.hermitian_mask().all():
            raise AbsorptionError("absorbed observable is not Hermitian")
        signs = np.where(conjugated.signs() == 0, 1.0, -1.0)
        bare = conjugated.bare()
        absorbed = []
        for index, original in enumerate(originals):
            updated = bare.row(index)
            absorbed.append(
                AbsorbedObservable(
                    original=original.copy(),
                    updated=updated,
                    sign=float(signs[index]),
                    measurement_basis=self.measurement_basis_circuit(updated),
                )
            )
        return absorbed

    def absorb_all(self, observables: Iterable[PauliString]) -> list[AbsorbedObservable]:
        originals = list(observables)
        if not originals:
            return []
        return self._absorb_table(originals, PackedPauliTable.from_paulis(originals))

    def absorb_table(self, observable: SparsePauliSum) -> list[AbsorbedObservable]:
        """Absorb a sum's terms straight from its packed store (no re-pack)."""
        return self._absorb_table(observable.paulis, observable.packed_table)

    def absorb_sum(self, observable: SparsePauliSum) -> list[tuple[float, AbsorbedObservable]]:
        """Absorb every term of a weighted observable; returns (weight, absorbed)."""
        return list(zip(observable.coefficients, self.absorb_table(observable)))

    # ------------------------------------------------------------------ #
    def measurement_basis_circuit(self, observable: PauliString) -> QuantumCircuit:
        """CA-Pre: single-qubit rotations mapping ``observable`` to a Z-string."""
        circuit = QuantumCircuit(self.num_qubits)
        for qubit in range(self.num_qubits):
            letter = observable.letter(qubit)
            if letter == "X":
                circuit.h(qubit)
            elif letter == "Y":
                circuit.sdg(qubit)
                circuit.h(qubit)
        return circuit

    def expectation_from_sum_counts(
        self,
        absorbed: Sequence[tuple[float, AbsorbedObservable]],
        counts_per_observable: Sequence[Mapping[str, int]],
    ) -> float:
        """CA-Post for a weighted observable measured term by term."""
        if len(absorbed) != len(counts_per_observable):
            raise AbsorptionError("one histogram per absorbed observable is required")
        return float(
            sum(
                weight * item.expectation_from_counts(counts)
                for (weight, item), counts in zip(absorbed, counts_per_observable)
            )
        )


# ---------------------------------------------------------------------- #
# Probability absorption
# ---------------------------------------------------------------------- #
@dataclass
class ProbabilityAbsorber:
    """CA module for probability-distribution measurements (QAOA).

    The extracted tail is decomposed as ``U_affine * H_S`` (Hadamard layer
    first in time): CA-Pre appends ``H`` on the qubits in ``hadamard_qubits``
    to the optimized circuit, and CA-Post maps every measured bitstring ``y``
    to ``A y + b`` over GF(2).
    """

    num_qubits: int
    hadamard_qubits: list[int]
    linear_map: np.ndarray
    shift: np.ndarray
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def pre_circuit(self) -> QuantumCircuit:
        """CA-Pre: the Hadamard layer to append before measuring."""
        circuit = QuantumCircuit(self.num_qubits)
        for qubit in self.hadamard_qubits:
            circuit.h(qubit)
        return circuit

    def map_bitstring(self, bitstring: str) -> str:
        """CA-Post: remap one measured bitstring (qubit 0 rightmost)."""
        if len(bitstring) != self.num_qubits:
            raise AbsorptionError(
                f"bitstring length {len(bitstring)} does not match {self.num_qubits} qubits"
            )
        vector = np.array([bit == "1" for bit in reversed(bitstring)], dtype=bool)
        mapped = gf2_matvec(self.linear_map, vector) ^ self.shift
        return "".join("1" if bit else "0" for bit in reversed(mapped))

    def map_counts(self, counts: Mapping[str, int]) -> dict[str, int]:
        """CA-Post: remap a whole histogram of measured bitstrings."""
        remapped: dict[str, int] = {}
        for bitstring, count in counts.items():
            key = self.map_bitstring(bitstring)
            remapped[key] = remapped.get(key, 0) + count
        return remapped

    def map_probabilities(self, probabilities: Mapping[str, float]) -> dict[str, float]:
        """CA-Post: remap a probability dictionary."""
        remapped: dict[str, float] = {}
        for bitstring, probability in probabilities.items():
            key = self.map_bitstring(bitstring)
            remapped[key] = remapped.get(key, 0.0) + probability
        return remapped


def _tail_tableau_rows(tableau: CliffordTableau) -> tuple[list[PauliString], list[PauliString]]:
    x_images = [tableau.image_of_x(qubit) for qubit in range(tableau.num_qubits)]
    z_images = [tableau.image_of_z(qubit) for qubit in range(tableau.num_qubits)]
    return x_images, z_images


def build_probability_absorber(tail: QuantumCircuit) -> ProbabilityAbsorber:
    """Decompose a Clifford tail as a Hadamard layer followed by a CNOT network.

    Raises :class:`AbsorptionError` when the tail is not of this restricted
    form (Proposition 1 guarantees the form for QAOA programs whose problem
    Hamiltonian contains only ``Z``/``I`` strings and whose mixer is an ``X``
    rotation per qubit).
    """
    num_qubits = tail.num_qubits
    tableau = CliffordTableau.from_circuit(tail)
    x_images, z_images = _tail_tableau_rows(tableau)

    def is_x_type(pauli: PauliString) -> bool:
        return not bool(np.any(pauli.z))

    def is_z_type(pauli: PauliString) -> bool:
        return not bool(np.any(pauli.x))

    hadamard_qubits = [
        qubit for qubit in range(num_qubits) if is_x_type(z_images[qubit])
    ]
    hadamard_set = set(hadamard_qubits)

    linear_map = np.zeros((num_qubits, num_qubits), dtype=bool)
    z_rows = np.zeros((num_qubits, num_qubits), dtype=bool)
    signs = np.zeros(num_qubits, dtype=bool)
    for qubit in range(num_qubits):
        if qubit in hadamard_set:
            x_type_image, z_type_image = z_images[qubit], x_images[qubit]
        else:
            x_type_image, z_type_image = x_images[qubit], z_images[qubit]
        if not is_x_type(x_type_image) or not is_z_type(z_type_image):
            raise AbsorptionError(
                "the extracted Clifford tail is not a Hadamard layer followed by a "
                "CNOT network; use observable absorption instead"
            )
        linear_map[:, qubit] = x_type_image.x
        z_rows[qubit] = z_type_image.z
        signs[qubit] = z_type_image.sign == -1

    if not gf2_is_invertible(linear_map):
        raise AbsorptionError("the tail's linear action on basis states is singular")
    shift = gf2_solve(z_rows, signs)

    return ProbabilityAbsorber(
        num_qubits=num_qubits,
        hadamard_qubits=hadamard_qubits,
        linear_map=linear_map,
        shift=shift,
        metadata={"tail_gates": len(tail)},
    )


# ---------------------------------------------------------------------- #
# Convenience entry points
# ---------------------------------------------------------------------- #
def absorb_observables(
    result: ExtractionResult,
    observables: Iterable[PauliString] | SparsePauliSum,
    cache: ConjugationCache | None = None,
) -> list[AbsorbedObservable]:
    """Absorb the extracted Clifford into a collection of Pauli observables."""
    absorber = ObservableAbsorber(result.conjugation, cache=cache)
    if isinstance(observables, SparsePauliSum):
        return absorber.absorb_table(observables)
    return absorber.absorb_all(observables)


def absorb_probabilities(result: ExtractionResult) -> ProbabilityAbsorber:
    """Build the probability post-processor for an extraction result."""
    return build_probability_absorber(result.extracted_clifford)
