"""Per-feature CNOT-reduction breakdown (the paper's Fig. 10) and the
with/without-local-optimization ablation (Fig. 9), expressed as pipelines."""

from __future__ import annotations

from typing import Sequence

from repro.compiler.passes import AbsorptionPrep, CliffordExtraction, GroupCommuting
from repro.compiler.pipeline import Pipeline
from repro.compiler.presets import quclear_pipeline
from repro.compiler.registry import get_registry
from repro.paulis.term import PauliTerm
from repro.transpile.peephole import peephole_optimize


def feature_breakdown(terms: Sequence[PauliTerm]) -> dict[str, int]:
    """CNOT count after each optimization feature is switched on in turn.

    Mirrors Fig. 10 of the paper:

    * ``native`` — direct synthesis, no optimization;
    * ``tree_extraction`` — Clifford Extraction with the recursive tree but no
      reordering inside commuting blocks;
    * ``commutation`` — extraction plus greedy reordering inside blocks;
    * ``absorption`` — the extracted Clifford tail is absorbed classically
      (the circuit that remains is exactly the optimized half);
    * ``local_optimization`` — the peephole pass on top of everything.
    """
    term_list = list(terms)
    native = get_registry().compile("naive", term_list)

    no_reorder = Pipeline(
        [GroupCommuting(), CliffordExtraction(reorder_within_blocks=False)],
        name="extract-no-reorder",
    ).run(term_list)
    with_reorder = Pipeline(
        [GroupCommuting(), CliffordExtraction(reorder_within_blocks=True)],
        name="extract-reorder",
    ).run(term_list)

    # Before absorption the extracted tail still has to run on hardware.
    tree_only_cx = no_reorder.cx_count() + no_reorder.extracted_clifford.cx_count()
    commutation_cx = with_reorder.cx_count() + with_reorder.extracted_clifford.cx_count()
    absorbed_cx = with_reorder.cx_count()
    local_cx = peephole_optimize(with_reorder.circuit).cx_count()

    return {
        "native": native.cx_count(),
        "tree_extraction": tree_only_cx,
        "commutation": commutation_cx,
        "absorption": absorbed_cx,
        "local_optimization": local_cx,
    }


def local_optimization_ablation(terms: Sequence[PauliTerm]) -> dict[str, dict[str, float]]:
    """QuCLEAR with and without the local-optimization pass (Fig. 9)."""
    term_list = list(terms)
    with_local = quclear_pipeline(local_optimize=True).run(term_list)
    without_local = quclear_pipeline(local_optimize=False).run(term_list)
    return {
        "with_local_optimization": with_local.metrics(),
        "without_local_optimization": without_local.metrics(),
    }


def absorption_style(terms: Sequence[PauliTerm]) -> str:
    """Which CA mode applies to a workload: 'probabilities' when the tail
    reduces to a Hadamard layer plus CNOT network, otherwise 'observables'."""
    result = Pipeline(
        [GroupCommuting(), CliffordExtraction(), AbsorptionPrep()],
        name="absorption-style",
    ).run(list(terms))
    return result.properties["absorption_style"]
