"""Compiler comparison on fully connected devices (the paper's Table III)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.registry import BASELINE_COMPILERS
from repro.core.framework import QuCLEAR
from repro.paulis.term import PauliTerm
from repro.workloads.registry import Benchmark, get_benchmark

#: the compiler line-up of Table III (QuCLEAR plus the four baselines)
DEFAULT_COMPILERS = ("QuCLEAR", "qiskit-like", "rustiq-like", "paulihedral-like", "tket-like")


@dataclass
class CompilerComparison:
    """Per-compiler metrics for one workload."""

    workload: str
    num_qubits: int
    num_paulis: int
    results: dict[str, dict[str, float]] = field(default_factory=dict)

    def cx_counts(self) -> dict[str, int]:
        return {name: int(metrics["cx_count"]) for name, metrics in self.results.items()}

    def entangling_depths(self) -> dict[str, int]:
        return {
            name: int(metrics["entangling_depth"]) for name, metrics in self.results.items()
        }

    def compile_times(self) -> dict[str, float]:
        return {name: metrics["compile_seconds"] for name, metrics in self.results.items()}

    def best_compiler(self, metric: str = "cx_count") -> str:
        return min(self.results, key=lambda name: self.results[name][metric])

    def reduction_vs(self, baseline: str, metric: str = "cx_count") -> float:
        """Relative reduction of QuCLEAR versus ``baseline`` (1.0 = 100 %)."""
        quclear = self.results["QuCLEAR"][metric]
        other = self.results[baseline][metric]
        if other == 0:
            return 0.0
        return 1.0 - quclear / other


def compare_compilers(
    terms: Sequence[PauliTerm],
    workload: str = "custom",
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    quclear_kwargs: dict | None = None,
) -> CompilerComparison:
    """Compile ``terms`` with every requested compiler and collect the metrics."""
    term_list = list(terms)
    comparison = CompilerComparison(
        workload=workload,
        num_qubits=term_list[0].num_qubits,
        num_paulis=len(term_list),
    )
    for name in compilers:
        start = time.perf_counter()
        if name == "QuCLEAR":
            result = QuCLEAR(**(quclear_kwargs or {})).compile(term_list)
            circuit = result.circuit
        else:
            baseline = BASELINE_COMPILERS[name](term_list)
            circuit = baseline.circuit
        elapsed = time.perf_counter() - start
        comparison.results[name] = {
            "cx_count": circuit.cx_count(),
            "entangling_depth": circuit.entangling_depth(),
            "single_qubit_count": circuit.single_qubit_count(),
            "compile_seconds": elapsed,
        }
    return comparison


def compare_on_benchmark(
    benchmark: str | Benchmark,
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    quclear_kwargs: dict | None = None,
) -> CompilerComparison:
    """Run the Table III comparison on one named benchmark."""
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    return compare_compilers(
        benchmark.terms(),
        workload=benchmark.name,
        compilers=compilers,
        quclear_kwargs=quclear_kwargs,
    )
