"""Compiler comparison on fully connected devices (the paper's Table III).

Every compiler is looked up in the unified
:class:`~repro.compiler.registry.CompilerRegistry` (lookups are
case-insensitive, so the display name ``"QuCLEAR"`` resolves to the
``"quclear"`` pipeline) and all of them return the same
:class:`~repro.compiler.result.CompilationResult`, so the harness never
branches on the compiler kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.compiler.presets import quclear_preset
from repro.compiler.registry import get_registry
from repro.paulis.term import PauliTerm
from repro.workloads.registry import Benchmark, get_benchmark

#: the compiler line-up of Table III (QuCLEAR plus the four baselines)
DEFAULT_COMPILERS = ("QuCLEAR", "qiskit-like", "rustiq-like", "paulihedral-like", "tket-like")


@dataclass
class CompilerComparison:
    """Per-compiler metrics for one workload."""

    workload: str
    num_qubits: int
    num_paulis: int
    results: dict[str, dict[str, float]] = field(default_factory=dict)
    #: per-compiler pass-level wall-clock breakdown (pass name -> seconds)
    pass_timings: dict[str, dict[str, float]] = field(default_factory=dict)

    def cx_counts(self) -> dict[str, int]:
        return {name: int(metrics["cx_count"]) for name, metrics in self.results.items()}

    def entangling_depths(self) -> dict[str, int]:
        return {
            name: int(metrics["entangling_depth"]) for name, metrics in self.results.items()
        }

    def compile_times(self) -> dict[str, float]:
        return {name: metrics["compile_seconds"] for name, metrics in self.results.items()}

    def best_compiler(self, metric: str = "cx_count") -> str:
        return min(self.results, key=lambda name: self.results[name][metric])

    def _result_key(self, name: str) -> str:
        """Resolve ``name`` against the results case-insensitively, matching
        the registry's lookup semantics."""
        for key in self.results:
            if key.lower() == name.lower():
                return key
        raise KeyError(name)

    def reduction_vs(self, baseline: str, metric: str = "cx_count") -> float:
        """Relative reduction of QuCLEAR versus ``baseline`` (1.0 = 100 %)."""
        quclear = self.results[self._result_key("QuCLEAR")][metric]
        other = self.results[self._result_key(baseline)][metric]
        if other == 0:
            return 0.0
        return 1.0 - quclear / other


def compare_compilers(
    terms: Sequence[PauliTerm],
    workload: str = "custom",
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    quclear_kwargs: dict | None = None,
) -> CompilerComparison:
    """Compile ``terms`` with every requested compiler and collect the metrics."""
    term_list = list(terms)
    registry = get_registry()
    comparison = CompilerComparison(
        workload=workload,
        num_qubits=term_list[0].num_qubits,
        num_paulis=len(term_list),
    )
    for name in compilers:
        if quclear_kwargs is not None and name.lower() == "quclear":
            # same preset shape as the registry's "quclear" pipeline, so the
            # compile-time measurement stays comparable across both branches
            result = quclear_preset(**quclear_kwargs).run(term_list)
        else:
            result = registry.compile(name, term_list)
        comparison.results[name] = result.metrics()
        comparison.pass_timings[name] = result.pass_timings
    return comparison


def compare_on_benchmark(
    benchmark: str | Benchmark,
    compilers: Sequence[str] = DEFAULT_COMPILERS,
    quclear_kwargs: dict | None = None,
) -> CompilerComparison:
    """Run the Table III comparison on one named benchmark."""
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    return compare_compilers(
        benchmark.terms(),
        workload=benchmark.name,
        compilers=compilers,
        quclear_kwargs=quclear_kwargs,
    )
