"""Device-mapping comparison (the paper's Fig. 11)."""

from __future__ import annotations

import time
from typing import Sequence

from repro.baselines.registry import BASELINE_COMPILERS
from repro.core.framework import QuCLEAR
from repro.evaluation.comparison import CompilerComparison
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap
from repro.transpile.peephole import peephole_optimize
from repro.transpile.routing import route_circuit
from repro.workloads.registry import Benchmark, get_benchmark

#: compilers compared on limited-connectivity devices (Rustiq is excluded in
#: the paper because its output omits single-qubit rotations)
MAPPED_COMPILERS = ("QuCLEAR", "qiskit-like", "paulihedral-like", "tket-like")


def compare_mapped_compilers(
    benchmark: str | Benchmark | Sequence[PauliTerm],
    coupling: CouplingMap,
    compilers: Sequence[str] = MAPPED_COMPILERS,
) -> CompilerComparison:
    """Compile with every compiler, route to ``coupling`` and compare CNOT counts."""
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    if isinstance(benchmark, Benchmark):
        terms = benchmark.terms()
        workload = benchmark.name
    else:
        terms = list(benchmark)
        workload = "custom"

    comparison = CompilerComparison(
        workload=f"{workload}@{coupling.name}",
        num_qubits=terms[0].num_qubits,
        num_paulis=len(terms),
    )
    for name in compilers:
        start = time.perf_counter()
        if name == "QuCLEAR":
            logical = QuCLEAR().compile(terms).circuit
        else:
            logical = BASELINE_COMPILERS[name](terms).circuit
        routed = route_circuit(logical, coupling, decompose_swaps=True)
        mapped = peephole_optimize(routed.circuit)
        elapsed = time.perf_counter() - start
        comparison.results[name] = {
            "cx_count": mapped.cx_count(),
            "entangling_depth": mapped.entangling_depth(),
            "single_qubit_count": mapped.single_qubit_count(),
            "swap_count": routed.swap_count,
            "compile_seconds": elapsed,
        }
    return comparison
