"""Device-mapping comparison (the paper's Fig. 11).

Each compiler's registered pipeline is extended with a routing stage (unless
it already routes, like the QuCLEAR preset) and run against a
:class:`~repro.compiler.target.Target` built from the coupling map, so the
whole comparison flows through the unified pipeline API.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.pipeline import with_routing
from repro.compiler.registry import get_registry
from repro.compiler.target import Target
from repro.evaluation.comparison import CompilerComparison
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap
from repro.workloads.registry import Benchmark, get_benchmark

#: compilers compared on limited-connectivity devices (Rustiq is excluded in
#: the paper because its output omits single-qubit rotations)
MAPPED_COMPILERS = ("QuCLEAR", "qiskit-like", "paulihedral-like", "tket-like")


def compare_mapped_compilers(
    benchmark: str | Benchmark | Sequence[PauliTerm],
    coupling: CouplingMap,
    compilers: Sequence[str] = MAPPED_COMPILERS,
) -> CompilerComparison:
    """Compile with every compiler, route to ``coupling`` and compare CNOT counts."""
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    if isinstance(benchmark, Benchmark):
        terms = benchmark.terms()
        workload = benchmark.name
    else:
        terms = list(benchmark)
        workload = "custom"

    target = Target.from_coupling(coupling)
    registry = get_registry()
    comparison = CompilerComparison(
        workload=f"{workload}@{coupling.name}",
        num_qubits=terms[0].num_qubits,
        num_paulis=len(terms),
    )
    for name in compilers:
        pipeline = with_routing(registry.get(name))
        result = pipeline.run(terms, target=target)
        comparison.results[name] = {
            **result.metrics(),
            "swap_count": result.metadata.get("swap_count", 0),
        }
        comparison.pass_timings[name] = result.pass_timings
    return comparison
