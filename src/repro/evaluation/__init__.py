"""Evaluation harness: programmatic reproduction of the paper's tables and figures."""

from repro.evaluation.comparison import (
    CompilerComparison,
    compare_compilers,
    compare_on_benchmark,
)
from repro.evaluation.mapping import compare_mapped_compilers
from repro.evaluation.breakdown import feature_breakdown
from repro.evaluation.reporting import format_pass_timings, format_table

__all__ = [
    "CompilerComparison",
    "compare_compilers",
    "compare_on_benchmark",
    "compare_mapped_compilers",
    "feature_breakdown",
    "format_pass_timings",
    "format_table",
]
