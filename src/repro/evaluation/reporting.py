"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_render(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = "\n".join(
        "  ".join(rendered[index].ljust(widths[index]) for index in range(len(columns)))
        for rendered in rendered_rows
    )
    return "\n".join([header, separator, body])


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_pass_timings(pass_timings: Mapping[str, float]) -> str:
    """Render a pipeline's per-pass wall-clock breakdown as an aligned table.

    Accepts the ``metadata["pass_timings"]`` mapping of a
    :class:`~repro.compiler.result.CompilationResult` (pass name -> seconds,
    in run order) and appends each pass's share of the total.
    """
    if not pass_timings:
        return "(no pass timings)"
    total = sum(pass_timings.values())
    rows = [
        {
            "pass": name,
            "seconds": seconds,
            "share": f"{100.0 * seconds / total:.1f}%" if total > 0 else "-",
        }
        for name, seconds in pass_timings.items()
    ]
    rows.append({"pass": "total", "seconds": total, "share": "100.0%" if total > 0 else "-"})
    return format_table(rows, columns=["pass", "seconds", "share"])
