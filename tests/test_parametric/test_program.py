"""ParametricProgram: construction, validation, evaluation, binding shells."""

import numpy as np
import pytest

from repro.exceptions import InvalidProgramError
from repro.parametric import BoundProgram, ParametricProgram, compile_template
from repro.parametric.program import validate_parameters
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

from tests.conftest import random_pauli_terms


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestConstruction:
    def test_from_terms_coefficients_become_scales(self):
        terms = [
            PauliTerm.from_label("XX", 0.5),
            PauliTerm.from_label("ZZ", -1.25),
        ]
        program = ParametricProgram.from_terms(terms, [0, 1])
        assert program.num_terms == 2
        assert program.num_params == 2
        np.testing.assert_array_equal(program.scales, [0.5, -1.25])

    def test_from_sum(self):
        terms = random_pauli_terms(_rng(1), 4, 6)
        observable = SparsePauliSum(terms)
        program = ParametricProgram.from_sum(observable, [i % 3 for i in range(6)])
        assert program.num_qubits == 4
        assert program.num_params == 3
        np.testing.assert_array_equal(
            program.scales, observable.coefficient_vector()
        )

    def test_label_signs_fold_into_scales(self):
        # a -XX row with scale 2.0 must evaluate exactly like +XX with -2.0
        negative = ParametricProgram.from_terms(
            [PauliTerm(PauliString.from_label("XX", sign=-1), 2.0)], [0]
        )
        positive = ParametricProgram.from_terms(
            [PauliTerm.from_label("XX", -2.0)], [0]
        )
        params = [0.7]
        np.testing.assert_array_equal(
            negative.evaluate(params), positive.evaluate(params)
        )
        assert not negative.table.signs().any()

    def test_constant_terms_via_slot_minus_one(self):
        terms = [PauliTerm.from_label("XX", 3.0), PauliTerm.from_label("ZZ", 2.0)]
        program = ParametricProgram.from_terms(terms, [-1, 0])
        coefficients = program.evaluate([0.5])
        np.testing.assert_array_equal(coefficients, [3.0, 1.0])

    def test_num_params_can_exceed_used_slots(self):
        program = ParametricProgram.from_terms(
            [PauliTerm.from_label("XX", 1.0)], [0], num_params=4
        )
        assert program.num_params == 4
        np.testing.assert_array_equal(
            program.evaluate([2.0, 0.0, 0.0, 0.0]), [2.0]
        )

    def test_to_sum_matches_manual_construction(self):
        terms = random_pauli_terms(_rng(2), 5, 8)
        slots = [i % 4 for i in range(8)]
        program = ParametricProgram.from_terms(terms, slots)
        params = _rng(3).uniform(-np.pi, np.pi, 4)
        concrete = program.to_sum(params)
        expected = [term.coefficient * params[slot] for term, slot in zip(terms, slots)]
        np.testing.assert_array_equal(concrete.coefficient_vector(), expected)


class TestRejection:
    def test_empty_program(self):
        with pytest.raises(InvalidProgramError, match="empty"):
            ParametricProgram.from_terms([], [])

    def test_non_hermitian_rows(self):
        imaginary = PauliString.from_label("+iXX")
        with pytest.raises(InvalidProgramError, match="Hermitian"):
            ParametricProgram([imaginary], [0])

    def test_slot_count_mismatch(self):
        with pytest.raises(InvalidProgramError, match="one slot per term"):
            ParametricProgram.from_terms([PauliTerm.from_label("XX", 1.0)], [0, 1])

    def test_slot_below_minus_one(self):
        with pytest.raises(InvalidProgramError, match="slots"):
            ParametricProgram.from_terms([PauliTerm.from_label("XX", 1.0)], [-2])

    def test_slot_out_of_declared_range(self):
        with pytest.raises(InvalidProgramError, match="out of range"):
            ParametricProgram.from_terms(
                [PauliTerm.from_label("XX", 1.0)], [3], num_params=2
            )

    def test_float_slots_rejected(self):
        with pytest.raises(InvalidProgramError, match="integers"):
            ParametricProgram.from_terms(
                [PauliTerm.from_label("XX", 1.0)], np.array([0.0])
            )

    def test_nan_scales_rejected(self):
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            ParametricProgram.from_terms(
                [PauliTerm.from_label("XX", float("nan"))], [0]
            )

    def test_inf_scales_rejected(self):
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            ParametricProgram(
                [PauliString.from_label("XX")], [0], scales=[float("inf")]
            )


class TestParameterValidation:
    def test_wrong_arity(self):
        program = ParametricProgram.from_terms(
            random_pauli_terms(_rng(4), 3, 4), [0, 1, 0, 1]
        )
        with pytest.raises(InvalidProgramError, match="expected 2 parameter"):
            program.evaluate([1.0, 2.0, 3.0])

    def test_nan_parameters(self):
        program = ParametricProgram.from_terms(
            random_pauli_terms(_rng(5), 3, 4), [0, 1, 0, 1]
        )
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            program.evaluate([float("nan"), 1.0])

    def test_inf_parameters(self):
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            validate_parameters([float("inf")], 1)

    def test_non_numeric_parameters(self):
        with pytest.raises(InvalidProgramError):
            validate_parameters(["x"], 1)

    def test_matrix_parameters_rejected(self):
        with pytest.raises(InvalidProgramError, match="shape"):
            validate_parameters([[1.0, 2.0]], 2)

    def test_bind_rejects_nan_at_every_entry_point(self):
        program = ParametricProgram.from_terms(
            random_pauli_terms(_rng(6), 3, 4), [0, 1, 0, 1]
        )
        template = compile_template(program, level=1)
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            template.bind([float("nan"), 0.0])
        with pytest.raises(InvalidProgramError, match="NaN/inf"):
            BoundProgram(template, [0.0, float("inf")])


class TestBoundProgram:
    def test_len_is_template_terms(self):
        program = ParametricProgram.from_terms(
            random_pauli_terms(_rng(7), 3, 5), [0, 1, 0, 1, 0]
        )
        template = compile_template(program, level=0)
        bound = BoundProgram(template, [0.25, -0.75])
        assert len(bound) == 5

    def test_arity_checked_at_construction(self):
        program = ParametricProgram.from_terms(
            random_pauli_terms(_rng(8), 3, 4), [0, 1, 0, 1]
        )
        template = compile_template(program, level=0)
        with pytest.raises(InvalidProgramError, match="parameter"):
            BoundProgram(template, [0.25])
