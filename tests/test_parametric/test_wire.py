"""Wire round-trips for the ``repro.parametric/v1`` payloads."""

import json

import numpy as np
import pytest

import repro
from repro.circuits.qasm import to_qasm
from repro.exceptions import WireFormatError
from repro.parametric import ParametricProgram, compile_template
from repro.parametric.template import _diff_results
from repro.service.serialize import (
    PARAMETRIC_FORMAT,
    bind_request_from_wire,
    bind_request_to_wire,
    encode_array,
    parametric_program_from_wire,
    parametric_program_to_wire,
    template_from_wire,
    template_to_wire,
)

from tests.conftest import random_pauli_terms


def _rng(seed):
    return np.random.default_rng(seed)


def _program(seed=3, num_qubits=4, num_terms=10, num_params=3):
    terms = random_pauli_terms(_rng(seed), num_qubits, num_terms)
    slots = [index % num_params for index in range(num_terms)]
    return ParametricProgram.from_terms(terms, slots)


def _json_round_trip(payload):
    """Payloads must survive actual JSON, not just dict copying."""
    return json.loads(json.dumps(payload))


class TestProgramWire:
    def test_round_trip_is_exact(self):
        program = _program()
        restored = parametric_program_from_wire(
            _json_round_trip(parametric_program_to_wire(program))
        )
        assert restored.num_qubits == program.num_qubits
        assert restored.num_params == program.num_params
        np.testing.assert_array_equal(restored.slots, program.slots)
        np.testing.assert_array_equal(restored.scales, program.scales)
        for index in range(program.num_terms):
            assert restored.table.row(index) == program.table.row(index)

    def test_format_tag(self):
        payload = parametric_program_to_wire(_program())
        assert payload["format"] == PARAMETRIC_FORMAT == "repro.parametric/v1"

    def test_wrong_format_rejected(self):
        payload = parametric_program_to_wire(_program())
        payload["format"] = "repro.parametric/v999"
        with pytest.raises(WireFormatError):
            parametric_program_from_wire(payload)

    def test_wrong_kind_rejected(self):
        payload = parametric_program_to_wire(_program())
        payload["kind"] = "template"
        with pytest.raises(WireFormatError, match="kind"):
            parametric_program_from_wire(payload)

    def test_missing_field_rejected(self):
        payload = parametric_program_to_wire(_program())
        del payload["slots"]
        with pytest.raises(WireFormatError):
            parametric_program_from_wire(payload)

    def test_tampered_payload_revalidates(self):
        # the decoder runs the full ParametricProgram validation: a slot
        # pointing outside the declared arity must not slip through the wire
        payload = parametric_program_to_wire(_program(num_params=3))
        payload["num_params"] = 1
        with pytest.raises(WireFormatError, match="malformed parametric program"):
            parametric_program_from_wire(payload)


class TestTemplateWire:
    @pytest.mark.parametrize("level", [0, 1, 3])
    def test_bind_after_round_trip_is_bit_identical(self, level):
        program = _program(seed=5)
        template = compile_template(program, level=level)
        restored = template_from_wire(_json_round_trip(template_to_wire(template)))
        params = _rng(55).uniform(-np.pi, np.pi, program.num_params)
        mismatch = _diff_results(restored.bind(params), template.bind(params))
        assert mismatch is None, f"restored template diverged on {mismatch}"
        reference = repro.compile(program.to_sum(params), level=level)
        assert to_qasm(restored.bind(params).circuit) == to_qasm(reference.circuit)

    def test_round_trip_preserves_structure(self):
        template = compile_template(_program(seed=6), level=3)
        restored = template_from_wire(_json_round_trip(template_to_wire(template)))
        assert restored.level == template.level
        assert restored.name == template.name
        assert restored.skeleton_gate_count == template.skeleton_gate_count
        assert restored.rotation_count == template.rotation_count
        assert restored._positions == template._positions
        assert restored._chains == template._chains
        assert restored._normalize == template._normalize
        assert restored._always_fallback == template._always_fallback
        assert restored._metadata_base == template._metadata_base
        assert restored._extraction_metadata == template._extraction_metadata

    def test_wrong_kind_rejected(self):
        payload = template_to_wire(compile_template(_program(seed=7), level=1))
        payload["kind"] = "program"
        with pytest.raises(WireFormatError, match="kind"):
            template_from_wire(payload)

    def test_inconsistent_chain_arrays_rejected(self):
        payload = template_to_wire(compile_template(_program(seed=8), level=1))
        payload["chain_offsets"] = encode_array(
            np.array([0, 1], dtype=np.int64), "<i8"
        )
        with pytest.raises(WireFormatError, match="inconsistent chain arrays"):
            template_from_wire(payload)

    def test_missing_skeleton_rejected(self):
        payload = template_to_wire(compile_template(_program(seed=9), level=1))
        del payload["skeleton"]
        with pytest.raises(WireFormatError):
            template_from_wire(payload)


class TestBindRequestWire:
    def test_round_trip_by_key(self):
        payload = _json_round_trip(
            bind_request_to_wire([0.25, -1.5], template_key="ab12")
        )
        key, template_payload, params = bind_request_from_wire(payload)
        assert key == "ab12"
        assert template_payload is None
        assert params == [0.25, -1.5]

    def test_round_trip_inline(self):
        template = compile_template(_program(seed=10), level=1)
        payload = _json_round_trip(bind_request_to_wire([0.5, 0.5, 0.5], template=template))
        key, template_payload, params = bind_request_from_wire(payload)
        assert key is None
        assert params == [0.5, 0.5, 0.5]
        restored = template_from_wire(template_payload)
        assert restored.skeleton_gate_count == template.skeleton_gate_count

    def test_encoder_rejects_both_and_neither(self):
        template = compile_template(_program(seed=10), level=1)
        with pytest.raises(WireFormatError, match="never both and never neither"):
            bind_request_to_wire([0.1], template_key="ab", template=template)
        with pytest.raises(WireFormatError, match="never both and never neither"):
            bind_request_to_wire([0.1])

    def test_decoder_rejects_both_and_neither(self):
        payload = bind_request_to_wire([0.1, 0.2, 0.3], template_key="ab12")
        payload["template"] = {"format": PARAMETRIC_FORMAT, "kind": "template"}
        with pytest.raises(WireFormatError, match="never both and never neither"):
            bind_request_from_wire(payload)
        payload["template"] = None
        payload["template_key"] = None
        with pytest.raises(WireFormatError, match="never both and never neither"):
            bind_request_from_wire(payload)

    def test_decoder_rejects_non_string_key(self):
        payload = bind_request_to_wire([0.1], template_key="ab12")
        payload["template_key"] = 17
        with pytest.raises(WireFormatError, match="template_key"):
            bind_request_from_wire(payload)

    def test_decoder_rejects_non_list_params(self):
        payload = bind_request_to_wire([0.1], template_key="ab12")
        payload["params"] = "0.1"
        with pytest.raises(WireFormatError, match="params"):
            bind_request_from_wire(payload)
