"""Bit-identity: ``CompiledTemplate.bind`` versus from-scratch ``repro.compile``.

The whole value proposition of :mod:`repro.parametric` is that a bind is not
an approximation — every field of the :class:`CompilationResult` (gate list,
extracted tail, conjugation tableau, term list, metadata) must match what the
concrete preset pipeline produces at the same angles, bit for bit.  These
tests sweep random programs across every preset level, multiple parameter
draws per template, >64-qubit word boundaries, and the engineered degenerate
cases that force the full-compile fallback.
"""

import numpy as np
import pytest

import repro
from repro.circuits.qasm import to_qasm
from repro.parametric import ParametricProgram, compile_template
from repro.parametric.template import _diff_results
from repro.paulis.sum import SparsePauliSum

from tests.conftest import random_pauli_terms

LEVELS = [0, 1, 2, 3]


def _rng(seed):
    return np.random.default_rng(seed)


def _random_program(seed, num_qubits, num_terms, num_params):
    terms = random_pauli_terms(_rng(seed), num_qubits, num_terms)
    slots = [index % num_params for index in range(num_terms)]
    return ParametricProgram.from_terms(terms, slots)


def assert_identical(bound, reference):
    """Every comparable field of the two results matches exactly."""
    mismatch = _diff_results(bound, reference)
    assert mismatch is None, f"bind diverged from repro.compile on {mismatch}"
    # belt and braces beyond the template's own self-check comparator: the
    # serialized circuit text (repr-exact floats) must agree too
    assert to_qasm(bound.circuit) == to_qasm(reference.circuit)


class TestBitIdentity:
    @pytest.mark.parametrize("level", LEVELS)
    def test_random_programs_random_draws(self, level):
        for seed in range(4):
            program = _random_program(seed, num_qubits=4, num_terms=12, num_params=3)
            template = compile_template(program, level=level)
            for draw in range(3):
                params = _rng(100 + 10 * seed + draw).uniform(-2 * np.pi, 2 * np.pi, 3)
                bound = template.bind(params)
                reference = repro.compile(program.to_sum(params), level=level)
                assert_identical(bound, reference)
            assert template.binds == 3
            assert template.fallback_binds == 0

    @pytest.mark.parametrize("level", [1, 3])
    def test_beyond_one_word_of_qubits(self, level):
        # 70 qubits: x/z masks span two uint64 words per row
        program = _random_program(7, num_qubits=70, num_terms=10, num_params=4)
        template = compile_template(program, level=level)
        params = _rng(71).uniform(-1.0, 1.0, 4)
        assert_identical(
            template.bind(params),
            repro.compile(program.to_sum(params), level=level),
        )

    def test_from_sum_input(self):
        terms = random_pauli_terms(_rng(11), 5, 9)
        observable = SparsePauliSum(terms)
        program = ParametricProgram.from_sum(observable, [i % 2 for i in range(len(observable))])
        template = compile_template(program, level=3)
        params = [0.813, -1.207]
        assert_identical(
            template.bind(params),
            repro.compile(program.to_sum(params), level=3),
        )

    def test_repeat_binds_do_not_share_mutable_state(self):
        program = _random_program(13, num_qubits=4, num_terms=8, num_params=2)
        template = compile_template(program, level=3)
        first = template.bind([0.4, 0.9])
        again = template.bind([0.4, 0.9])
        assert first.circuit == again.circuit
        other = template.bind([1.1, -0.3])
        # the earlier result must be untouched by later binds
        assert first.circuit == again.circuit
        assert other.circuit != first.circuit


class TestDegenerateFallback:
    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_zero_parameter_falls_back_and_stays_identical(self, level):
        program = _random_program(17, num_qubits=4, num_terms=8, num_params=2)
        template = compile_template(program, level=level)
        params = [0.0, 1.3]  # a zero coefficient lands in the peephole kill window
        bound = template.bind(params)
        assert template.fallback_binds == 1
        assert_identical(bound, repro.compile(program.to_sum(params), level=level))

    def test_level0_never_falls_back(self):
        # no peephole at level 0: zero-angle rotations are kept, not deleted
        program = _random_program(19, num_qubits=4, num_terms=8, num_params=2)
        template = compile_template(program, level=0)
        params = [0.0, 1.3]
        bound = template.bind(params)
        assert template.fallback_binds == 0
        assert_identical(bound, repro.compile(program.to_sum(params), level=0))

    def test_constant_zero_term_forces_permanent_fallback(self):
        # a constant term scaled to exactly 0.0 is degenerate at every
        # calibration draw — the template must mark itself fallback-only
        # and still serve correct results
        paulis = [term.pauli for term in random_pauli_terms(_rng(23), 3, 4)]
        program = ParametricProgram(
            paulis, [-1, 0, 1, 0], scales=[0.0, 1.0, 1.0, 1.0]
        )
        template = compile_template(program, level=3)
        assert template._always_fallback
        params = [0.77, -0.31]
        bound = template.bind(params)
        assert template.fallback_binds == 1
        assert_identical(bound, repro.compile(program.to_sum(params), level=3))


class TestCompileManyIntegration:
    def test_bound_programs_mix_with_regular_programs(self):
        from repro.parametric import BoundProgram

        program = _random_program(29, num_qubits=4, num_terms=8, num_params=2)
        template = compile_template(program, level=3)
        params = [0.6, -1.4]
        regular_terms = random_pauli_terms(_rng(31), 4, 6)

        results = repro.compile_many(
            [BoundProgram(template, params), regular_terms], level=3
        )
        assert len(results) == 2
        assert_identical(results[0], repro.compile(program.to_sum(params), level=3))
        assert results[1].circuit == repro.compile(regular_terms, level=3).circuit

    def test_all_bound_batch_plans_serial(self):
        from repro.compiler.api import plan_batch
        from repro.parametric import BoundProgram

        program = _random_program(37, num_qubits=3, num_terms=6, num_params=2)
        template = compile_template(program, level=2)
        bound = [BoundProgram(template, [0.1 * i, 0.2]) for i in range(1, 4)]
        plan = plan_batch(bound)
        assert plan.executor == "serial"
        assert "bound template" in plan.reason


class TestTemplateRejections:
    def test_pipeline_rejected(self):
        from repro.exceptions import CompilerError

        program = _random_program(41, num_qubits=3, num_terms=4, num_params=2)
        with pytest.raises(CompilerError, match="preset levels only"):
            compile_template(program, pipeline=object())

    def test_bad_level_rejected(self):
        from repro.exceptions import CompilerError

        program = _random_program(43, num_qubits=3, num_terms=4, num_params=2)
        with pytest.raises(CompilerError, match="optimization level"):
            compile_template(program, level=7)
        with pytest.raises(CompilerError, match="optimization level"):
            compile_template(program, level=True)

    def test_concrete_program_rejected(self):
        from repro.exceptions import CompilerError

        with pytest.raises(CompilerError, match="ParametricProgram"):
            compile_template(random_pauli_terms(_rng(47), 3, 4))
