"""Tests for measurement grouping, backends and the hybrid executor."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import Statevector
from repro.core.extraction import CliffordExtractor
from repro.core.framework import QuCLEAR
from repro.core.measurement_grouping import (
    MeasurementGroup,
    group_observables,
    measurement_savings,
    qubitwise_commute,
)
from repro.core.absorption import ObservableAbsorber
from repro.exceptions import AbsorptionError, CircuitError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.simulation.backends import StabilizerBackend, StatevectorBackend
from repro.simulation.executor import HybridExecutor
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.workloads.qaoa import maxcut_qaoa_terms, regular_graph

from tests.conftest import random_pauli_terms


class TestQubitwiseCommutation:
    def test_identity_always_commutes(self):
        assert qubitwise_commute(PauliString.from_label("IZI"), PauliString.from_label("XIZ"))

    def test_conflicting_letters(self):
        assert not qubitwise_commute(PauliString.from_label("XZ"), PauliString.from_label("XX"))

    def test_equal_letters(self):
        assert qubitwise_commute(PauliString.from_label("XZ"), PauliString.from_label("XZ"))

    def test_size_mismatch(self):
        with pytest.raises(AbsorptionError):
            qubitwise_commute(PauliString.from_label("X"), PauliString.from_label("XX"))


class TestMeasurementGrouping:
    def _absorbed(self, rng, labels):
        terms = random_pauli_terms(rng, len(labels[0]), 4)
        extraction = CliffordExtractor().extract(terms)
        absorber = ObservableAbsorber(extraction.conjugation)
        # Use an identity conjugation-free absorber for deterministic grouping:
        # the grouping operates on the *updated* observables whatever they are.
        return [absorber.absorb_pauli(PauliString.from_label(label)) for label in labels]

    def test_grouping_reduces_executions(self, rng):
        absorbed = self._absorbed(rng, ["ZZI", "ZIZ", "IZZ", "XXI"])
        savings = measurement_savings(absorbed)
        assert savings["num_groups"] <= savings["num_observables"]
        assert savings["saved_executions"] >= 0

    def test_groups_are_internally_compatible(self, rng):
        absorbed = self._absorbed(rng, ["ZZI", "XIX", "IZZ", "XXX", "ZII", "IXI"])
        for group in group_observables(absorbed):
            for i, first in enumerate(group.members):
                for second in group.members[i + 1 :]:
                    assert qubitwise_commute(first.updated, second.updated)

    def test_group_rejects_incompatible_member(self, rng):
        absorbed = self._absorbed(rng, ["ZZ", "XX"])
        group = MeasurementGroup()
        group.add(absorbed[0])
        if not group.accepts(absorbed[1]):
            with pytest.raises(AbsorptionError):
                group.add(absorbed[1])

    def test_group_expectations_match_individual(self, rng):
        """Grouped CA-Post must equal per-observable CA-Post exactly."""
        terms = random_pauli_terms(rng, 3, 4)
        extraction = CliffordExtractor().extract(terms)
        absorber = ObservableAbsorber(extraction.conjugation)
        observables = [PauliString.from_label(label) for label in ["ZZI", "ZIZ", "IZZ"]]
        absorbed = [absorber.absorb_pauli(observable) for observable in observables]
        groups = group_observables(absorbed)
        original_state = Statevector.from_circuit(synthesize_trotter_circuit(terms))
        for group in groups:
            circuit = extraction.optimized_circuit.compose(group.measurement_circuit())
            probabilities = Statevector.from_circuit(circuit).probability_dict()
            counts = {key: int(round(value * 10**7)) for key, value in probabilities.items()}
            values = group.expectations_from_counts(counts)
            for member, value in zip(group.members, values):
                exact = original_state.expectation_value(member.original)
                assert value == pytest.approx(exact, abs=1e-5)

    def test_empty_counts_rejected(self, rng):
        absorbed = self._absorbed(rng, ["ZZ"])
        group = group_observables(absorbed)[0]
        with pytest.raises(AbsorptionError):
            group.expectations_from_counts({})


class TestBackends:
    def test_statevector_backend_counts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        counts = StatevectorBackend(seed=3).run(circuit, shots=500)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "01"}

    def test_stabilizer_backend_matches_statevector(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        counts = StabilizerBackend(seed=3).run(circuit, shots=300)
        assert set(counts) <= {"00", "11"}

    def test_stabilizer_backend_rejects_rotations(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        with pytest.raises(CircuitError):
            StabilizerBackend().run(circuit, shots=10)

    def test_probabilities_helper(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        assert StatevectorBackend().probabilities(circuit) == {"1": 1.0}


class TestHybridExecutor:
    def test_expectation_matches_exact(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        observable = SparsePauliSum.from_labels(["ZZI", "IXX", "ZIZ"], [0.5, -0.75, 1.0])
        executor = HybridExecutor(shots=200_000)
        estimate = executor.estimate_expectation(terms, observable)
        exact = Statevector.from_circuit(synthesize_trotter_circuit(terms)).expectation_value(
            observable
        )
        assert estimate.value == pytest.approx(exact, abs=0.05)
        assert estimate.num_circuit_executions <= estimate.num_observables

    def test_grouping_reduces_circuit_executions(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        observable = SparsePauliSum.from_labels(["ZZI", "ZIZ", "IZZ", "ZII"], [1, 1, 1, 1])
        grouped = HybridExecutor(shots=1000, group_measurements=True).estimate_expectation(
            terms, observable
        )
        ungrouped = HybridExecutor(shots=1000, group_measurements=False).estimate_expectation(
            terms, observable
        )
        assert grouped.num_circuit_executions <= ungrouped.num_circuit_executions
        assert ungrouped.num_circuit_executions == 4

    def test_sample_distribution_matches_original(self):
        graph = regular_graph(6, 2, seed=8)
        terms = maxcut_qaoa_terms(graph, gamma=0.6, beta=0.3)
        prep = QuantumCircuit(6)
        for qubit in range(6):
            prep.h(qubit)
        executor = HybridExecutor(shots=60_000)
        estimate = executor.sample_distribution(terms, state_preparation=prep)
        original = Statevector.from_circuit(
            prep.compose(synthesize_trotter_circuit(terms))
        ).probability_dict()
        total = sum(estimate.counts.values())
        for bits, probability in original.items():
            if probability > 0.05:
                assert estimate.counts.get(bits, 0) / total == pytest.approx(probability, abs=0.03)

    def test_single_observable_wrapper(self, rng):
        terms = random_pauli_terms(rng, 2, 3)
        executor = HybridExecutor(shots=100_000)
        value = executor.expected_observable_value(terms, PauliString.from_label("ZZ"))
        exact = Statevector.from_circuit(synthesize_trotter_circuit(terms)).expectation_value(
            PauliString.from_label("ZZ")
        )
        assert value == pytest.approx(exact, abs=0.05)
