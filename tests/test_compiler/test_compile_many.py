"""Tests for the batch compile entry point (repro.compile_many)."""

import pytest

import repro
from repro.clifford.engine import ConjugationCache
from repro.exceptions import CompilerError
from repro.paulis.term import PauliTerm
from repro.paulis.sum import SparsePauliSum

from tests.conftest import random_pauli, random_pauli_terms


def _programs(rng, count=4):
    return [random_pauli_terms(rng, 4, 6) for _ in range(count)]


class TestCompileMany:
    def test_matches_sequential_compile(self, rng):
        programs = _programs(rng)
        sequential = [repro.compile(program, level=3) for program in programs]
        batch = repro.compile_many(programs, level=3)
        assert len(batch) == len(programs)
        for batch_result, reference in zip(batch, sequential):
            assert batch_result.circuit == reference.circuit
            assert batch_result.extracted_clifford == reference.extracted_clifford

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_executor_strategies_agree(self, rng, executor):
        programs = _programs(rng, count=3)
        reference = [repro.compile(program, level=2) for program in programs]
        batch = repro.compile_many(programs, level=2, executor=executor, max_workers=2)
        assert [r.circuit for r in batch] == [r.circuit for r in reference]

    def test_process_pool_roundtrip(self, rng):
        # Results must pickle back across the process boundary; the bulky
        # per-process ConjugationCache is stripped before the return trip.
        programs = _programs(rng, count=2)
        reference = [repro.compile(program, level=3) for program in programs]
        batch = repro.compile_many(
            programs, level=3, executor="processes", max_workers=2
        )
        assert [r.circuit for r in batch] == [r.circuit for r in reference]
        assert batch[0].properties["conjugation_cache"] is None
        # lazy absorption still works without the cache
        observable = random_pauli(rng, 4)
        assert batch[0].absorb_observables([observable])

    def test_results_in_input_order(self, rng):
        programs = _programs(rng, count=6)
        batch = repro.compile_many(programs, level=0)
        for result, program in zip(batch, programs):
            # level 0 emits one V-shaped block per rotation, in program order
            assert result.circuit.num_qubits == program[0].num_qubits

    def test_empty_batch(self):
        assert repro.compile_many([]) == []

    def test_accepts_sparse_pauli_sums(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        observable = SparsePauliSum(PauliTerm(t.pauli, t.coefficient) for t in terms)
        batch = repro.compile_many([observable, terms], level=1)
        assert len(batch) == 2

    def test_unknown_executor_rejected(self, rng):
        with pytest.raises(CompilerError):
            repro.compile_many(_programs(rng, count=2), executor="fleet")

    def test_registered_pipeline_name(self, rng):
        programs = _programs(rng, count=2)
        batch = repro.compile_many(programs, pipeline="quclear")
        reference = [repro.compile(program, pipeline="quclear") for program in programs]
        assert [r.circuit for r in batch] == [r.circuit for r in reference]


class TestBatchPlan:
    """Overhead-aware executor resolution (the compile_many 0.93x fix)."""

    def test_small_batch_falls_back_to_serial(self, rng):
        from repro.compiler import plan_batch

        # max_workers pinned so the verdict is the term-count cutoff, not the
        # host's core count
        plan = plan_batch(_programs(rng, count=4), max_workers=4)
        assert plan.executor == "serial"
        assert plan.total_terms == 24
        assert "cutoff" in plan.reason

    def test_single_program_is_serial_even_when_forced(self, rng):
        from repro.compiler import plan_batch

        plan = plan_batch(_programs(rng, count=1), executor="threads")
        assert plan.executor == "serial"

    def test_large_batch_picks_processes(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import PROCESS_BATCH_TERMS

        program = random_pauli_terms(rng, 4, 500)
        batch = [program] * (PROCESS_BATCH_TERMS // 500 + 1)
        plan = plan_batch(batch, max_workers=4)
        assert plan.executor == "processes"
        assert plan.chunksize >= 1
        assert plan.max_workers >= 1

    def test_mid_batch_picks_threads(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import SERIAL_BATCH_TERMS

        program = random_pauli_terms(rng, 4, SERIAL_BATCH_TERMS // 2 + 1)
        plan = plan_batch([program, program], max_workers=4)
        assert plan.executor == "threads"

    def test_explicit_executor_honored(self, rng):
        from repro.compiler import plan_batch

        plan = plan_batch(_programs(rng, count=3), executor="processes", max_workers=2)
        assert plan.executor == "processes"
        assert plan.max_workers == 2

    def test_invalid_executor_rejected(self, rng):
        from repro.compiler import plan_batch

        with pytest.raises(CompilerError):
            plan_batch(_programs(rng, count=2), executor="fleet")

    def test_auto_never_trades_a_shared_cache_for_processes(self, rng):
        # a caller-supplied conjugation cache only pools work in-process: a
        # process-sized batch must still come back with the cache attached
        from repro.compiler.api import PROCESS_BATCH_TERMS

        per_program = PROCESS_BATCH_TERMS // 2 + 1
        terms = random_pauli_terms(rng, 4, 6)
        programs = [terms * (per_program // len(terms) + 1)] * 2
        cache = ConjugationCache()
        batch = repro.compile_many(
            programs, level=0, max_workers=2, conjugation_cache=cache
        )
        assert all(result.properties["conjugation_cache"] is cache for result in batch)

    def test_auto_serial_matches_thread_results(self, rng):
        # the fallback must be a pure strategy change, never a result change
        programs = _programs(rng, count=3)
        auto = repro.compile_many(programs, level=2)
        threaded = repro.compile_many(programs, level=2, executor="threads", max_workers=2)
        assert [r.circuit for r in auto] == [r.circuit for r in threaded]


class TestBatchPlanBoundaries:
    """Exact threshold behavior of the overhead-aware executor resolution.

    ``plan_batch`` only reads ``len(program)`` per entry, so the boundary
    programs are built by repeating one term — the term *count* is what's
    under test, not the synthesis.
    """

    @staticmethod
    def _program_of(rng, total_terms):
        seed = random_pauli_terms(rng, 4, 1)
        return seed * total_terms

    def test_exactly_at_serial_cutoff_is_threads(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import SERIAL_BATCH_TERMS

        half = SERIAL_BATCH_TERMS // 2
        plan = plan_batch(
            [self._program_of(rng, half), self._program_of(rng, SERIAL_BATCH_TERMS - half)],
            max_workers=4,
        )
        assert plan.total_terms == SERIAL_BATCH_TERMS
        assert plan.executor == "threads"

    def test_one_below_serial_cutoff_is_serial(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import SERIAL_BATCH_TERMS

        half = SERIAL_BATCH_TERMS // 2
        plan = plan_batch(
            [
                self._program_of(rng, half),
                self._program_of(rng, SERIAL_BATCH_TERMS - half - 1),
            ],
            max_workers=4,
        )
        assert plan.total_terms == SERIAL_BATCH_TERMS - 1
        assert plan.executor == "serial"
        assert plan.max_workers == 1

    def test_exactly_at_process_cutoff_is_processes(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import PROCESS_BATCH_TERMS

        half = PROCESS_BATCH_TERMS // 2
        plan = plan_batch(
            [
                self._program_of(rng, half),
                self._program_of(rng, PROCESS_BATCH_TERMS - half),
            ],
            max_workers=4,
        )
        assert plan.total_terms == PROCESS_BATCH_TERMS
        assert plan.executor == "processes"

    def test_one_below_process_cutoff_is_threads(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import PROCESS_BATCH_TERMS

        half = PROCESS_BATCH_TERMS // 2
        plan = plan_batch(
            [
                self._program_of(rng, half),
                self._program_of(rng, PROCESS_BATCH_TERMS - half - 1),
            ],
            max_workers=4,
        )
        assert plan.total_terms == PROCESS_BATCH_TERMS - 1
        assert plan.executor == "threads"

    def test_explicit_serial_override_beats_process_sized_batch(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import PROCESS_BATCH_TERMS

        programs = [self._program_of(rng, PROCESS_BATCH_TERMS)] * 2
        plan = plan_batch(programs, max_workers=4, executor="serial")
        assert plan.executor == "serial"
        assert "explicit" in plan.reason

    def test_explicit_threads_override_beats_process_sized_batch(self, rng):
        from repro.compiler import plan_batch
        from repro.compiler.api import PROCESS_BATCH_TERMS

        programs = [self._program_of(rng, PROCESS_BATCH_TERMS)] * 2
        plan = plan_batch(programs, max_workers=4, executor="threads")
        assert plan.executor == "threads"
        assert "explicit" in plan.reason

    def test_explicit_processes_override_beats_tiny_batch(self, rng):
        from repro.compiler import plan_batch

        plan = plan_batch(
            [self._program_of(rng, 3), self._program_of(rng, 3)],
            max_workers=4,
            executor="processes",
        )
        assert plan.executor == "processes"

    def test_explicit_override_still_degenerates_to_serial_alone(self, rng):
        # the one documented exception: nothing to parallelize
        from repro.compiler import plan_batch

        plan = plan_batch([self._program_of(rng, 50)], executor="processes")
        assert plan.executor == "serial"
        plan = plan_batch(
            [self._program_of(rng, 50)] * 3, max_workers=1, executor="threads"
        )
        assert plan.executor == "serial"

    def test_explicit_processes_never_shares_the_caller_cache(self, rng):
        # the shared-cache-never-with-processes invariant, explicit flavor:
        # workers keep private per-process caches, results come back with the
        # cache stripped, and the caller's object stays untouched
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(2)]
        cache = ConjugationCache()
        batch = repro.compile_many(
            programs,
            level=3,
            executor="processes",
            max_workers=2,
            conjugation_cache=cache,
        )
        assert all(r.properties["conjugation_cache"] is not cache for r in batch)
        assert all(r.properties["conjugation_cache"] is None for r in batch)
        assert cache.stats()["entries"] == 0

    def test_auto_downgrade_reason_mentions_the_cache(self, rng):
        # the auto path's cache-preserving downgrade is observable via the
        # results: every result must carry the caller's cache object
        from repro.compiler.api import PROCESS_BATCH_TERMS

        per_program = PROCESS_BATCH_TERMS // 2 + 1
        programs = [self._program_of(rng, per_program)] * 2
        cache = ConjugationCache()
        batch = repro.compile_many(
            programs, level=0, max_workers=2, conjugation_cache=cache
        )
        assert all(r.properties["conjugation_cache"] is cache for r in batch)


class TestSharedConjugationCache:
    def test_cache_attached_to_every_result(self, rng):
        programs = _programs(rng, count=3)
        cache = ConjugationCache()
        batch = repro.compile_many(programs, level=3, conjugation_cache=cache)
        for result in batch:
            assert result.properties["conjugation_cache"] is cache

    def test_identical_programs_hit_the_cache(self, rng):
        program = random_pauli_terms(rng, 4, 6)
        cache = ConjugationCache()
        batch = repro.compile_many(
            [list(program), list(program), list(program)],
            level=3,
            conjugation_cache=cache,
        )
        observable = random_pauli(rng, 4)
        for result in batch:
            result.absorb_observables([observable])
        stats = cache.stats()
        # three identical extracted tails -> one frozen conjugator, two hits
        assert stats["entries"] == 1
        assert stats["hits"] >= 2

    def test_compile_still_has_a_cache_without_batching(self, rng):
        result = repro.compile(random_pauli_terms(rng, 4, 6), level=3)
        assert result.properties["conjugation_cache"] is not None
