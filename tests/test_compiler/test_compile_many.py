"""Tests for the batch compile entry point (repro.compile_many)."""

import pytest

import repro
from repro.clifford.engine import ConjugationCache
from repro.exceptions import CompilerError
from repro.paulis.term import PauliTerm
from repro.paulis.sum import SparsePauliSum

from tests.conftest import random_pauli, random_pauli_terms


def _programs(rng, count=4):
    return [random_pauli_terms(rng, 4, 6) for _ in range(count)]


class TestCompileMany:
    def test_matches_sequential_compile(self, rng):
        programs = _programs(rng)
        sequential = [repro.compile(program, level=3) for program in programs]
        batch = repro.compile_many(programs, level=3)
        assert len(batch) == len(programs)
        for batch_result, reference in zip(batch, sequential):
            assert batch_result.circuit == reference.circuit
            assert batch_result.extracted_clifford == reference.extracted_clifford

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_executor_strategies_agree(self, rng, executor):
        programs = _programs(rng, count=3)
        reference = [repro.compile(program, level=2) for program in programs]
        batch = repro.compile_many(programs, level=2, executor=executor, max_workers=2)
        assert [r.circuit for r in batch] == [r.circuit for r in reference]

    def test_process_pool_roundtrip(self, rng):
        # Results must pickle back across the process boundary; the bulky
        # per-process ConjugationCache is stripped before the return trip.
        programs = _programs(rng, count=2)
        reference = [repro.compile(program, level=3) for program in programs]
        batch = repro.compile_many(
            programs, level=3, executor="processes", max_workers=2
        )
        assert [r.circuit for r in batch] == [r.circuit for r in reference]
        assert batch[0].properties["conjugation_cache"] is None
        # lazy absorption still works without the cache
        observable = random_pauli(rng, 4)
        assert batch[0].absorb_observables([observable])

    def test_results_in_input_order(self, rng):
        programs = _programs(rng, count=6)
        batch = repro.compile_many(programs, level=0)
        for result, program in zip(batch, programs):
            # level 0 emits one V-shaped block per rotation, in program order
            assert result.circuit.num_qubits == program[0].num_qubits

    def test_empty_batch(self):
        assert repro.compile_many([]) == []

    def test_accepts_sparse_pauli_sums(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        observable = SparsePauliSum(PauliTerm(t.pauli, t.coefficient) for t in terms)
        batch = repro.compile_many([observable, terms], level=1)
        assert len(batch) == 2

    def test_unknown_executor_rejected(self, rng):
        with pytest.raises(CompilerError):
            repro.compile_many(_programs(rng, count=2), executor="fleet")

    def test_registered_pipeline_name(self, rng):
        programs = _programs(rng, count=2)
        batch = repro.compile_many(programs, pipeline="quclear")
        reference = [repro.compile(program, pipeline="quclear") for program in programs]
        assert [r.circuit for r in batch] == [r.circuit for r in reference]


class TestSharedConjugationCache:
    def test_cache_attached_to_every_result(self, rng):
        programs = _programs(rng, count=3)
        cache = ConjugationCache()
        batch = repro.compile_many(programs, level=3, conjugation_cache=cache)
        for result in batch:
            assert result.properties["conjugation_cache"] is cache

    def test_identical_programs_hit_the_cache(self, rng):
        program = random_pauli_terms(rng, 4, 6)
        cache = ConjugationCache()
        batch = repro.compile_many(
            [list(program), list(program), list(program)],
            level=3,
            conjugation_cache=cache,
        )
        observable = random_pauli(rng, 4)
        for result in batch:
            result.absorb_observables([observable])
        stats = cache.stats()
        # three identical extracted tails -> one frozen conjugator, two hits
        assert stats["entries"] == 1
        assert stats["hits"] >= 2

    def test_compile_still_has_a_cache_without_batching(self, rng):
        result = repro.compile(random_pauli_terms(rng, 4, 6), level=3)
        assert result.properties["conjugation_cache"] is not None
