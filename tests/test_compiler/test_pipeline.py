"""Unit tests for the pass-pipeline machinery: pass ordering, PropertySet
propagation, per-pass timing, targets, and the compiler registry."""

import pytest

from repro.compiler import (
    AbsorptionPrep,
    CliffordExtraction,
    CompilationResult,
    CompilerRegistry,
    GroupCommuting,
    NaiveSynthesis,
    Pass,
    PassContext,
    Peephole,
    Pipeline,
    Program,
    PropertySet,
    SabreRouting,
    Target,
    get_registry,
)
from repro.exceptions import CompilerError
from repro.paulis.term import PauliTerm
from repro.transpile.coupling import CouplingMap

from tests.conftest import random_pauli_terms


def _terms():
    return [
        PauliTerm.from_label("ZZZZ", 0.31),
        PauliTerm.from_label("YYXX", 0.52),
        PauliTerm.from_label("XYZX", 0.17),
    ]


class TestPipelineBasics:
    def test_run_returns_unified_result(self):
        result = Pipeline([NaiveSynthesis()], name="naive-test").run(_terms())
        assert isinstance(result, CompilationResult)
        assert result.name == "naive-test"
        assert result.extracted_clifford is None
        assert result.extraction is None

    def test_empty_pipeline_rejected(self):
        with pytest.raises(CompilerError):
            Pipeline([], name="empty").run(_terms())

    def test_non_pass_rejected(self):
        with pytest.raises(CompilerError):
            Pipeline([object()])  # type: ignore[list-item]

    def test_pass_order_is_preserved(self):
        pipeline = Pipeline([GroupCommuting(), CliffordExtraction(), Peephole()])
        assert pipeline.pass_names() == ["GroupCommuting", "CliffordExtraction", "Peephole"]
        result = pipeline.run(_terms())
        assert result.metadata["passes"] == ["GroupCommuting", "CliffordExtraction", "Peephole"]

    def test_optimization_pass_before_synthesis_fails(self):
        with pytest.raises(CompilerError, match="synthesis pass"):
            Pipeline([Peephole(), NaiveSynthesis()]).run(_terms())

    def test_pipeline_without_synthesis_fails(self):
        with pytest.raises(CompilerError, match="no circuit"):
            Pipeline([GroupCommuting()]).run(_terms())

    def test_then_appends_without_mutating(self):
        base = Pipeline([NaiveSynthesis()], name="base")
        extended = base.then(Peephole(), name="extended")
        assert len(base) == 1
        assert len(extended) == 2
        assert extended.name == "extended"
        assert extended.run(_terms()).cx_count() <= base.run(_terms()).cx_count()

    def test_compile_alias(self):
        pipeline = Pipeline([NaiveSynthesis()])
        assert pipeline.compile(_terms()).cx_count() == pipeline.run(_terms()).cx_count()


class TestPassTimings:
    def test_every_pass_is_timed(self):
        pipeline = Pipeline([GroupCommuting(), CliffordExtraction(), Peephole()])
        result = pipeline.run(_terms())
        timings = result.metadata["pass_timings"]
        assert set(timings) == {"GroupCommuting", "CliffordExtraction", "Peephole"}
        assert all(seconds >= 0.0 for seconds in timings.values())
        assert result.pass_timings == timings

    def test_total_at_least_sum_of_passes(self):
        result = Pipeline([NaiveSynthesis(), Peephole()]).run(_terms())
        assert result.compile_seconds >= sum(result.metadata["pass_timings"].values())

    def test_repeated_pass_accumulates(self):
        result = Pipeline([NaiveSynthesis(), Peephole(), Peephole()]).run(_terms())
        # both Peephole runs fold into one entry
        assert list(result.metadata["pass_timings"]) == ["NaiveSynthesis", "Peephole"]


class TestPropertySet:
    def test_missing_key_reads_none(self):
        properties = PropertySet()
        assert properties["nothing-here"] is None

    def test_properties_propagate_between_passes(self):
        class Reader(Pass):
            seen = None

            def run(self, program, context):
                Reader.seen = context.properties["num_blocks"]

        pipeline = Pipeline([GroupCommuting(), CliffordExtraction(), Reader()])
        result = pipeline.run(_terms())
        assert Reader.seen == result.metadata["num_blocks"]

    def test_properties_surface_on_result(self):
        result = Pipeline([GroupCommuting(), CliffordExtraction(), AbsorptionPrep()]).run(_terms())
        assert result.properties["conjugation_tableau"] is not None
        assert result.properties["absorption_style"] in ("observables", "probabilities")

    def test_seed_properties(self):
        class Echo(Pass):
            def run(self, program, context):
                program.metadata["echo"] = context.properties["seeded"]

        result = Pipeline([NaiveSynthesis(), Echo()]).run(_terms(), properties={"seeded": 7})
        assert result.metadata["echo"] == 7

    def test_context_get_default(self):
        context = PassContext()
        assert context.get("missing", 3) == 3


class TestTarget:
    def test_fully_connected_target_skips_routing(self):
        target = Target.fully_connected(4)
        result = Pipeline([NaiveSynthesis(), SabreRouting()]).run(_terms(), target=target)
        assert result.metadata["swap_count"] == 0
        assert "routed" not in result.metadata

    def test_routing_to_line_makes_gates_adjacent(self):
        coupling = CouplingMap.line(4)
        target = Target.from_coupling(coupling)
        result = Pipeline([NaiveSynthesis(), SabreRouting(decompose_swaps=True)]).run(
            _terms(), target=target
        )
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)
        assert result.metadata["routed"] is True

    def test_target_coupling_size_mismatch(self):
        with pytest.raises(CompilerError):
            Target(num_qubits=3, coupling=CouplingMap.line(4))

    def test_target_named(self):
        assert Target.named("sycamore").num_qubits == 64
        assert Target.named("ibm-manhattan").num_qubits == 65
        with pytest.raises(CompilerError):
            Target.named("quantum-toaster")

    def test_circuit_larger_than_target(self):
        target = Target.from_coupling(CouplingMap.line(2))
        with pytest.raises(CompilerError):
            Pipeline([NaiveSynthesis(), SabreRouting()]).run(_terms(), target=target)

    def test_restricted_basis_gates_enforced(self):
        # a target whose basis lacks the circuit's gates must be rejected
        target = Target(
            num_qubits=4,
            coupling=CouplingMap.line(4),
            basis_gates=frozenset({"cx"}),
        )
        with pytest.raises(CompilerError, match="outside target"):
            Pipeline([NaiveSynthesis(), SabreRouting()]).run(_terms(), target=target)
        assert not target.supports_gate("rz")


class TestRegistry:
    def test_default_registry_has_all_pipelines(self):
        registry = get_registry()
        assert len(registry) >= 6
        for name in ("quclear", "naive", "qiskit-like", "paulihedral-like", "tket-like", "rustiq-like"):
            assert name in registry

    def test_every_pipeline_returns_unified_result(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        registry = get_registry()
        for name in registry:
            result = registry.compile(name, terms)
            assert isinstance(result, CompilationResult)
            assert result.name == name
            assert "pass_timings" in result.metadata

    def test_lookup_is_case_insensitive(self):
        registry = get_registry()
        assert registry.get("QuCLEAR") is registry.get("quclear")
        assert "QuCLEAR" in registry

    def test_unknown_name(self):
        with pytest.raises(CompilerError):
            get_registry().get("does-not-exist")

    def test_duplicate_registration_rejected(self):
        registry = CompilerRegistry()
        pipeline = Pipeline([NaiveSynthesis()], name="mine")
        registry.register("mine", pipeline)
        with pytest.raises(CompilerError):
            registry.register("mine", pipeline)
        registry.register("mine", pipeline, overwrite=True)
        assert registry.names() == ["mine"]
