"""Property-based correctness of the preset pipelines.

Every optimization level must preserve the program unitary: the compiled
circuit followed by the extracted Clifford tail (when there is one) must be
statevector-equivalent to naive direct synthesis, on random Pauli programs.
"""

import pytest

import repro
from repro.circuits.statevector import circuits_equivalent
from repro.compiler import preset_pipeline
from repro.exceptions import CompilerError
from repro.synthesis.trotter import synthesize_trotter_circuit

from tests.conftest import random_pauli_terms


class TestPresetEquivalence:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_levels_preserve_statevector_on_random_programs(self, level, rng):
        for _ in range(5):
            terms = random_pauli_terms(rng, 3, 6)
            result = repro.compile(terms, level=level)
            reconstructed = result.circuit
            if result.extracted_clifford is not None:
                reconstructed = reconstructed.compose(result.extracted_clifford)
            original = synthesize_trotter_circuit(terms)
            assert circuits_equivalent(original, reconstructed), f"level {level} broke equivalence"

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_levels_preserve_statevector_on_four_qubits(self, level, rng):
        terms = random_pauli_terms(rng, 4, 5)
        result = repro.compile(terms, level=level)
        reconstructed = result.circuit
        if result.extracted_clifford is not None:
            reconstructed = reconstructed.compose(result.extracted_clifford)
        assert circuits_equivalent(synthesize_trotter_circuit(terms), reconstructed)

    def test_higher_levels_never_do_worse_than_native(self, rng):
        terms = random_pauli_terms(rng, 4, 8)
        native_cx = repro.compile(terms, level=0).cx_count()
        for level in (1, 2, 3):
            assert repro.compile(terms, level=level).cx_count() <= native_cx

    def test_level3_extracts_a_clifford_tail(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        result = repro.compile(terms, level=3)
        assert result.extracted_clifford is not None
        assert result.extraction is not None

    def test_level0_has_no_extraction(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        result = repro.compile(terms, level=0)
        assert result.extracted_clifford is None
        with pytest.raises(CompilerError):
            result.observable_absorber()

    def test_invalid_level(self, rng):
        with pytest.raises(CompilerError):
            repro.compile(random_pauli_terms(rng, 2, 2), level=7)

    def test_explicit_pipeline_wins_over_level(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = repro.compile(terms, level=3, pipeline="naive")
        assert result.name == "naive"

    def test_pipeline_instance_accepted(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = repro.compile(terms, pipeline=preset_pipeline(1))
        assert result.name == "level1"

    def test_bad_pipeline_argument(self, rng):
        with pytest.raises(CompilerError):
            repro.compile(random_pauli_terms(rng, 2, 2), pipeline=3.5)


class TestDeviceAwareCompile:
    def test_compile_with_coupling_map_routes(self, rng):
        from repro.transpile.coupling import CouplingMap

        terms = random_pauli_terms(rng, 4, 6)
        coupling = CouplingMap.line(4)
        result = repro.compile(terms, target=coupling, level=3)
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)

    def test_compile_with_named_target(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = repro.compile(terms, target="sycamore", level=1)
        assert result.circuit.num_qubits == 64

    def test_target_with_routingless_pipeline_gets_routing_appended(self, rng):
        from repro.transpile.coupling import CouplingMap

        terms = random_pauli_terms(rng, 4, 6)
        coupling = CouplingMap.line(4)
        result = repro.compile(terms, target=coupling, pipeline="tket-like")
        assert result.name == "tket-like+routing"
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)

    def test_routed_result_refuses_absorption(self, rng):
        from repro.transpile.coupling import CouplingMap
        from repro.paulis.pauli import PauliString

        terms = random_pauli_terms(rng, 4, 6)
        result = repro.compile(terms, target=CouplingMap.line(4), level=3)
        if not result.metadata.get("routed"):
            pytest.skip("routing inserted no swaps for this seed")
        with pytest.raises(CompilerError, match="routed"):
            result.absorb_observables([PauliString.from_label("ZZZZ")])
        with pytest.raises(CompilerError, match="routed"):
            result.probability_absorber()

    def test_cached_absorbers_also_refuse_routed_results(self, rng):
        # AbsorptionPrep placed before routing caches logical-space absorbers;
        # the guard must reject them once the circuit has been routed.
        from repro.compiler import (
            AbsorptionPrep,
            CliffordExtraction,
            GroupCommuting,
            Pipeline,
            SabreRouting,
        )
        from repro.transpile.coupling import CouplingMap

        terms = random_pauli_terms(rng, 4, 6)
        pipeline = Pipeline(
            [GroupCommuting(), CliffordExtraction(), AbsorptionPrep(), SabreRouting()]
        )
        result = pipeline.run(terms, target=CouplingMap.line(4))
        if not result.metadata.get("routed"):
            pytest.skip("routing inserted no swaps for this seed")
        assert result.properties.get("observable_absorber") is not None
        with pytest.raises(CompilerError, match="routed"):
            result.observable_absorber()
        with pytest.raises(CompilerError, match="routed"):
            result.probability_absorber()

    def test_small_target_rejected_even_without_routing_pass(self, rng):
        from repro import Target

        terms = random_pauli_terms(rng, 6, 4)
        with pytest.raises(CompilerError, match="needs 6 qubits"):
            repro.compile(terms, target=Target.fully_connected(3), level=0)

    def test_result_properties_read_missing_keys_as_none(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = repro.compile(terms, level=3)
        assert result.properties["never-recorded"] is None

    def test_registry_compile_with_target_appends_routing(self, rng):
        from repro.transpile.coupling import CouplingMap

        terms = random_pauli_terms(rng, 4, 6)
        coupling = CouplingMap.line(4)
        result = repro.get_registry().compile("qiskit-like", terms, target=coupling)
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)
        assert "swap_count" in result.metadata

    def test_lazy_absorbers_are_cached(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = repro.compile(terms, level=3)
        assert result.observable_absorber() is result.observable_absorber()

    def test_compile_with_empty_program_keeps_synthesis_error(self):
        import warnings

        from repro.baselines.registry import compile_with
        from repro.exceptions import SynthesisError

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(SynthesisError, match="zero Pauli terms"):
                compile_with("naive", [])

    def test_compile_with_rejects_non_baselines(self, rng):
        import warnings

        from repro.baselines.registry import compile_with
        from repro.exceptions import WorkloadError

        terms = random_pauli_terms(rng, 3, 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(WorkloadError, match="unknown baseline"):
                compile_with("QUCLEAR", terms)

    def test_facade_empty_program_keeps_synthesis_error(self):
        import warnings

        from repro.exceptions import SynthesisError

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            compiler = repro.QuCLEAR()
        with pytest.raises(SynthesisError, match="empty"):
            compiler.compile([])

    def test_targetless_compile_matches_logical_pipeline(self, rng):
        from repro.compiler import quclear_pipeline

        terms = random_pauli_terms(rng, 3, 5)
        preset = repro.compile(terms, level=3)
        logical = quclear_pipeline().run(terms)
        # without a target the device stages are no-ops: identical circuits
        assert preset.circuit.gates == logical.circuit.gates
