"""The long-lived compile process pool and its planner integration."""

import pytest

import repro
from repro.compiler import CompilePool, CompilePoolBrokenError
from repro.compiler.api import POOL_BATCH_TERMS, plan_batch
from repro.exceptions import CompilerError

from tests.conftest import random_pauli_terms


def _programs(rng, count=4, qubits=4, terms=6):
    return [random_pauli_terms(rng, qubits, terms) for _ in range(count)]


@pytest.fixture(scope="module")
def pool():
    """One warm two-worker pool shared by the whole module (spawn is slow)."""
    with CompilePool(max_workers=2) as shared:
        shared.warm()
        yield shared


class TestCompilePoolBasics:
    def test_disabled_pool_is_not_usable(self):
        disabled = CompilePool(max_workers=0)
        assert not disabled.usable
        assert not disabled.alive
        assert disabled.warm() == 0

    def test_negative_workers_rejected(self):
        with pytest.raises(CompilerError):
            CompilePool(max_workers=-1)

    def test_lazy_construction(self):
        lazy = CompilePool(max_workers=1)
        assert lazy.usable and not lazy.alive
        assert lazy.stats()["alive"] is False
        lazy.shutdown()  # shutting down a never-started pool is a no-op

    def test_warm_spawns_distinct_workers(self, pool):
        assert pool.warm() == 2
        assert pool.alive

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["max_workers"] == 2
        assert {"alive", "batches", "programs", "restarts", "breaks"} <= set(stats)


class TestPoolCompilation:
    def test_matches_sequential_compile(self, rng, pool):
        programs = _programs(rng)
        reference = [repro.compile(program, level=3) for program in programs]
        batch = repro.compile_many(programs, level=3, executor="pool", pool=pool)
        assert [r.circuit for r in batch] == [r.circuit for r in reference]
        assert [r.extracted_clifford for r in batch] == [
            r.extracted_clifford for r in reference
        ]

    def test_results_strip_worker_cache(self, rng, pool):
        batch = repro.compile_many(
            _programs(rng, count=2), level=3, executor="pool", pool=pool
        )
        assert batch[0].properties.get("conjugation_cache") is None

    def test_counters_advance(self, rng, pool):
        before = pool.stats()
        repro.compile_many(_programs(rng, count=3), executor="pool", pool=pool)
        after = pool.stats()
        assert after["batches"] == before["batches"] + 1
        assert after["programs"] == before["programs"] + 3

    def test_broken_pool_falls_back_to_threads(self, rng, pool):
        programs = _programs(rng, count=3)
        reference = [repro.compile(program) for program in programs]
        # kill the workers behind the executor's back mid-lifetime
        for process in list(pool._executor._processes.values()):
            process.terminate()
        batch = repro.compile_many(programs, executor="pool", pool=pool)
        assert [r.circuit for r in batch] == [r.circuit for r in reference]
        assert pool.stats()["breaks"] >= 1
        # the next use lazily revives the executor
        revived = repro.compile_many(programs, executor="pool", pool=pool)
        assert [r.circuit for r in revived] == [r.circuit for r in reference]
        assert pool.alive

    def test_map_compile_raises_on_broken_pool(self, rng, pool):
        programs = _programs(rng, count=2)
        pool.warm()
        for process in list(pool._executor._processes.values()):
            process.terminate()
        pipeline = repro.compiler.preset_pipeline(3)
        with pytest.raises(CompilePoolBrokenError):
            pool.map_compile(pipeline, None, programs)


class TestPoolPlanning:
    def test_explicit_pool_without_pool_rejected(self, rng):
        with pytest.raises(CompilerError):
            plan_batch(_programs(rng, count=2), executor="pool")

    def test_explicit_pool_with_disabled_pool_rejected(self, rng):
        with pytest.raises(CompilerError):
            plan_batch(
                _programs(rng, count=2),
                executor="pool",
                pool=CompilePool(max_workers=0),
            )

    def test_auto_routes_large_batches_to_live_pool(self, rng):
        pool = CompilePool(max_workers=2)  # never started: planning is free
        count = POOL_BATCH_TERMS // 40 + 1
        programs = _programs(rng, count=count, qubits=6, terms=40)
        plan = plan_batch(programs, pool=pool)
        assert plan.executor == "pool"
        assert "pool" in plan.reason

    def test_auto_ignores_disabled_pool(self, rng):
        count = POOL_BATCH_TERMS // 40 + 1
        programs = _programs(rng, count=count, qubits=6, terms=40)
        plan = plan_batch(programs, pool=CompilePool(max_workers=0))
        assert plan.executor != "pool"

    def test_auto_keeps_small_batches_serial(self, rng):
        pool = CompilePool(max_workers=2)
        plan = plan_batch(_programs(rng, count=2), pool=pool)
        assert plan.executor == "serial"

    def test_single_program_never_pools(self, rng):
        pool = CompilePool(max_workers=2)
        programs = [random_pauli_terms(rng, 8, POOL_BATCH_TERMS + 10)]
        assert plan_batch(programs, pool=pool).executor == "serial"
        assert plan_batch(programs, executor="pool", pool=pool).executor == "serial"
