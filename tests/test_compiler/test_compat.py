"""Backward-compatibility shims: the legacy QuCLEAR / compile_with APIs must
keep working (with a DeprecationWarning) and agree with the new pipeline API."""

import warnings

import pytest

import repro
from repro.baselines.registry import BASELINE_COMPILERS, compile_with
from repro.compiler import get_registry, quclear_pipeline
from repro.core.framework import CompilationResult, QuCLEAR
from repro.workloads.registry import get_benchmark

from tests.conftest import random_pauli_terms


def _legacy_quclear(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return QuCLEAR(**kwargs)


class TestDeprecationWarnings:
    def test_quclear_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            QuCLEAR()

    def test_compile_with_warns(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        with pytest.warns(DeprecationWarning, match="get_registry"):
            compile_with("naive", terms)


class TestOldNewAgreement:
    def test_facade_matches_level3_metrics(self, rng):
        for _ in range(3):
            terms = random_pauli_terms(rng, 4, 8)
            old = _legacy_quclear().compile(terms)
            new = repro.compile(terms, level=3)
            assert old.cx_count() == new.cx_count()
            assert old.entangling_depth() == new.entangling_depth()
            assert old.circuit.single_qubit_count() == new.circuit.single_qubit_count()

    @pytest.mark.parametrize("workload", ["UCC-(2,4)", "MaxCut-(n15, r4)"])
    def test_facade_matches_level3_on_benchmarks(self, workload):
        terms = get_benchmark(workload).terms()
        old = _legacy_quclear().compile(terms)
        new = repro.compile(terms, level=3)
        assert old.cx_count() == new.cx_count()
        assert old.entangling_depth() == new.entangling_depth()

    def test_facade_flags_match_pipeline_flags(self, rng):
        terms = random_pauli_terms(rng, 3, 6)
        old = _legacy_quclear(reorder_within_blocks=False, local_optimize=False).compile(terms)
        new = quclear_pipeline(reorder_within_blocks=False, local_optimize=False).run(terms)
        assert old.cx_count() == new.cx_count()
        assert old.entangling_depth() == new.entangling_depth()

    @pytest.mark.parametrize("name", sorted(BASELINE_COMPILERS))
    def test_compile_with_matches_registry(self, name, rng):
        terms = random_pauli_terms(rng, 3, 5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = compile_with(name, terms)
        new = get_registry().compile(name, terms)
        assert old.metrics().keys() == new.metrics().keys()
        assert old.cx_count() == new.cx_count()
        assert old.entangling_depth() == new.entangling_depth()

    @pytest.mark.parametrize("name", sorted(BASELINE_COMPILERS))
    def test_baseline_functions_match_registry(self, name, rng):
        terms = random_pauli_terms(rng, 3, 5)
        direct = BASELINE_COMPILERS[name](terms)
        registered = get_registry().compile(name, terms)
        assert direct.cx_count() == registered.cx_count()
        assert direct.entangling_depth() == registered.entangling_depth()

    def test_facade_result_is_unified_type(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        result = _legacy_quclear().compile(terms)
        assert isinstance(result, CompilationResult)
        assert result.metadata["rotation_count"] >= 1
        assert "pass_timings" in result.metadata

    def test_baseline_result_alias_is_unified_type(self):
        from repro.baselines.result import BaselineResult

        assert BaselineResult is CompilationResult

    def test_facade_absorption_helpers_still_work(self, rng):
        from repro.paulis.pauli import PauliString

        terms = random_pauli_terms(rng, 3, 4)
        result = _legacy_quclear().compile(terms)
        absorbed = result.absorb_observables([PauliString.from_label("ZXY")])
        assert len(absorbed) == 1
