"""Consistent input validation at every compile entry point (InvalidProgramError)."""

import pytest

import repro
from repro.compiler.api import validate_program
from repro.exceptions import CompilerError, InvalidProgramError, ReproError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

from tests.conftest import random_pauli_terms


def _zero_qubit_program():
    return [PauliTerm(PauliString([], []), 1.0)]


class TestValidateProgram:
    def test_accepts_normal_programs(self, rng):
        validate_program(random_pauli_terms(rng, 4, 5))
        validate_program(SparsePauliSum(random_pauli_terms(rng, 4, 5)))

    def test_rejects_empty_list(self):
        with pytest.raises(InvalidProgramError, match="empty"):
            validate_program([])

    def test_rejects_zero_qubit_terms(self):
        with pytest.raises(InvalidProgramError, match="zero qubits"):
            validate_program(_zero_qubit_program())

    def test_message_names_source_and_index(self):
        with pytest.raises(InvalidProgramError, match=r"repro\.compile_many: program 2"):
            validate_program([], source="repro.compile_many", index=2)

    def test_is_a_compiler_and_repro_error(self):
        # callers that already catch CompilerError keep working
        assert issubclass(InvalidProgramError, CompilerError)
        assert issubclass(InvalidProgramError, ReproError)


class TestCompileEntryPoint:
    def test_empty_program_raises_invalid_program(self):
        with pytest.raises(InvalidProgramError):
            repro.compile([])

    def test_zero_qubit_program_raises_invalid_program(self):
        with pytest.raises(InvalidProgramError):
            repro.compile(_zero_qubit_program())

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_every_level_validates(self, level):
        with pytest.raises(InvalidProgramError):
            repro.compile([], level=level)

    def test_generator_programs_still_compile(self, rng):
        terms = random_pauli_terms(rng, 4, 5)
        result = repro.compile(iter(terms), level=1)
        assert result.circuit == repro.compile(terms, level=1).circuit


class TestCompileManyEntryPoint:
    def test_empty_batch_is_still_allowed(self):
        # an empty *batch* is a no-op, not an error — only empty programs are
        assert repro.compile_many([]) == []

    def test_empty_program_in_batch_names_its_index(self, rng):
        programs = [random_pauli_terms(rng, 4, 5), [], random_pauli_terms(rng, 4, 5)]
        with pytest.raises(InvalidProgramError, match="program 1"):
            repro.compile_many(programs)

    def test_zero_qubit_program_in_batch_rejected(self, rng):
        with pytest.raises(InvalidProgramError):
            repro.compile_many([random_pauli_terms(rng, 4, 5), _zero_qubit_program()])

    def test_validation_happens_before_any_compilation(self, rng):
        # the failure must be immediate and total: no partial results
        with pytest.raises(InvalidProgramError):
            repro.compile_many([[], random_pauli_terms(rng, 4, 5)])
